//! Cells: standard cells, macros, fixed blocks, and terminal pads.

use std::fmt;

/// Opaque index of a cell within a [`crate::Design`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct CellId(pub(crate) u32);

impl CellId {
    /// The raw index, usable to address per-cell arrays such as
    /// [`crate::Placement`] coordinates.
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// Creates a `CellId` from a raw index.
    ///
    /// Callers are responsible for the index referring to a real cell of the
    /// design the id is used with; methods taking a `CellId` panic on
    /// out-of-range ids.
    pub fn from_index(index: usize) -> Self {
        Self(index as u32)
    }
}

impl fmt::Display for CellId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "c{}", self.0)
    }
}

/// How a cell participates in placement.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CellKind {
    /// A movable standard cell (height equals the row height).
    Movable,
    /// A movable macro block (taller than one row). Mixed-size placement
    /// handles these through macro shredding (paper Section 5).
    MovableMacro,
    /// A fixed block inside the core: an obstacle that consumes placement
    /// capacity.
    Fixed,
    /// A fixed terminal (I/O pad) that does not consume core capacity —
    /// Bookshelf's "terminal_NI".
    Terminal,
}

impl CellKind {
    /// Whether the placer may move this cell.
    pub fn is_movable(self) -> bool {
        matches!(self, CellKind::Movable | CellKind::MovableMacro)
    }

    /// Whether the cell blocks placement capacity in the density grid.
    pub fn blocks_capacity(self) -> bool {
        matches!(self, CellKind::Fixed)
    }
}

/// A placeable or fixed object in the netlist.
#[derive(Debug, Clone, PartialEq)]
pub struct Cell {
    pub(crate) name: String,
    pub(crate) width: f64,
    pub(crate) height: f64,
    pub(crate) kind: CellKind,
}

impl Cell {
    /// Creates a cell. Prefer [`crate::DesignBuilder`], which also assigns
    /// ids and validates dimensions.
    pub fn new(name: impl Into<String>, width: f64, height: f64, kind: CellKind) -> Self {
        Self {
            name: name.into(),
            width,
            height,
            kind,
        }
    }

    /// The cell's name (unique within a design).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Cell width.
    pub fn width(&self) -> f64 {
        self.width
    }

    /// Cell height.
    pub fn height(&self) -> f64 {
        self.height
    }

    /// Cell area.
    pub fn area(&self) -> f64 {
        self.width * self.height
    }

    /// The cell's placement role.
    pub fn kind(&self) -> CellKind {
        self.kind
    }

    /// Whether the placer may move this cell.
    pub fn is_movable(&self) -> bool {
        self.kind.is_movable()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cell_id_round_trip() {
        let id = CellId::from_index(42);
        assert_eq!(id.index(), 42);
        assert_eq!(id.to_string(), "c42");
    }

    #[test]
    fn kind_predicates() {
        assert!(CellKind::Movable.is_movable());
        assert!(CellKind::MovableMacro.is_movable());
        assert!(!CellKind::Fixed.is_movable());
        assert!(!CellKind::Terminal.is_movable());
        assert!(CellKind::Fixed.blocks_capacity());
        assert!(!CellKind::Terminal.blocks_capacity());
    }

    #[test]
    fn cell_area() {
        let c = Cell::new("a", 2.0, 12.0, CellKind::MovableMacro);
        assert_eq!(c.area(), 24.0);
        assert_eq!(c.name(), "a");
    }
}
