//! The immutable netlist/design container and its builder.

use std::collections::HashMap;

use crate::cell::{Cell, CellId, CellKind};
use crate::error::DesignError;
use crate::geom::{Point, Rect};
use crate::net::{Net, NetId, Pin};
use crate::placement::Placement;
use crate::region::{AlignmentConstraint, RegionConstraint};

/// An immutable placement instance: cells, nets, pins, the core region, row
/// geometry, the density target γ, the initial (input) locations of fixed
/// objects, and optional region constraints.
///
/// Construct one with [`DesignBuilder`], the Bookshelf parser
/// ([`crate::bookshelf::read_aux`]), or the synthetic generator
/// ([`crate::generator`]).
#[derive(Debug, Clone)]
pub struct Design {
    name: String,
    cells: Vec<Cell>,
    nets: Vec<Net>,
    pins: Vec<Pin>,
    core: Rect,
    row_height: f64,
    target_density: f64,
    fixed_positions: Placement,
    regions: Vec<RegionConstraint>,
    alignments: Vec<AlignmentConstraint>,
    /// For each cell, the ids of nets it participates in (deduplicated).
    cell_nets: Vec<Vec<NetId>>,
    movable: Vec<CellId>,
}

impl Design {
    /// The design's name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Number of cells (movable + fixed + terminals).
    pub fn num_cells(&self) -> usize {
        self.cells.len()
    }

    /// Number of nets.
    pub fn num_nets(&self) -> usize {
        self.nets.len()
    }

    /// Number of pins over all nets.
    pub fn num_pins(&self) -> usize {
        self.pins.len()
    }

    /// The cell with the given id.
    pub fn cell(&self, id: CellId) -> &Cell {
        &self.cells[id.index()]
    }

    /// The net with the given id.
    pub fn net(&self, id: NetId) -> &Net {
        &self.nets[id.index()]
    }

    /// Iterates over all cell ids.
    pub fn cell_ids(&self) -> impl Iterator<Item = CellId> + '_ {
        (0..self.cells.len()).map(|i| CellId(i as u32))
    }

    /// Iterates over all net ids.
    pub fn net_ids(&self) -> impl Iterator<Item = NetId> + '_ {
        (0..self.nets.len()).map(|i| NetId(i as u32))
    }

    /// Ids of all movable cells (standard cells and movable macros).
    pub fn movable_cells(&self) -> &[CellId] {
        &self.movable
    }

    /// The pins of a net.
    pub fn net_pins(&self, id: NetId) -> &[Pin] {
        &self.pins[self.nets[id.index()].pin_range()]
    }

    /// The nets incident to a cell (deduplicated).
    pub fn cell_nets(&self, id: CellId) -> &[NetId] {
        &self.cell_nets[id.index()]
    }

    /// The placeable core region.
    pub fn core(&self) -> Rect {
        self.core
    }

    /// The standard-cell row height.
    pub fn row_height(&self) -> f64 {
        self.row_height
    }

    /// The target utilization/density limit γ ∈ (0, 1]; the feasibility
    /// projection spreads cells until every bin satisfies it.
    pub fn target_density(&self) -> f64 {
        self.target_density
    }

    /// Positions of fixed cells and terminals (movable entries are the
    /// generator's suggested starting points and may be ignored).
    pub fn fixed_positions(&self) -> &Placement {
        &self.fixed_positions
    }

    /// Hard region constraints (empty for unconstrained designs).
    pub fn regions(&self) -> &[RegionConstraint] {
        &self.regions
    }

    /// Alignment constraints (empty for unconstrained designs).
    pub fn alignments(&self) -> &[AlignmentConstraint] {
        &self.alignments
    }

    /// Looks up a cell by name.
    pub fn find_cell(&self, name: &str) -> Option<CellId> {
        self.cells
            .iter()
            .position(|c| c.name() == name)
            .map(|i| CellId(i as u32))
    }

    /// Total area of movable cells.
    pub fn movable_area(&self) -> f64 {
        self.movable.iter().map(|&id| self.cell(id).area()).sum()
    }

    /// Total area of fixed, capacity-blocking obstacles inside the core.
    pub fn obstacle_area(&self) -> f64 {
        self.cell_ids()
            .filter(|&id| self.cell(id).kind().blocks_capacity())
            .map(|id| {
                let c = self.cell(id);
                let r = self.fixed_positions.cell_rect(id, c.width(), c.height());
                r.overlap_area(&self.core)
            })
            .sum()
    }

    /// Average standard-cell area (used to scale per-macro λ, Section 5).
    pub fn mean_std_cell_area(&self) -> f64 {
        let std_cells: Vec<_> = self
            .movable
            .iter()
            .filter(|&&id| self.cell(id).kind() == CellKind::Movable)
            .collect();
        if std_cells.is_empty() {
            return 0.0;
        }
        std_cells
            .iter()
            .map(|&&id| self.cell(id).area())
            .sum::<f64>()
            / std_cells.len() as f64
    }

    /// A fresh placement seeded with fixed positions; movable cells start at
    /// the core center (the standard initialization for quadratic placement).
    pub fn initial_placement(&self) -> Placement {
        let mut p = self.fixed_positions.clone();
        let c = self.core.center();
        for &id in &self.movable {
            p.set_position(id, c);
        }
        p
    }
}

/// Incremental builder for [`Design`]. Validates names, dimensions and pin
/// references at [`DesignBuilder::build`].
///
/// # Example
///
/// ```
/// use complx_netlist::{CellKind, DesignBuilder, Point, Rect};
///
/// # fn main() -> Result<(), complx_netlist::DesignError> {
/// let mut b = DesignBuilder::new("tiny", Rect::new(0.0, 0.0, 100.0, 100.0), 1.0);
/// let a = b.add_cell("a", 2.0, 1.0, CellKind::Movable)?;
/// let p = b.add_fixed_cell("pad", 1.0, 1.0, CellKind::Terminal, Point::new(0.0, 50.0))?;
/// b.add_net("n1", 1.0, vec![(a, 0.0, 0.0), (p, 0.0, 0.0)])?;
/// let design = b.build()?;
/// assert_eq!(design.num_cells(), 2);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct DesignBuilder {
    name: String,
    core: Rect,
    row_height: f64,
    target_density: f64,
    cells: Vec<Cell>,
    nets: Vec<Net>,
    pins: Vec<Pin>,
    fixed_pos: Vec<Point>,
    regions: Vec<RegionConstraint>,
    alignments: Vec<AlignmentConstraint>,
    names: HashMap<String, CellId>,
}

impl DesignBuilder {
    /// Starts a design with the given core region and row height. The
    /// density target defaults to `1.0` (no extra whitespace required).
    pub fn new(name: impl Into<String>, core: Rect, row_height: f64) -> Self {
        Self {
            name: name.into(),
            core,
            row_height,
            target_density: 1.0,
            cells: Vec::new(),
            nets: Vec::new(),
            pins: Vec::new(),
            fixed_pos: Vec::new(),
            regions: Vec::new(),
            alignments: Vec::new(),
            // lint:allow(nondet-taint): name->id parse-time lookup; its
            // iteration order never reaches an f64 accumulation (hot-path
            // iteration is over Vec-ordered ids)
            names: HashMap::new(),
        }
    }

    /// Sets the target utilization/density limit γ.
    ///
    /// # Errors
    ///
    /// Returns an error unless `0 < gamma ≤ 1`.
    pub fn set_target_density(&mut self, gamma: f64) -> Result<(), DesignError> {
        if !(gamma > 0.0 && gamma <= 1.0) {
            return Err(DesignError::InvalidDensity(gamma));
        }
        self.target_density = gamma;
        Ok(())
    }

    /// Adds a movable cell; its start location defaults to the core center.
    ///
    /// # Errors
    ///
    /// Returns an error for duplicate names, non-positive dimensions, or a
    /// non-movable `kind`.
    pub fn add_cell(
        &mut self,
        name: impl Into<String>,
        width: f64,
        height: f64,
        kind: CellKind,
    ) -> Result<CellId, DesignError> {
        if !kind.is_movable() {
            return Err(DesignError::KindMismatch(
                "add_cell requires a movable kind; use add_fixed_cell",
            ));
        }
        self.push_cell(name.into(), width, height, kind, self.core.center())
    }

    /// Adds a fixed cell or terminal at center position `pos`.
    ///
    /// # Errors
    ///
    /// Returns an error for duplicate names, negative or non-finite
    /// dimensions, or a movable `kind`. Zero-area fixed cells are accepted:
    /// Bookshelf pad terminals are commonly 0 × 0.
    pub fn add_fixed_cell(
        &mut self,
        name: impl Into<String>,
        width: f64,
        height: f64,
        kind: CellKind,
        pos: Point,
    ) -> Result<CellId, DesignError> {
        if kind.is_movable() {
            return Err(DesignError::KindMismatch(
                "add_fixed_cell requires a fixed kind; use add_cell",
            ));
        }
        self.push_cell(name.into(), width, height, kind, pos)
    }

    fn push_cell(
        &mut self,
        name: String,
        width: f64,
        height: f64,
        kind: CellKind,
        pos: Point,
    ) -> Result<CellId, DesignError> {
        // Movable cells must have positive area (they participate in density
        // and legalization); fixed cells and terminals may be zero-area —
        // Bookshelf pads frequently are. Non-finite dimensions are never
        // acceptable: NaN would silently poison every downstream area sum.
        let invalid = if kind.is_movable() {
            width <= 0.0 || height <= 0.0
        } else {
            width < 0.0 || height < 0.0
        };
        if invalid || !width.is_finite() || !height.is_finite() {
            return Err(DesignError::InvalidDimensions {
                name,
                width,
                height,
            });
        }
        if self.names.contains_key(&name) {
            return Err(DesignError::DuplicateCell(name));
        }
        let id = CellId(self.cells.len() as u32);
        self.names.insert(name.clone(), id);
        self.cells.push(Cell::new(name, width, height, kind));
        self.fixed_pos.push(pos);
        Ok(id)
    }

    /// Adds a net over `(cell, pin-offset-x, pin-offset-y)` tuples.
    ///
    /// # Errors
    ///
    /// Returns an error if the net has fewer than two pins, a non-positive
    /// weight, or references an unknown cell.
    pub fn add_net(
        &mut self,
        name: impl Into<String>,
        weight: f64,
        pins: Vec<(CellId, f64, f64)>,
    ) -> Result<NetId, DesignError> {
        let name = name.into();
        if pins.len() < 2 {
            return Err(DesignError::DegenerateNet(name));
        }
        if weight <= 0.0 {
            return Err(DesignError::InvalidWeight { net: name, weight });
        }
        for &(cell, _, _) in &pins {
            if cell.index() >= self.cells.len() {
                return Err(DesignError::UnknownCell(cell.index()));
            }
        }
        let id = NetId(self.nets.len() as u32);
        let pin_start = self.pins.len() as u32;
        self.pins
            .extend(pins.into_iter().map(|(c, dx, dy)| Pin::new(c, dx, dy)));
        let pin_end = self.pins.len() as u32;
        self.nets.push(Net {
            name,
            weight,
            pin_start,
            pin_end,
        });
        Ok(id)
    }

    /// Adds a hard region constraint (validated against the core at build).
    pub fn add_region(&mut self, region: RegionConstraint) {
        self.regions.push(region);
    }

    /// Adds an alignment constraint (validated at build: all cells must be
    /// movable and exist).
    pub fn add_alignment(&mut self, alignment: AlignmentConstraint) {
        self.alignments.push(alignment);
    }

    /// Finalizes the design.
    ///
    /// # Errors
    ///
    /// Returns an error if a region references an unknown or fixed cell, or
    /// if its rectangle leaves the core.
    pub fn build(self) -> Result<Design, DesignError> {
        for a in &self.alignments {
            for &c in a.cells() {
                if c.index() >= self.cells.len() {
                    return Err(DesignError::UnknownCell(c.index()));
                }
                if !self.cells[c.index()].is_movable() {
                    return Err(DesignError::RegionOnFixedCell {
                        region: a.name().to_string(),
                        cell: self.cells[c.index()].name().to_string(),
                    });
                }
            }
        }
        for r in &self.regions {
            if r.rect().lx < self.core.lx
                || r.rect().ly < self.core.ly
                || r.rect().hx > self.core.hx
                || r.rect().hy > self.core.hy
            {
                return Err(DesignError::RegionOutsideCore(r.name().to_string()));
            }
            for &c in r.cells() {
                if c.index() >= self.cells.len() {
                    return Err(DesignError::UnknownCell(c.index()));
                }
                if !self.cells[c.index()].is_movable() {
                    return Err(DesignError::RegionOnFixedCell {
                        region: r.name().to_string(),
                        cell: self.cells[c.index()].name().to_string(),
                    });
                }
            }
        }

        let mut cell_nets: Vec<Vec<NetId>> = vec![Vec::new(); self.cells.len()];
        for (ni, net) in self.nets.iter().enumerate() {
            let nid = NetId(ni as u32);
            for pin in &self.pins[net.pin_range()] {
                let list = &mut cell_nets[pin.cell.index()];
                if list.last() != Some(&nid) {
                    list.push(nid);
                }
            }
        }
        for list in &mut cell_nets {
            list.sort_unstable();
            list.dedup();
        }

        let movable: Vec<CellId> = self
            .cells
            .iter()
            .enumerate()
            .filter(|(_, c)| c.is_movable())
            .map(|(i, _)| CellId(i as u32))
            .collect();

        let mut fixed_positions = Placement::zeros(self.cells.len());
        for (i, p) in self.fixed_pos.iter().enumerate() {
            fixed_positions.set_position(CellId(i as u32), *p);
        }

        Ok(Design {
            name: self.name,
            cells: self.cells,
            nets: self.nets,
            pins: self.pins,
            core: self.core,
            row_height: self.row_height,
            target_density: self.target_density,
            fixed_positions,
            regions: self.regions,
            alignments: self.alignments,
            cell_nets,
            movable,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn core() -> Rect {
        Rect::new(0.0, 0.0, 100.0, 100.0)
    }

    #[test]
    fn build_small_design() {
        let mut b = DesignBuilder::new("t", core(), 1.0);
        let a = b.add_cell("a", 1.0, 1.0, CellKind::Movable).unwrap();
        let c = b.add_cell("b", 2.0, 1.0, CellKind::Movable).unwrap();
        let p = b
            .add_fixed_cell("p", 1.0, 1.0, CellKind::Terminal, Point::new(0.0, 0.0))
            .unwrap();
        b.add_net("n0", 1.0, vec![(a, 0.0, 0.0), (c, 0.0, 0.0)])
            .unwrap();
        b.add_net("n1", 2.0, vec![(c, 0.5, 0.0), (p, 0.0, 0.0)])
            .unwrap();
        let d = b.build().unwrap();
        assert_eq!(d.num_cells(), 3);
        assert_eq!(d.num_nets(), 2);
        assert_eq!(d.num_pins(), 4);
        assert_eq!(d.movable_cells(), &[a, c]);
        assert_eq!(d.cell_nets(c).len(), 2);
        assert_eq!(d.cell_nets(a).len(), 1);
        assert_eq!(d.movable_area(), 3.0);
        assert_eq!(d.find_cell("b"), Some(c));
        assert_eq!(d.find_cell("zz"), None);
    }

    #[test]
    fn duplicate_cell_rejected() {
        let mut b = DesignBuilder::new("t", core(), 1.0);
        b.add_cell("a", 1.0, 1.0, CellKind::Movable).unwrap();
        let err = b.add_cell("a", 1.0, 1.0, CellKind::Movable).unwrap_err();
        assert!(matches!(err, DesignError::DuplicateCell(_)));
    }

    #[test]
    fn bad_dimensions_rejected() {
        let mut b = DesignBuilder::new("t", core(), 1.0);
        assert!(b.add_cell("a", 0.0, 1.0, CellKind::Movable).is_err());
        assert!(b.add_cell("b", 1.0, -1.0, CellKind::Movable).is_err());
    }

    #[test]
    fn one_pin_net_rejected() {
        let mut b = DesignBuilder::new("t", core(), 1.0);
        let a = b.add_cell("a", 1.0, 1.0, CellKind::Movable).unwrap();
        assert!(matches!(
            b.add_net("n", 1.0, vec![(a, 0.0, 0.0)]),
            Err(DesignError::DegenerateNet(_))
        ));
    }

    #[test]
    fn kind_mismatch_rejected() {
        let mut b = DesignBuilder::new("t", core(), 1.0);
        assert!(b.add_cell("a", 1.0, 1.0, CellKind::Fixed).is_err());
        assert!(b
            .add_fixed_cell("b", 1.0, 1.0, CellKind::Movable, Point::default())
            .is_err());
    }

    #[test]
    fn density_validation() {
        let mut b = DesignBuilder::new("t", core(), 1.0);
        assert!(b.set_target_density(0.0).is_err());
        assert!(b.set_target_density(1.5).is_err());
        assert!(b.set_target_density(0.5).is_ok());
        let d = b.build().unwrap();
        assert_eq!(d.target_density(), 0.5);
    }

    #[test]
    fn region_validation() {
        let mut b = DesignBuilder::new("t", core(), 1.0);
        let a = b.add_cell("a", 1.0, 1.0, CellKind::Movable).unwrap();
        b.add_region(RegionConstraint::new(
            "r",
            Rect::new(0.0, 0.0, 200.0, 10.0),
            vec![a],
        ));
        assert!(matches!(b.build(), Err(DesignError::RegionOutsideCore(_))));
    }

    #[test]
    fn region_on_fixed_cell_rejected() {
        let mut b = DesignBuilder::new("t", core(), 1.0);
        let f = b
            .add_fixed_cell("f", 1.0, 1.0, CellKind::Fixed, Point::new(5.0, 5.0))
            .unwrap();
        b.add_region(RegionConstraint::new(
            "r",
            Rect::new(0.0, 0.0, 10.0, 10.0),
            vec![f],
        ));
        assert!(matches!(
            b.build(),
            Err(DesignError::RegionOnFixedCell { .. })
        ));
    }

    #[test]
    fn initial_placement_centers_movables() {
        let mut b = DesignBuilder::new("t", core(), 1.0);
        let a = b.add_cell("a", 1.0, 1.0, CellKind::Movable).unwrap();
        let f = b
            .add_fixed_cell("f", 1.0, 1.0, CellKind::Fixed, Point::new(5.0, 6.0))
            .unwrap();
        let d = b.build().unwrap();
        let p = d.initial_placement();
        assert_eq!(p.position(a), Point::new(50.0, 50.0));
        assert_eq!(p.position(f), Point::new(5.0, 6.0));
    }

    #[test]
    fn obstacle_area_clips_to_core() {
        let mut b = DesignBuilder::new("t", core(), 1.0);
        // Obstacle half inside the core.
        b.add_fixed_cell("f", 10.0, 10.0, CellKind::Fixed, Point::new(0.0, 50.0))
            .unwrap();
        // Terminal: does not block capacity.
        b.add_fixed_cell("t", 10.0, 10.0, CellKind::Terminal, Point::new(50.0, 50.0))
            .unwrap();
        let d = b.build().unwrap();
        assert_eq!(d.obstacle_area(), 50.0);
    }
}
