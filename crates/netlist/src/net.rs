//! Nets and pins.

use std::fmt;

use crate::cell::CellId;

/// Opaque index of a net within a [`crate::Design`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct NetId(pub(crate) u32);

impl NetId {
    /// The raw index.
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// Creates a `NetId` from a raw index (see [`crate::CellId::from_index`]
    /// for the safety contract).
    pub fn from_index(index: usize) -> Self {
        Self(index as u32)
    }
}

impl fmt::Display for NetId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

/// A pin: a connection point of a net on a cell, with an offset from the
/// cell's **center**. Pin offsets matter for macros, where they can be large
/// (paper Section 5: "mixed-size placement requires careful accounting for
/// pin offsets during quadratic optimization").
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Pin {
    /// The cell this pin belongs to.
    pub cell: CellId,
    /// Horizontal offset from the cell center.
    pub dx: f64,
    /// Vertical offset from the cell center.
    pub dy: f64,
}

impl Pin {
    /// Creates a pin on `cell` at offset `(dx, dy)` from the cell center.
    pub fn new(cell: CellId, dx: f64, dy: f64) -> Self {
        Self { cell, dx, dy }
    }
}

/// A weighted multi-pin net. Pin storage lives in the design's flat pin
/// array; the net holds a range into it.
#[derive(Debug, Clone, PartialEq)]
pub struct Net {
    pub(crate) name: String,
    pub(crate) weight: f64,
    pub(crate) pin_start: u32,
    pub(crate) pin_end: u32,
}

impl Net {
    /// The net's name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The net weight `w_e` in the weighted-HPWL objective (Formula 1).
    pub fn weight(&self) -> f64 {
        self.weight
    }

    /// Number of pins on the net.
    pub fn degree(&self) -> usize {
        (self.pin_end - self.pin_start) as usize
    }

    pub(crate) fn pin_range(&self) -> std::ops::Range<usize> {
        self.pin_start as usize..self.pin_end as usize
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn net_id_round_trip() {
        let id = NetId::from_index(7);
        assert_eq!(id.index(), 7);
        assert_eq!(id.to_string(), "n7");
    }

    #[test]
    fn net_degree() {
        let n = Net {
            name: "x".into(),
            weight: 1.0,
            pin_start: 3,
            pin_end: 8,
        };
        assert_eq!(n.degree(), 5);
        assert_eq!(n.pin_range(), 3..8);
    }
}
