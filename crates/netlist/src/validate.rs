//! Semantic validation of parsed designs.
//!
//! The [`DesignBuilder`](crate::DesignBuilder) enforces structural rules
//! (unique names, positive dimensions, ≥2-pin nets); this module checks the
//! *semantic* properties that real-world Bookshelf files occasionally
//! violate and that placers should warn about rather than crash on.

use crate::cell::CellKind;
use crate::design::Design;

/// A validation finding (warning-level; none of these prevent placement).
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum ValidationIssue {
    /// A fixed cell's footprint lies (partly) outside the core region.
    FixedCellOutsideCore {
        /// Cell name.
        cell: String,
    },
    /// Two fixed obstacles overlap each other.
    OverlappingObstacles {
        /// First cell name.
        a: String,
        /// Second cell name.
        b: String,
    },
    /// A movable cell participates in no net (it will be placed by
    /// regularization only).
    DisconnectedCell {
        /// Cell name.
        cell: String,
    },
    /// Total movable area exceeds the free core area — the design cannot be
    /// legalized.
    Overfull {
        /// Movable area.
        movable: f64,
        /// Free area (core minus obstacles).
        free: f64,
    },
    /// A movable cell is wider than the core (cannot fit any row segment).
    CellWiderThanCore {
        /// Cell name.
        cell: String,
    },
    /// A pin offset places the pin outside its cell's bounding box.
    PinOutsideCell {
        /// Cell name.
        cell: String,
        /// Net name.
        net: String,
    },
}

impl std::fmt::Display for ValidationIssue {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ValidationIssue::FixedCellOutsideCore { cell } => {
                write!(f, "fixed cell `{cell}` extends outside the core")
            }
            ValidationIssue::OverlappingObstacles { a, b } => {
                write!(f, "fixed obstacles `{a}` and `{b}` overlap")
            }
            ValidationIssue::DisconnectedCell { cell } => {
                write!(f, "movable cell `{cell}` has no nets")
            }
            ValidationIssue::Overfull { movable, free } => {
                write!(f, "movable area {movable:.0} exceeds free area {free:.0}")
            }
            ValidationIssue::CellWiderThanCore { cell } => {
                write!(f, "cell `{cell}` is wider than the core")
            }
            ValidationIssue::PinOutsideCell { cell, net } => {
                write!(f, "net `{net}` has a pin outside cell `{cell}`")
            }
        }
    }
}

/// Runs all semantic checks; the result is empty for a clean design.
pub fn validate(design: &Design) -> Vec<ValidationIssue> {
    let mut issues = Vec::new();
    let core = design.core();

    // Fixed-cell containment and pairwise obstacle overlap.
    let obstacles: Vec<(usize, crate::Rect)> = design
        .cell_ids()
        .filter(|&id| design.cell(id).kind() == CellKind::Fixed)
        .map(|id| {
            let c = design.cell(id);
            (
                id.index(),
                design
                    .fixed_positions()
                    .cell_rect(id, c.width(), c.height()),
            )
        })
        .collect();
    for &(idx, r) in &obstacles {
        if r.lx < core.lx - 1e-9
            || r.hx > core.hx + 1e-9
            || r.ly < core.ly - 1e-9
            || r.hy > core.hy + 1e-9
        {
            issues.push(ValidationIssue::FixedCellOutsideCore {
                cell: design
                    .cell(crate::CellId::from_index(idx))
                    .name()
                    .to_string(),
            });
        }
    }
    for i in 0..obstacles.len() {
        for j in i + 1..obstacles.len() {
            if obstacles[i].1.overlap_area(&obstacles[j].1) > 1e-9 {
                issues.push(ValidationIssue::OverlappingObstacles {
                    a: design
                        .cell(crate::CellId::from_index(obstacles[i].0))
                        .name()
                        .to_string(),
                    b: design
                        .cell(crate::CellId::from_index(obstacles[j].0))
                        .name()
                        .to_string(),
                });
            }
        }
    }

    // Disconnected movable cells; over-wide cells.
    for &id in design.movable_cells() {
        let cell = design.cell(id);
        if design.cell_nets(id).is_empty() {
            issues.push(ValidationIssue::DisconnectedCell {
                cell: cell.name().to_string(),
            });
        }
        if cell.width() > core.width() + 1e-9 {
            issues.push(ValidationIssue::CellWiderThanCore {
                cell: cell.name().to_string(),
            });
        }
    }

    // Capacity feasibility.
    let movable = design.movable_area();
    let free = core.area() - design.obstacle_area();
    if movable > free {
        issues.push(ValidationIssue::Overfull { movable, free });
    }

    // Pin offsets within cell bounding boxes (with a small tolerance —
    // some generators put pins exactly on the boundary).
    for nid in design.net_ids() {
        for pin in design.net_pins(nid) {
            let c = design.cell(pin.cell);
            if pin.dx.abs() > 0.5 * c.width() + 1e-6 || pin.dy.abs() > 0.5 * c.height() + 1e-6 {
                issues.push(ValidationIssue::PinOutsideCell {
                    cell: c.name().to_string(),
                    net: design.net(nid).name().to_string(),
                });
            }
        }
    }

    issues
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::design::DesignBuilder;
    use crate::geom::{Point, Rect};

    fn core() -> Rect {
        Rect::new(0.0, 0.0, 20.0, 20.0)
    }

    #[test]
    fn clean_design_validates_clean() {
        let d = crate::generator::GeneratorConfig::small("v", 1).generate();
        assert!(validate(&d).is_empty(), "{:?}", validate(&d));
    }

    #[test]
    fn detects_fixed_cell_outside_core() {
        let mut b = DesignBuilder::new("v", core(), 1.0);
        let a = b.add_cell("a", 1.0, 1.0, CellKind::Movable).unwrap();
        let f = b
            .add_fixed_cell("f", 4.0, 4.0, CellKind::Fixed, Point::new(0.0, 0.0))
            .unwrap();
        b.add_net("n", 1.0, vec![(a, 0.0, 0.0), (f, 0.0, 0.0)])
            .unwrap();
        let issues = validate(&b.build().unwrap());
        assert!(issues
            .iter()
            .any(|i| matches!(i, ValidationIssue::FixedCellOutsideCore { .. })));
    }

    #[test]
    fn detects_overlapping_obstacles() {
        let mut b = DesignBuilder::new("v", core(), 1.0);
        let a = b.add_cell("a", 1.0, 1.0, CellKind::Movable).unwrap();
        let f1 = b
            .add_fixed_cell("f1", 4.0, 4.0, CellKind::Fixed, Point::new(10.0, 10.0))
            .unwrap();
        b.add_fixed_cell("f2", 4.0, 4.0, CellKind::Fixed, Point::new(11.0, 11.0))
            .unwrap();
        b.add_net("n", 1.0, vec![(a, 0.0, 0.0), (f1, 0.0, 0.0)])
            .unwrap();
        let issues = validate(&b.build().unwrap());
        assert!(issues
            .iter()
            .any(|i| matches!(i, ValidationIssue::OverlappingObstacles { .. })));
    }

    #[test]
    fn detects_disconnected_cells_and_overfull() {
        let mut b = DesignBuilder::new("v", core(), 1.0);
        let a = b.add_cell("a", 19.0, 19.0, CellKind::Movable).unwrap();
        let c = b.add_cell("b", 19.0, 19.0, CellKind::Movable).unwrap();
        b.add_net("n", 1.0, vec![(a, 0.0, 0.0), (c, 0.0, 0.0)])
            .unwrap();
        b.add_cell("lonely", 1.0, 1.0, CellKind::Movable).unwrap();
        let issues = validate(&b.build().unwrap());
        assert!(issues
            .iter()
            .any(|i| matches!(i, ValidationIssue::DisconnectedCell { .. })));
        assert!(issues
            .iter()
            .any(|i| matches!(i, ValidationIssue::Overfull { .. })));
    }

    #[test]
    fn detects_pin_outside_cell() {
        let mut b = DesignBuilder::new("v", core(), 1.0);
        let a = b.add_cell("a", 2.0, 1.0, CellKind::Movable).unwrap();
        let c = b.add_cell("b", 2.0, 1.0, CellKind::Movable).unwrap();
        b.add_net("n", 1.0, vec![(a, 5.0, 0.0), (c, 0.0, 0.0)])
            .unwrap();
        let issues = validate(&b.build().unwrap());
        assert!(issues
            .iter()
            .any(|i| matches!(i, ValidationIssue::PinOutsideCell { .. })));
        // Display formatting is informative.
        assert!(issues.iter().any(|i| i.to_string().contains("pin")));
    }
}
