//! Structure-preserving design transformations.
//!
//! These rebuild a [`Design`] under a geometric or weight transformation
//! while keeping cell/net identifiers stable (cells and nets are re-added
//! in id order, so `CellId`/`NetId` values carry over). They exist for the
//! metamorphic test suite — a placer must commute with translation and
//! mirroring up to tolerance, and must be *exactly* invariant under
//! uniform net-weight scaling by powers of two — but are general-purpose
//! netlist surgery.

use crate::design::{Design, DesignBuilder};
use crate::error::DesignError;
use crate::geom::{Point, Rect};
use crate::placement::Placement;
use crate::region::RegionConstraint;

/// Rebuilds `design` with every cell, net, region and the core itself
/// copied through `map_rect` / `map_point` / pin-offset / weight hooks.
fn rebuild(
    design: &Design,
    core: Rect,
    map_fixed: impl Fn(Point) -> Point,
    map_pin: impl Fn(f64, f64) -> (f64, f64),
    map_weight: impl Fn(f64) -> f64,
    map_region: impl Fn(Rect) -> Rect,
) -> Result<Design, DesignError> {
    let mut b = DesignBuilder::new(design.name(), core, design.row_height());
    b.set_target_density(design.target_density())?;
    for id in design.cell_ids() {
        let cell = design.cell(id);
        if cell.kind().is_movable() {
            b.add_cell(cell.name(), cell.width(), cell.height(), cell.kind())?;
        } else {
            b.add_fixed_cell(
                cell.name(),
                cell.width(),
                cell.height(),
                cell.kind(),
                map_fixed(design.fixed_positions().position(id)),
            )?;
        }
    }
    for nid in design.net_ids() {
        let net = design.net(nid);
        let pins: Vec<_> = design
            .net_pins(nid)
            .iter()
            .map(|p| {
                let (dx, dy) = map_pin(p.dx, p.dy);
                (p.cell, dx, dy)
            })
            .collect();
        b.add_net(net.name(), map_weight(net.weight()), pins)?;
    }
    for region in design.regions() {
        b.add_region(RegionConstraint::new(
            region.name(),
            map_region(region.rect()),
            region.cells().to_vec(),
        ));
    }
    for alignment in design.alignments() {
        b.add_alignment(alignment.clone());
    }
    b.build()
}

/// Translates the whole design — core, fixed cells, regions — by
/// `(dx, dy)`. Cell and net ids are preserved.
///
/// # Errors
///
/// Propagates [`DesignError`] if the shifted geometry fails validation
/// (e.g. a non-finite offset).
pub fn translate(design: &Design, dx: f64, dy: f64) -> Result<Design, DesignError> {
    let core = design.core();
    let shifted = Rect::new(core.lx + dx, core.ly + dy, core.hx + dx, core.hy + dy);
    rebuild(
        design,
        shifted,
        |p| Point::new(p.x + dx, p.y + dy),
        |px, py| (px, py),
        |w| w,
        |r| Rect::new(r.lx + dx, r.ly + dy, r.hx + dx, r.hy + dy),
    )
}

/// Translates every position of a placement by `(dx, dy)` (the expected
/// image of a placement under [`translate`]).
pub fn translate_placement(placement: &Placement, dx: f64, dy: f64) -> Placement {
    let xs = placement.xs().iter().map(|&x| x + dx).collect();
    let ys = placement.ys().iter().map(|&y| y + dy).collect();
    Placement::from_coords(xs, ys)
}

/// Mirrors the design about the core's vertical centerline: fixed-cell
/// x-coordinates and pin x-offsets are negated around `lx + hx`. The core
/// rectangle itself is unchanged (it maps onto itself), so a mirrored
/// design is directly comparable to the original.
///
/// # Errors
///
/// Propagates [`DesignError`] from revalidation of the mirrored geometry.
pub fn mirror_x(design: &Design) -> Result<Design, DesignError> {
    let core = design.core();
    let s = core.lx + core.hx;
    rebuild(
        design,
        core,
        |p| Point::new(s - p.x, p.y),
        |px, py| (-px, py),
        |w| w,
        |r| Rect::new(s - r.hx, r.ly, s - r.lx, r.hy),
    )
}

/// Mirrors every position of a placement about the core's vertical
/// centerline (the expected image of a placement under [`mirror_x`]).
pub fn mirror_x_placement(design: &Design, placement: &Placement) -> Placement {
    let core = design.core();
    let s = core.lx + core.hx;
    let xs = placement.xs().iter().map(|&x| s - x).collect();
    Placement::from_coords(xs, placement.ys().to_vec())
}

/// Scales every net weight by `factor`, leaving geometry untouched. For a
/// power-of-two factor the placer's entire trajectory is bit-identical
/// (every intermediate quantity scales exactly), which the metamorphic
/// suite asserts.
///
/// # Errors
///
/// Propagates [`DesignError`] if `factor` makes a weight non-positive or
/// non-finite.
pub fn scale_net_weights(design: &Design, factor: f64) -> Result<Design, DesignError> {
    rebuild(
        design,
        design.core(),
        |p| p,
        |px, py| (px, py),
        |w| w * factor,
        |r| r,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generator::GeneratorConfig;
    use crate::hpwl;

    fn small() -> Design {
        let mut cfg = GeneratorConfig::small("tr", 3);
        cfg.num_std_cells = 60;
        cfg.num_pads = 8;
        cfg.generate()
    }

    #[test]
    fn translate_preserves_structure_and_shifts_geometry() {
        let d = small();
        let t = translate(&d, 13.0, -5.0).unwrap();
        assert_eq!(t.num_cells(), d.num_cells());
        assert_eq!(t.num_nets(), d.num_nets());
        assert_eq!(t.num_pins(), d.num_pins());
        assert!((t.core().lx - (d.core().lx + 13.0)).abs() < 1e-12);
        // HPWL is translation-invariant when the placement moves along.
        let p = d.initial_placement();
        let tp = translate_placement(&p, 13.0, -5.0);
        let a = hpwl::weighted_hpwl(&d, &p);
        let b = hpwl::weighted_hpwl(&t, &tp);
        assert!((a - b).abs() <= 1e-9 * a.max(1.0), "{a} vs {b}");
    }

    #[test]
    fn mirror_is_an_involution_on_hpwl() {
        let d = small();
        let m = mirror_x(&d).unwrap();
        let p = d.initial_placement();
        let mp = mirror_x_placement(&d, &p);
        let a = hpwl::weighted_hpwl(&d, &p);
        let b = hpwl::weighted_hpwl(&m, &mp);
        assert!((a - b).abs() <= 1e-9 * a.max(1.0), "{a} vs {b}");
        // Mirroring twice restores the original pin geometry.
        let mm = mirror_x(&m).unwrap();
        for nid in d.net_ids() {
            for (p0, p1) in d.net_pins(nid).iter().zip(mm.net_pins(nid)) {
                assert_eq!(p0.dx.to_bits(), p1.dx.to_bits());
            }
        }
    }

    #[test]
    fn weight_scaling_scales_hpwl_exactly() {
        let d = small();
        let s = scale_net_weights(&d, 2.0).unwrap();
        let p = d.initial_placement();
        let a = hpwl::weighted_hpwl(&d, &p);
        let b = hpwl::weighted_hpwl(&s, &p);
        assert_eq!((2.0 * a).to_bits(), b.to_bits(), "doubling is exact");
    }
}
