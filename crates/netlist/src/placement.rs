//! Cell locations.

use crate::cell::CellId;
use crate::geom::{Point, Rect};

/// A placement: one center coordinate pair per cell, indexed by
/// [`CellId::index`]. Fixed cells carry their (immutable) locations too, so
/// a `Placement` is always a complete snapshot of the layout.
///
/// Coordinates refer to **cell centers**; Bookshelf I/O converts to/from the
/// lower-left convention at the boundary.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Placement {
    xs: Vec<f64>,
    ys: Vec<f64>,
}

impl Placement {
    /// Creates a placement with all cells at the origin.
    pub fn zeros(num_cells: usize) -> Self {
        Self {
            xs: vec![0.0; num_cells],
            ys: vec![0.0; num_cells],
        }
    }

    /// Creates a placement from parallel coordinate vectors.
    ///
    /// # Panics
    ///
    /// Panics if the vectors differ in length.
    pub fn from_coords(xs: Vec<f64>, ys: Vec<f64>) -> Self {
        assert_eq!(xs.len(), ys.len(), "coordinate vectors must match");
        Self { xs, ys }
    }

    /// Number of cells covered.
    pub fn len(&self) -> usize {
        self.xs.len()
    }

    /// Whether the placement covers no cells.
    pub fn is_empty(&self) -> bool {
        self.xs.is_empty()
    }

    /// The center location of `cell`.
    pub fn position(&self, cell: CellId) -> Point {
        Point::new(self.xs[cell.index()], self.ys[cell.index()])
    }

    /// Moves `cell` to center location `p`.
    pub fn set_position(&mut self, cell: CellId, p: Point) {
        self.xs[cell.index()] = p.x;
        self.ys[cell.index()] = p.y;
    }

    /// All x coordinates (indexed by cell id).
    pub fn xs(&self) -> &[f64] {
        &self.xs
    }

    /// All y coordinates (indexed by cell id).
    pub fn ys(&self) -> &[f64] {
        &self.ys
    }

    /// Mutable x coordinates.
    pub fn xs_mut(&mut self) -> &mut [f64] {
        &mut self.xs
    }

    /// Mutable y coordinates.
    pub fn ys_mut(&mut self) -> &mut [f64] {
        &mut self.ys
    }

    /// Total L1 distance to another placement:
    /// `Σ_i |x_i − x'_i| + |y_i − y'_i|`. This is exactly the penalty norm
    /// `‖(x,y) − (x°,y°)‖₁` of the simplified Lagrangian (Formula 10).
    ///
    /// # Panics
    ///
    /// Panics if the placements cover different numbers of cells.
    pub fn l1_distance(&self, other: &Placement) -> f64 {
        assert_eq!(self.len(), other.len());
        let dx: f64 = self
            .xs
            .iter()
            .zip(&other.xs)
            .map(|(a, b)| (a - b).abs())
            .sum();
        let dy: f64 = self
            .ys
            .iter()
            .zip(&other.ys)
            .map(|(a, b)| (a - b).abs())
            .sum();
        dx + dy
    }

    /// The bounding box of a cell with dimensions `w × h` centered at this
    /// placement's location for `cell`.
    pub fn cell_rect(&self, cell: CellId, w: f64, h: f64) -> Rect {
        let p = self.position(cell);
        Rect::new(p.x - 0.5 * w, p.y - 0.5 * h, p.x + 0.5 * w, p.y + 0.5 * h)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn set_and_get() {
        let mut p = Placement::zeros(3);
        p.set_position(CellId::from_index(1), Point::new(2.0, 3.0));
        assert_eq!(p.position(CellId::from_index(1)), Point::new(2.0, 3.0));
        assert_eq!(p.position(CellId::from_index(0)), Point::new(0.0, 0.0));
    }

    #[test]
    fn l1_distance_symmetry() {
        let a = Placement::from_coords(vec![0.0, 1.0], vec![0.0, 1.0]);
        let b = Placement::from_coords(vec![3.0, 1.0], vec![0.0, 5.0]);
        assert_eq!(a.l1_distance(&b), 7.0);
        assert_eq!(b.l1_distance(&a), 7.0);
        assert_eq!(a.l1_distance(&a), 0.0);
    }

    #[test]
    fn cell_rect_centered() {
        let mut p = Placement::zeros(1);
        p.set_position(CellId::from_index(0), Point::new(10.0, 20.0));
        let r = p.cell_rect(CellId::from_index(0), 4.0, 2.0);
        assert_eq!(r, Rect::new(8.0, 19.0, 12.0, 21.0));
    }

    #[test]
    #[should_panic]
    fn l1_distance_mismatched_lengths() {
        let a = Placement::zeros(2);
        let b = Placement::zeros(3);
        a.l1_distance(&b);
    }
}
