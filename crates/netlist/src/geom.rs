//! Planar geometry primitives shared across the placer.

/// A point in the layout plane, in database units (abstract length units —
/// the paper measures both costs and penalties "in meters" so that the
/// Lagrange multiplier λ is dimensionless; any consistent unit works).
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Point {
    /// Horizontal coordinate.
    pub x: f64,
    /// Vertical coordinate.
    pub y: f64,
}

impl Point {
    /// Creates a point.
    pub fn new(x: f64, y: f64) -> Self {
        Self { x, y }
    }

    /// L1 (Manhattan) distance to another point.
    pub fn l1_distance(&self, other: Point) -> f64 {
        (self.x - other.x).abs() + (self.y - other.y).abs()
    }
}

/// An axis-aligned rectangle `[lx, hx] × [ly, hy]`.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Rect {
    /// Left edge.
    pub lx: f64,
    /// Bottom edge.
    pub ly: f64,
    /// Right edge.
    pub hx: f64,
    /// Top edge.
    pub hy: f64,
}

impl Rect {
    /// Creates a rectangle from its corner coordinates.
    ///
    /// # Panics
    ///
    /// Panics if `lx > hx` or `ly > hy`.
    pub fn new(lx: f64, ly: f64, hx: f64, hy: f64) -> Self {
        assert!(
            lx <= hx && ly <= hy,
            "degenerate rectangle {lx},{ly},{hx},{hy}"
        );
        Self { lx, ly, hx, hy }
    }

    /// Rectangle width.
    pub fn width(&self) -> f64 {
        self.hx - self.lx
    }

    /// Rectangle height.
    pub fn height(&self) -> f64 {
        self.hy - self.ly
    }

    /// Rectangle area.
    pub fn area(&self) -> f64 {
        self.width() * self.height()
    }

    /// Center point.
    pub fn center(&self) -> Point {
        Point::new(0.5 * (self.lx + self.hx), 0.5 * (self.ly + self.hy))
    }

    /// Whether `p` lies inside (or on the boundary of) the rectangle.
    pub fn contains(&self, p: Point) -> bool {
        p.x >= self.lx && p.x <= self.hx && p.y >= self.ly && p.y <= self.hy
    }

    /// Area of overlap with another rectangle (0 when disjoint).
    pub fn overlap_area(&self, other: &Rect) -> f64 {
        let w = (self.hx.min(other.hx) - self.lx.max(other.lx)).max(0.0);
        let h = (self.hy.min(other.hy) - self.ly.max(other.ly)).max(0.0);
        w * h
    }

    /// Clamps a point into the rectangle.
    pub fn clamp(&self, p: Point) -> Point {
        Point::new(p.x.clamp(self.lx, self.hx), p.y.clamp(self.ly, self.hy))
    }

    /// The smallest rectangle containing both `self` and `other`.
    pub fn union(&self, other: &Rect) -> Rect {
        Rect {
            lx: self.lx.min(other.lx),
            ly: self.ly.min(other.ly),
            hx: self.hx.max(other.hx),
            hy: self.hy.max(other.hy),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn point_l1_distance() {
        let a = Point::new(0.0, 0.0);
        let b = Point::new(3.0, -4.0);
        assert_eq!(a.l1_distance(b), 7.0);
        assert_eq!(b.l1_distance(a), 7.0);
    }

    #[test]
    fn rect_dimensions() {
        let r = Rect::new(1.0, 2.0, 4.0, 8.0);
        assert_eq!(r.width(), 3.0);
        assert_eq!(r.height(), 6.0);
        assert_eq!(r.area(), 18.0);
        assert_eq!(r.center(), Point::new(2.5, 5.0));
    }

    #[test]
    fn rect_contains_boundary() {
        let r = Rect::new(0.0, 0.0, 1.0, 1.0);
        assert!(r.contains(Point::new(0.0, 0.0)));
        assert!(r.contains(Point::new(1.0, 1.0)));
        assert!(!r.contains(Point::new(1.0001, 0.5)));
    }

    #[test]
    fn overlap_area_disjoint_and_nested() {
        let a = Rect::new(0.0, 0.0, 2.0, 2.0);
        let b = Rect::new(3.0, 3.0, 4.0, 4.0);
        assert_eq!(a.overlap_area(&b), 0.0);
        let c = Rect::new(0.5, 0.5, 1.5, 1.5);
        assert_eq!(a.overlap_area(&c), 1.0);
        let d = Rect::new(1.0, 1.0, 3.0, 3.0);
        assert_eq!(a.overlap_area(&d), 1.0);
    }

    #[test]
    fn clamp_into_rect() {
        let r = Rect::new(0.0, 0.0, 10.0, 5.0);
        assert_eq!(r.clamp(Point::new(-2.0, 7.0)), Point::new(0.0, 5.0));
        assert_eq!(r.clamp(Point::new(3.0, 3.0)), Point::new(3.0, 3.0));
    }

    #[test]
    fn union_covers_both() {
        let a = Rect::new(0.0, 0.0, 1.0, 1.0);
        let b = Rect::new(2.0, -1.0, 3.0, 0.5);
        let u = a.union(&b);
        assert_eq!(u, Rect::new(0.0, -1.0, 3.0, 1.0));
    }

    #[test]
    #[should_panic(expected = "degenerate")]
    fn degenerate_rect_panics() {
        Rect::new(1.0, 0.0, 0.0, 1.0);
    }
}
