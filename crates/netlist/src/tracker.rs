//! Incremental HPWL tracking with transactional moves.
//!
//! Detailed placement and annealing-style refiners evaluate millions of
//! candidate moves; recomputing whole-design HPWL per candidate is
//! prohibitive, and even recomputing all incident nets twice (before/after)
//! doubles the work. [`HpwlTracker`] owns a working placement, caches every
//! net's bounding box and the weighted total, and exposes a
//! begin/move/commit-or-rollback protocol so a candidate's cost delta is
//! obtained by updating only the nets the moved cells touch.

use crate::cell::CellId;
use crate::design::Design;
use crate::geom::Point;
use crate::hpwl;
use crate::net::NetId;
use crate::placement::Placement;

type Bbox = (f64, f64, f64, f64);

/// Incremental weighted-HPWL evaluator over an owned working placement.
///
/// # Example
///
/// ```
/// use complx_netlist::{generator::GeneratorConfig, HpwlTracker, Point};
///
/// let design = GeneratorConfig::small("t", 1).generate();
/// let mut tracker = HpwlTracker::new(&design, design.initial_placement());
/// let before = tracker.total();
/// let cell = design.movable_cells()[0];
///
/// tracker.begin();
/// tracker.move_cell(cell, Point::new(1.0, 1.0));
/// if tracker.total() < before {
///     tracker.commit();
/// } else {
///     tracker.rollback();
///     assert_eq!(tracker.total(), before);
/// }
/// ```
#[derive(Debug, Clone)]
pub struct HpwlTracker<'a> {
    design: &'a Design,
    placement: Placement,
    boxes: Vec<Bbox>,
    total: f64,
    /// Open-transaction log: original cell positions (first write wins).
    txn_cells: Vec<(CellId, Point)>,
    /// Open-transaction log: original net boxes (first write wins).
    txn_boxes: Vec<(NetId, Bbox)>,
    txn_total: f64,
    in_txn: bool,
}

impl<'a> HpwlTracker<'a> {
    /// Builds the tracker, computing all net boxes once.
    pub fn new(design: &'a Design, placement: Placement) -> Self {
        assert_eq!(placement.len(), design.num_cells());
        let mut boxes = Vec::with_capacity(design.num_nets());
        let mut total = 0.0;
        for nid in design.net_ids() {
            let b = hpwl::net_bbox(design, &placement, nid);
            total += design.net(nid).weight() * ((b.2 - b.0) + (b.3 - b.1));
            boxes.push(b);
        }
        Self {
            design,
            placement,
            boxes,
            total,
            txn_cells: Vec::new(),
            txn_boxes: Vec::new(),
            txn_total: 0.0,
            in_txn: false,
        }
    }

    /// The current weighted HPWL (reflects uncommitted moves).
    pub fn total(&self) -> f64 {
        self.total
    }

    /// The current working placement (reflects uncommitted moves).
    pub fn placement(&self) -> &Placement {
        &self.placement
    }

    /// Consumes the tracker, returning the working placement.
    ///
    /// # Panics
    ///
    /// Panics if a transaction is open.
    pub fn into_placement(self) -> Placement {
        assert!(!self.in_txn, "finish the open transaction first");
        self.placement
    }

    /// Opens a transaction; subsequent moves can be undone with
    /// [`HpwlTracker::rollback`].
    ///
    /// # Panics
    ///
    /// Panics if a transaction is already open.
    pub fn begin(&mut self) {
        assert!(!self.in_txn, "transactions do not nest");
        self.in_txn = true;
        self.txn_total = self.total;
        self.txn_cells.clear();
        self.txn_boxes.clear();
    }

    /// Moves a cell and incrementally updates the boxes/total of its
    /// incident nets (exact recomputation per net, O(pins of the net)).
    ///
    /// # Panics
    ///
    /// Panics if no transaction is open.
    pub fn move_cell(&mut self, cell: CellId, to: Point) {
        assert!(self.in_txn, "move_cell requires an open transaction");
        let from = self.placement.position(cell);
        if from == to {
            return;
        }
        if !self.txn_cells.iter().any(|(c, _)| *c == cell) {
            self.txn_cells.push((cell, from));
        }
        self.placement.set_position(cell, to);
        for &nid in self.design.cell_nets(cell) {
            if !self.txn_boxes.iter().any(|(n, _)| *n == nid) {
                self.txn_boxes.push((nid, self.boxes[nid.index()]));
            }
            let old = self.boxes[nid.index()];
            let new = hpwl::net_bbox(self.design, &self.placement, nid);
            let w = self.design.net(nid).weight();
            self.total +=
                w * (((new.2 - new.0) + (new.3 - new.1)) - ((old.2 - old.0) + (old.3 - old.1)));
            self.boxes[nid.index()] = new;
        }
    }

    /// Swaps two cells' positions inside the open transaction.
    pub fn swap_cells(&mut self, a: CellId, b: CellId) {
        let pa = self.placement.position(a);
        let pb = self.placement.position(b);
        self.move_cell(a, pb);
        self.move_cell(b, pa);
    }

    /// Keeps the transaction's moves.
    ///
    /// # Panics
    ///
    /// Panics if no transaction is open.
    pub fn commit(&mut self) {
        assert!(self.in_txn, "no open transaction");
        self.in_txn = false;
    }

    /// Reverts every move of the open transaction.
    ///
    /// # Panics
    ///
    /// Panics if no transaction is open.
    pub fn rollback(&mut self) {
        assert!(self.in_txn, "no open transaction");
        for &(cell, from) in self.txn_cells.iter().rev() {
            self.placement.set_position(cell, from);
        }
        for &(nid, b) in self.txn_boxes.iter().rev() {
            self.boxes[nid.index()] = b;
        }
        self.total = self.txn_total;
        self.in_txn = false;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generator::GeneratorConfig;

    fn setup() -> (Design, Placement) {
        let d = GeneratorConfig::small("trk", 9).generate();
        let p = d.initial_placement();
        (d, p)
    }

    #[test]
    fn initial_total_matches_batch_hpwl() {
        let (d, p) = setup();
        let t = HpwlTracker::new(&d, p.clone());
        let expect = hpwl::weighted_hpwl(&d, &p);
        assert!((t.total() - expect).abs() < 1e-9 * expect.max(1.0));
    }

    #[test]
    fn moves_track_exactly() {
        let (d, p) = setup();
        let mut t = HpwlTracker::new(&d, p);
        let cells: Vec<_> = d.movable_cells().iter().copied().take(20).collect();
        t.begin();
        for (k, &c) in cells.iter().enumerate() {
            t.move_cell(c, Point::new(5.0 + k as f64, 7.0 + (k % 5) as f64));
        }
        t.commit();
        let expect = hpwl::weighted_hpwl(&d, t.placement());
        assert!(
            (t.total() - expect).abs() < 1e-6 * expect.max(1.0),
            "incremental {} vs batch {expect}",
            t.total()
        );
    }

    #[test]
    fn rollback_restores_everything() {
        let (d, p) = setup();
        let mut t = HpwlTracker::new(&d, p.clone());
        let before = t.total();
        t.begin();
        for &c in d.movable_cells().iter().take(10) {
            t.move_cell(c, Point::new(1.0, 1.0));
        }
        assert!(t.total() != before);
        t.rollback();
        assert_eq!(t.total(), before);
        assert_eq!(t.placement(), &p);
        // Boxes are restored too: a fresh move reproduces batch HPWL.
        t.begin();
        let c0 = d.movable_cells()[0];
        t.move_cell(c0, Point::new(2.0, 2.0));
        t.commit();
        let expect = hpwl::weighted_hpwl(&d, t.placement());
        assert!((t.total() - expect).abs() < 1e-6 * expect.max(1.0));
    }

    #[test]
    fn swap_is_two_moves() {
        let (d, p) = setup();
        let mut t = HpwlTracker::new(&d, p);
        let a = d.movable_cells()[0];
        let b = d.movable_cells()[1];
        let pa = t.placement().position(a);
        let pb = t.placement().position(b);
        t.begin();
        t.swap_cells(a, b);
        t.commit();
        assert_eq!(t.placement().position(a), pb);
        assert_eq!(t.placement().position(b), pa);
    }

    #[test]
    #[should_panic(expected = "open transaction")]
    fn move_without_txn_panics() {
        let (d, p) = setup();
        let mut t = HpwlTracker::new(&d, p);
        t.move_cell(d.movable_cells()[0], Point::new(0.0, 0.0));
    }

    #[test]
    #[should_panic(expected = "do not nest")]
    fn nested_txn_panics() {
        let (d, p) = setup();
        let mut t = HpwlTracker::new(&d, p);
        t.begin();
        t.begin();
    }

    #[test]
    fn into_placement_returns_working_state() {
        let (d, p) = setup();
        let mut t = HpwlTracker::new(&d, p);
        let c = d.movable_cells()[0];
        t.begin();
        t.move_cell(c, Point::new(3.0, 4.0));
        t.commit();
        let out = t.into_placement();
        assert_eq!(out.position(c), Point::new(3.0, 4.0));
    }
}
