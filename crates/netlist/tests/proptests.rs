//! Property-based tests for netlist metrics and the generator.

use complx_netlist::{
    density::DensityGrid, generator::GeneratorConfig, hpwl, CellKind, DesignBuilder, Placement,
    Point, Rect,
};
use proptest::prelude::*;

/// Builds a random small design plus a random placement of its cells.
fn design_and_placement() -> impl Strategy<Value = (complx_netlist::Design, Placement)> {
    let n_cells = 2usize..12;
    n_cells
        .prop_flat_map(|n| {
            let coords = proptest::collection::vec((0.0f64..100.0, 0.0f64..100.0), n);
            let nets =
                proptest::collection::vec(proptest::collection::vec(0..n, 2..=n.min(5)), 1..8);
            (Just(n), coords, nets)
        })
        .prop_map(|(n, coords, nets)| {
            let mut b = DesignBuilder::new("prop", Rect::new(0.0, 0.0, 100.0, 100.0), 1.0);
            let ids: Vec<_> = (0..n)
                .map(|i| {
                    b.add_cell(format!("c{i}"), 1.0, 1.0, CellKind::Movable)
                        .expect("valid cell")
                })
                .collect();
            for (k, members) in nets.into_iter().enumerate() {
                let mut members = members;
                members.sort_unstable();
                members.dedup();
                if members.len() < 2 {
                    continue;
                }
                b.add_net(
                    format!("n{k}"),
                    1.0,
                    members.iter().map(|&m| (ids[m], 0.0, 0.0)).collect(),
                )
                .expect("valid net");
            }
            // Ensure at least one net exists.
            if b.clone().build().expect("valid design").num_nets() == 0 {
                b.add_net("nz", 1.0, vec![(ids[0], 0.0, 0.0), (ids[1], 0.0, 0.0)])
                    .expect("valid net");
            }
            let d = b.build().expect("valid design");
            let mut p = Placement::zeros(n);
            for (i, (x, y)) in coords.into_iter().enumerate() {
                p.set_position(complx_netlist::CellId::from_index(i), Point::new(x, y));
            }
            (d, p)
        })
}

proptest! {
    #[test]
    fn hpwl_is_translation_invariant((d, p) in design_and_placement(), dx in -50.0f64..50.0, dy in -50.0f64..50.0) {
        let base = hpwl::hpwl(&d, &p);
        let mut shifted = p.clone();
        for v in shifted.xs_mut() { *v += dx; }
        for v in shifted.ys_mut() { *v += dy; }
        prop_assert!((hpwl::hpwl(&d, &shifted) - base).abs() < 1e-9 * base.max(1.0));
    }

    #[test]
    fn hpwl_scales_linearly((d, p) in design_and_placement(), s in 0.1f64..10.0) {
        let base = hpwl::hpwl(&d, &p);
        let mut scaled = p.clone();
        for v in scaled.xs_mut() { *v *= s; }
        for v in scaled.ys_mut() { *v *= s; }
        prop_assert!((hpwl::hpwl(&d, &scaled) - s * base).abs() < 1e-9 * (s * base).max(1.0));
    }

    #[test]
    fn hpwl_nonnegative_and_zero_iff_coincident((d, p) in design_and_placement()) {
        prop_assert!(hpwl::hpwl(&d, &p) >= 0.0);
        let collapsed = Placement::from_coords(vec![5.0; p.len()], vec![5.0; p.len()]);
        prop_assert!(hpwl::hpwl(&d, &collapsed).abs() < 1e-12);
    }

    #[test]
    fn density_usage_conserves_area((d, p) in design_and_placement(), bins in 1usize..12) {
        // Clamp placement into the core so all area lands on the grid.
        let mut q = p.clone();
        for v in q.xs_mut() { *v = v.clamp(1.0, 99.0); }
        for v in q.ys_mut() { *v = v.clamp(1.0, 99.0); }
        let g = DensityGrid::build(&d, &q, bins, bins);
        let total: f64 = (0..bins)
            .flat_map(|iy| (0..bins).map(move |ix| (ix, iy)))
            .map(|(ix, iy)| g.usage(ix, iy))
            .sum();
        prop_assert!((total - d.movable_area()).abs() < 1e-6 * d.movable_area().max(1.0));
    }

    #[test]
    fn l1_distance_is_a_metric((d, p) in design_and_placement(), (d2, q) in design_and_placement()) {
        let _ = (d, d2);
        if p.len() == q.len() {
            prop_assert!((p.l1_distance(&q) - q.l1_distance(&p)).abs() < 1e-9);
            prop_assert!(p.l1_distance(&p) == 0.0);
        }
    }

    #[test]
    fn generator_seeds_are_reproducible(seed in 0u64..1000) {
        let mut cfg = GeneratorConfig::small("s", seed);
        cfg.num_std_cells = 60;
        cfg.num_pads = 12;
        let a = cfg.generate();
        let b = cfg.generate();
        prop_assert_eq!(a.num_nets(), b.num_nets());
        prop_assert_eq!(a.num_pins(), b.num_pins());
        prop_assert_eq!(a.core(), b.core());
    }
}
