//! Edge-case tests for the Bookshelf parser: comments, whitespace quirks,
//! optional files, and real-world format variations.

use std::fs;
use std::path::PathBuf;

use complx_netlist::{bookshelf, CellKind};

fn tmp(tag: &str) -> PathBuf {
    let d = std::env::temp_dir().join(format!("complx_bs_edge_{tag}_{}", std::process::id()));
    let _ = fs::remove_dir_all(&d);
    fs::create_dir_all(&d).expect("temp dir");
    d
}

fn write_minimal(dir: &std::path::Path, nets_body: &str) {
    fs::write(
        dir.join("x.aux"),
        "RowBasedPlacement : x.nodes x.nets x.pl x.scl\n",
    )
    .expect("write aux");
    fs::write(
        dir.join("x.nodes"),
        "UCLA nodes 1.0\n# a comment line\nNumNodes : 3\nNumTerminals : 1\n  a  2  1\n  b  2  1\n  p  1  1  terminal_NI\n",
    )
    .expect("write nodes");
    fs::write(dir.join("x.nets"), nets_body).expect("write nets");
    fs::write(
        dir.join("x.pl"),
        "UCLA pl 1.0\n# positions\na 0 0 : N\nb 5 0 : N\np 0 5 : N /FIXED_NI\n",
    )
    .expect("write pl");
    fs::write(
        dir.join("x.scl"),
        "UCLA scl 1.0\nNumRows : 10\nCoreRow Horizontal\n Coordinate : 0\n Height : 1\n Sitewidth : 1\n Sitespacing : 1\n SubrowOrigin : 0 NumSites : 10\nEnd\n",
    )
    .expect("write scl");
}

#[test]
fn comments_and_extra_whitespace_tolerated() {
    let dir = tmp("comments");
    write_minimal(
        &dir,
        "UCLA nets 1.0\n# nets below\nNumNets : 1\nNumPins : 3\nNetDegree : 3   n0\n  a  B : 0.5 0\n  b  I : -0.5 0\n  p  O : 0 0\n",
    );
    let bundle = bookshelf::read_aux(dir.join("x.aux")).expect("parse succeeds");
    assert_eq!(bundle.design.num_cells(), 3);
    assert_eq!(bundle.design.num_nets(), 1);
    assert_eq!(bundle.design.num_pins(), 3);
    // Pin offsets survive.
    let nid = bundle.design.net_ids().next().expect("one net");
    assert_eq!(bundle.design.net_pins(nid)[0].dx, 0.5);
    fs::remove_dir_all(&dir).expect("cleanup");
}

#[test]
fn pins_without_offsets_default_to_center() {
    let dir = tmp("nooffsets");
    write_minimal(
        &dir,
        "UCLA nets 1.0\nNumNets : 1\nNumPins : 2\nNetDegree : 2 n0\n a B\n b B\n",
    );
    let bundle = bookshelf::read_aux(dir.join("x.aux")).expect("parse succeeds");
    let nid = bundle.design.net_ids().next().expect("one net");
    for pin in bundle.design.net_pins(nid) {
        assert_eq!((pin.dx, pin.dy), (0.0, 0.0));
    }
    fs::remove_dir_all(&dir).expect("cleanup");
}

#[test]
fn single_pin_nets_are_dropped_not_fatal() {
    let dir = tmp("singlepin");
    write_minimal(
        &dir,
        "UCLA nets 1.0\nNumNets : 2\nNumPins : 3\nNetDegree : 1 lonely\n a B : 0 0\nNetDegree : 2 n0\n a B : 0 0\n b B : 0 0\n",
    );
    let bundle = bookshelf::read_aux(dir.join("x.aux")).expect("parse succeeds");
    assert_eq!(
        bundle.design.num_nets(),
        1,
        "single-pin net must be dropped"
    );
    fs::remove_dir_all(&dir).expect("cleanup");
}

#[test]
fn unknown_node_in_net_is_an_error() {
    let dir = tmp("unknown");
    write_minimal(
        &dir,
        "UCLA nets 1.0\nNumNets : 1\nNumPins : 2\nNetDegree : 2 n0\n a B : 0 0\n ghost B : 0 0\n",
    );
    let err = bookshelf::read_aux(dir.join("x.aux")).expect_err("must fail");
    assert!(err.to_string().contains("ghost"), "{err}");
    fs::remove_dir_all(&dir).expect("cleanup");
}

#[test]
fn terminal_vs_fixed_kind_mapping() {
    // `terminal` (blocks capacity) vs `terminal_NI` (does not).
    let dir = tmp("kinds2");
    fs::write(
        dir.join("x.aux"),
        "RowBasedPlacement : x.nodes x.nets x.pl x.scl\n",
    )
    .expect("write aux");
    fs::write(
        dir.join("x.nodes"),
        "UCLA nodes 1.0\nNumNodes : 3\nNumTerminals : 2\na 2 1\nblock 3 3 terminal\npad 1 1 terminal_NI\n",
    )
    .expect("write nodes");
    fs::write(
        dir.join("x.nets"),
        "UCLA nets 1.0\nNumNets : 1\nNumPins : 2\nNetDegree : 2 n0\n a B : 0 0\n pad B : 0 0\n",
    )
    .expect("write nets");
    fs::write(
        dir.join("x.pl"),
        "UCLA pl 1.0\na 0 0 : N\nblock 4 4 : N /FIXED\npad 0 9 : N /FIXED_NI\n",
    )
    .expect("write pl");
    // Ten rows of height 1 → a 10×10 core that contains the block.
    let mut scl = String::from("UCLA scl 1.0\nNumRows : 10\n");
    for r in 0..10 {
        scl.push_str(&format!(
            "CoreRow Horizontal\n Coordinate : {r}\n Height : 1\n Sitewidth : 1\n SubrowOrigin : 0 NumSites : 10\nEnd\n"
        ));
    }
    fs::write(dir.join("x.scl"), scl).expect("write scl");
    let bundle = bookshelf::read_aux(dir.join("x.aux")).expect("parse succeeds");
    let d = &bundle.design;
    assert_eq!(d.core().height(), 10.0);
    assert_eq!(
        d.cell(d.find_cell("block").expect("exists")).kind(),
        CellKind::Fixed
    );
    assert_eq!(
        d.cell(d.find_cell("pad").expect("exists")).kind(),
        CellKind::Terminal
    );
    // The block consumes capacity; the pad does not.
    assert!(d.obstacle_area() > 0.0);
    fs::remove_dir_all(&dir).expect("cleanup");
}

#[test]
fn wts_file_optional_and_weights_applied() {
    let dir = tmp("wts");
    fs::write(
        dir.join("x.aux"),
        "RowBasedPlacement : x.nodes x.nets x.wts x.pl x.scl\n",
    )
    .expect("write aux");
    fs::write(
        dir.join("x.nodes"),
        "UCLA nodes 1.0\nNumNodes : 2\nNumTerminals : 0\na 1 1\nb 1 1\n",
    )
    .expect("write nodes");
    fs::write(
        dir.join("x.nets"),
        "UCLA nets 1.0\nNumNets : 2\nNumPins : 4\nNetDegree : 2 hot\n a B : 0 0\n b B : 0 0\nNetDegree : 2 cold\n a B : 0 0\n b B : 0 0\n",
    )
    .expect("write nets");
    fs::write(dir.join("x.wts"), "UCLA wts 1.0\nhot 7.5\n").expect("write wts");
    fs::write(dir.join("x.pl"), "UCLA pl 1.0\na 0 0 : N\nb 5 5 : N\n").expect("write pl");
    fs::write(
        dir.join("x.scl"),
        "UCLA scl 1.0\nNumRows : 10\nCoreRow Horizontal\n Coordinate : 0\n Height : 1\n Sitewidth : 1\n SubrowOrigin : 0 NumSites : 10\nEnd\n",
    )
    .expect("write scl");
    let bundle = bookshelf::read_aux(dir.join("x.aux")).expect("parse succeeds");
    let d = &bundle.design;
    let weights: Vec<(String, f64)> = d
        .net_ids()
        .map(|n| (d.net(n).name().to_string(), d.net(n).weight()))
        .collect();
    assert!(weights.contains(&("hot".to_string(), 7.5)));
    assert!(weights.contains(&("cold".to_string(), 1.0)));
    fs::remove_dir_all(&dir).expect("cleanup");
}

/// Writes a fully custom bundle for degenerate-input tests.
fn write_custom(dir: &std::path::Path, nodes: &str, nets: &str, pl: &str, scl: &str) {
    fs::write(
        dir.join("x.aux"),
        "RowBasedPlacement : x.nodes x.nets x.pl x.scl\n",
    )
    .expect("write aux");
    fs::write(dir.join("x.nodes"), nodes).expect("write nodes");
    fs::write(dir.join("x.nets"), nets).expect("write nets");
    fs::write(dir.join("x.pl"), pl).expect("write pl");
    fs::write(dir.join("x.scl"), scl).expect("write scl");
}

const SCL_ONE_ROW: &str = "UCLA scl 1.0\nNumRows : 1\nCoreRow Horizontal\n Coordinate : 0\n Height : 1\n Sitewidth : 1\n SubrowOrigin : 0 NumSites : 10\nEnd\n";

#[test]
fn zero_area_terminal_is_accepted() {
    // Bookshelf pad terminals are commonly declared 0x0; they must parse.
    let dir = tmp("zeroterm");
    write_custom(
        &dir,
        "UCLA nodes 1.0\nNumNodes : 3\nNumTerminals : 1\na 2 1\nb 2 1\npad 0 0 terminal\n",
        "UCLA nets 1.0\nNumNets : 1\nNumPins : 3\nNetDegree : 3 n0\na B\nb I\npad O\n",
        "UCLA pl 1.0\na 0 0 : N\nb 5 0 : N\npad 0 5 : N /FIXED\n",
        SCL_ONE_ROW,
    );
    let bundle = bookshelf::read_aux(dir.join("x.aux")).expect("zero-area terminal parses");
    assert_eq!(bundle.design.num_cells(), 3);
    let pad = bundle
        .design
        .cell_ids()
        .find(|&id| bundle.design.cell(id).name() == "pad")
        .expect("pad present");
    assert_eq!(bundle.design.cell(pad).kind(), CellKind::Fixed);
    assert_eq!(bundle.design.cell(pad).area(), 0.0);
    fs::remove_dir_all(&dir).expect("cleanup");
}

#[test]
fn zero_area_movable_node_is_structured_error() {
    let dir = tmp("zeromov");
    write_custom(
        &dir,
        "UCLA nodes 1.0\nNumNodes : 2\nNumTerminals : 0\na 0 1\nb 2 1\n",
        "UCLA nets 1.0\nNumNets : 1\nNumPins : 2\nNetDegree : 2 n0\na B\nb I\n",
        "UCLA pl 1.0\na 0 0 : N\nb 5 0 : N\n",
        SCL_ONE_ROW,
    );
    let err = bookshelf::read_aux(dir.join("x.aux")).expect_err("zero-area movable rejected");
    let msg = err.to_string();
    assert!(msg.contains('a') && msg.contains("dimensions"), "{msg}");
    fs::remove_dir_all(&dir).expect("cleanup");
}

#[test]
fn nan_node_dimensions_are_structured_error() {
    let dir = tmp("nandims");
    write_custom(
        &dir,
        "UCLA nodes 1.0\nNumNodes : 2\nNumTerminals : 0\na NaN 1\nb 2 1\n",
        "UCLA nets 1.0\nNumNets : 1\nNumPins : 2\nNetDegree : 2 n0\na B\nb I\n",
        "UCLA pl 1.0\na 0 0 : N\nb 5 0 : N\n",
        SCL_ONE_ROW,
    );
    // `NaN` parses as a float, so the builder (not the tokenizer) must
    // reject it.
    let err = bookshelf::read_aux(dir.join("x.aux")).expect_err("NaN dims rejected");
    assert!(err.to_string().contains("dimensions"), "{err}");
    fs::remove_dir_all(&dir).expect("cleanup");
}

#[test]
fn all_fixed_design_parses_with_zero_movable_cells() {
    let dir = tmp("allfixed");
    write_custom(
        &dir,
        "UCLA nodes 1.0\nNumNodes : 2\nNumTerminals : 2\na 2 1 terminal\nb 2 1 terminal\n",
        "UCLA nets 1.0\nNumNets : 1\nNumPins : 2\nNetDegree : 2 n0\na B\nb I\n",
        "UCLA pl 1.0\na 0 0 : N /FIXED\nb 5 0 : N /FIXED\n",
        SCL_ONE_ROW,
    );
    let bundle = bookshelf::read_aux(dir.join("x.aux")).expect("all-fixed design parses");
    assert_eq!(bundle.design.num_cells(), 2);
    assert!(bundle.design.movable_cells().is_empty());
    fs::remove_dir_all(&dir).expect("cleanup");
}

#[test]
fn scl_with_no_rows_is_structured_error() {
    let dir = tmp("norows");
    write_custom(
        &dir,
        "UCLA nodes 1.0\nNumNodes : 2\nNumTerminals : 0\na 2 1\nb 2 1\n",
        "UCLA nets 1.0\nNumNets : 1\nNumPins : 2\nNetDegree : 2 n0\na B\nb I\n",
        "UCLA pl 1.0\na 0 0 : N\nb 5 0 : N\n",
        "UCLA scl 1.0\nNumRows : 0\n",
    );
    let err = bookshelf::read_aux(dir.join("x.aux")).expect_err("empty scl rejected");
    assert!(err.to_string().contains("rows"), "{err}");
    fs::remove_dir_all(&dir).expect("cleanup");
}

#[test]
fn empty_rows_are_skipped_not_folded_into_core() {
    // A zero-site row must not stretch or collapse the core rectangle.
    let dir = tmp("emptyrow");
    let scl = "UCLA scl 1.0\nNumRows : 2\nCoreRow Horizontal\n Coordinate : 0\n Height : 1\n Sitewidth : 1\n SubrowOrigin : 0 NumSites : 10\nEnd\nCoreRow Horizontal\n Coordinate : 50\n Height : 0\n Sitewidth : 1\n SubrowOrigin : -100 NumSites : 0\nEnd\n";
    write_custom(
        &dir,
        "UCLA nodes 1.0\nNumNodes : 2\nNumTerminals : 0\na 2 1\nb 2 1\n",
        "UCLA nets 1.0\nNumNets : 1\nNumPins : 2\nNetDegree : 2 n0\na B\nb I\n",
        "UCLA pl 1.0\na 0 0 : N\nb 5 0 : N\n",
        scl,
    );
    let bundle = bookshelf::read_aux(dir.join("x.aux")).expect("parses despite empty row");
    let core = bundle.design.core();
    assert_eq!((core.lx, core.ly, core.hx, core.hy), (0.0, 0.0, 10.0, 1.0));
    fs::remove_dir_all(&dir).expect("cleanup");
}
