//! Legalization and detailed placement — the FastPlace-DP stand-in.
//!
//! ComPLx's evaluation (paper Section 6) runs FastPlace-DP (reference \[28\]) after global
//! placement; convergence analysis (Section 4) only requires a detailed
//! placer that "should not increase costs" when started from a feasible
//! placement. This crate implements the same three techniques the
//! FastPlace-DP paper describes, plus the legalizers they rely on:
//!
//! * [`RowLayout`] — standard-cell rows carved into segments around fixed
//!   obstacles (and legalized macros),
//! * [`tetris_legalize`] — greedy left-to-right legalization (fast, used as
//!   a fallback and as the macro legalizer's helper),
//! * [`abacus_legalize`] — row-based least-displacement legalization with
//!   cluster merging (the default),
//! * [`DetailedPlacer`] — iterative *global swap*, *vertical swap* and
//!   *local reordering* passes until improvement stalls.
//!
//! # Example
//!
//! ```
//! use complx_netlist::generator::GeneratorConfig;
//! use complx_legalize::{DetailedPlacer, Legalizer};
//!
//! let design = GeneratorConfig::small("demo", 9).generate();
//! let global = design.initial_placement();
//! let legal = Legalizer::default().legalize(&design, &global);
//! assert!(complx_legalize::is_legal(&design, &legal.placement, 1e-6));
//! let refined = DetailedPlacer::default().improve(&design, legal.placement);
//! assert!(complx_legalize::is_legal(&design, &refined.placement, 1e-6));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod abacus;
mod detail;
mod legalizer;
mod macros;
pub mod mirror;
mod rows;
mod tetris;
mod verify;

pub use abacus::abacus_legalize;
pub use detail::{DetailResult, DetailStats, DetailedPlacer};
pub use legalizer::{LegalPlacement, Legalizer, LegalizerAlgorithm};
pub use macros::legalize_macros;
pub use rows::{RowLayout, Segment};
pub use tetris::tetris_legalize;
pub use verify::{is_legal, legality_report, legality_report_with_tol, LegalityReport};
