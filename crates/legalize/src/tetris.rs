//! Greedy ("Tetris") legalization.

use complx_netlist::{CellKind, Design, Placement, Point};

use crate::rows::RowLayout;

/// Legalizes the movable standard cells of `placement` onto `rows` with the
/// classic greedy sweep: cells are processed in order of their left edge;
/// each is placed at the feasible position minimizing its displacement,
/// packing rows left to right. Cells the sweep cannot fit (fragmentation)
/// get a second, gap-aware pass that places them into the nearest remaining
/// free gap. Macros are not handled here (see [`crate::legalize_macros`]);
/// their row blockages must already be carved into `rows`.
///
/// Like every Tetris-style legalizer, this works best on a *pre-spread*
/// input (e.g. a ComPLx upper-bound placement); heavily stacked inputs
/// waste row space and displace cells further. Use
/// [`crate::abacus_legalize`] (the default) when displacement matters.
///
/// Returns the number of cells that could not be placed at all (0 unless
/// the free space is truly exhausted).
pub fn tetris_legalize(design: &Design, rows: &RowLayout, placement: &mut Placement) -> usize {
    // Placed intervals per row/segment, kept sorted by construction (the
    // cursor only moves right) and by sorted insertion in the fallback.
    let mut placed: Vec<Vec<Vec<(f64, f64)>>> = (0..rows.num_rows())
        .map(|r| vec![Vec::new(); rows.segments(r).len()])
        .collect();
    let mut cursors: Vec<Vec<f64>> = (0..rows.num_rows())
        .map(|r| rows.segments(r).iter().map(|s| s.lx).collect())
        .collect();

    let mut order: Vec<_> = design
        .movable_cells()
        .iter()
        .copied()
        .filter(|&id| design.cell(id).kind() == CellKind::Movable)
        .collect();
    order.sort_by(|&a, &b| {
        let la = placement.position(a).x - 0.5 * design.cell(a).width();
        let lb = placement.position(b).x - 0.5 * design.cell(b).width();
        la.total_cmp(&lb)
    });

    let mut deferred = Vec::new();
    for id in order {
        let cell = design.cell(id);
        let w = cell.width();
        let p = placement.position(id);
        let want_lx = p.x - 0.5 * w;
        let pref_row = rows.nearest_row(p.y);

        let mut best: Option<(f64, usize, usize, f64)> = None; // (cost, row, seg, lx)
        for off in row_offsets(rows.num_rows()) {
            let r = pref_row as isize + off;
            if r < 0 || r >= rows.num_rows() as isize {
                continue;
            }
            let r = r as usize;
            let dy = (rows.row_center(r) - p.y).abs();
            if let Some((cost, ..)) = best {
                if dy >= cost {
                    continue;
                }
            }
            for (si, seg) in rows.segments(r).iter().enumerate() {
                let cursor = cursors[r][si];
                if cursor + w > seg.hx + 1e-9 {
                    continue;
                }
                // Clamp leftward when the desired position lies beyond the
                // segment end (cells may move left of their target).
                let lx = want_lx.max(cursor).min(seg.hx - w);
                let cost = (lx - want_lx).abs() + dy;
                if best.is_none_or(|(best_cost, ..)| cost < best_cost) {
                    best = Some((cost, r, si, lx));
                }
            }
        }

        match best {
            Some((_, r, si, lx)) => {
                cursors[r][si] = lx + w;
                placed[r][si].push((lx, lx + w));
                placement.set_position(id, Point::new(lx + 0.5 * w, rows.row_center(r)));
            }
            None => deferred.push(id),
        }
    }

    // Gap-aware fallback for cells the monotone sweep could not fit.
    let mut failures = 0;
    for id in deferred {
        let cell = design.cell(id);
        let w = cell.width();
        let p = placement.position(id);
        let want_lx = p.x - 0.5 * w;
        let pref_row = rows.nearest_row(p.y);

        let mut best: Option<(f64, usize, usize, usize, f64)> = None; // (cost, row, seg, insert_at, lx)
        for off in row_offsets(rows.num_rows()) {
            let r = pref_row as isize + off;
            if r < 0 || r >= rows.num_rows() as isize {
                continue;
            }
            let r = r as usize;
            let dy = (rows.row_center(r) - p.y).abs();
            if let Some((cost, ..)) = best {
                if dy >= cost {
                    continue;
                }
            }
            for (si, seg) in rows.segments(r).iter().enumerate() {
                let ints = &placed[r][si];
                let mut prev_end = seg.lx;
                for (k, &(ilx, ihx)) in ints
                    .iter()
                    .chain(std::iter::once(&(seg.hx, seg.hx)))
                    .enumerate()
                {
                    if ilx - prev_end >= w - 1e-9 {
                        let lx = want_lx.clamp(prev_end, ilx - w);
                        let cost = (lx - want_lx).abs() + dy;
                        if best.is_none_or(|(best_cost, ..)| cost < best_cost) {
                            best = Some((cost, r, si, k, lx));
                        }
                    }
                    prev_end = prev_end.max(ihx);
                }
            }
        }
        match best {
            Some((_, r, si, k, lx)) => {
                placed[r][si].insert(k, (lx, lx + w));
                placement.set_position(id, Point::new(lx + 0.5 * w, rows.row_center(r)));
            }
            None => failures += 1,
        }
    }
    failures
}

/// Row search order: 0, +1, −1, +2, −2, …
fn row_offsets(num_rows: usize) -> impl Iterator<Item = isize> {
    (0..num_rows as isize).flat_map(|d| if d == 0 { vec![0] } else { vec![d, -d] })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::verify::is_legal;
    use complx_netlist::generator::GeneratorConfig;

    /// A deterministic pre-spread placement (what Tetris is designed for).
    fn spread_start(d: &complx_netlist::Design) -> complx_netlist::Placement {
        let core = d.core();
        let mut p = d.initial_placement();
        for (i, &id) in d.movable_cells().iter().enumerate() {
            let fx = (i as f64 * 0.61803) % 1.0;
            let fy = (i as f64 * 0.31415) % 1.0;
            p.set_position(
                id,
                Point::new(core.lx + fx * core.width(), core.ly + fy * core.height()),
            );
        }
        p
    }

    #[test]
    fn tetris_produces_legal_rows() {
        let d = GeneratorConfig::small("t", 11).generate();
        let rows = RowLayout::new(&d, &[]);
        let mut p = spread_start(&d);
        let failures = tetris_legalize(&d, &rows, &mut p);
        assert_eq!(failures, 0);
        assert!(is_legal(&d, &p, 1e-6));
    }

    #[test]
    fn tetris_handles_stacked_input_via_fallback() {
        let d = GeneratorConfig::small("ts", 14).generate();
        let rows = RowLayout::new(&d, &[]);
        let mut p = d.initial_placement(); // everything at the core center
        let failures = tetris_legalize(&d, &rows, &mut p);
        assert_eq!(failures, 0);
        assert!(is_legal(&d, &p, 1e-6));
    }

    #[test]
    fn tetris_is_deterministic() {
        let d = GeneratorConfig::small("t2", 12).generate();
        let rows = RowLayout::new(&d, &[]);
        let mut a = spread_start(&d);
        let mut b = spread_start(&d);
        tetris_legalize(&d, &rows, &mut a);
        tetris_legalize(&d, &rows, &mut b);
        assert_eq!(a, b);
    }

    #[test]
    fn spread_input_moves_less_than_stacked_input() {
        let d = GeneratorConfig::small("t3", 13).generate();
        let rows = RowLayout::new(&d, &[]);
        let stacked = d.initial_placement();
        let mut stacked_out = stacked.clone();
        tetris_legalize(&d, &rows, &mut stacked_out);
        let disp_stacked = stacked.l1_distance(&stacked_out);
        let spreadish = spread_start(&d);
        let mut spread_out = spreadish.clone();
        tetris_legalize(&d, &rows, &mut spread_out);
        let disp_spread = spreadish.l1_distance(&spread_out);
        assert!(
            disp_spread < disp_stacked,
            "spread {disp_spread} vs stacked {disp_stacked}"
        );
    }
}
