//! Detailed placement: global swap, vertical swap, and local reordering —
//! the three moves of FastPlace-DP (Pan, Viswanathan, Chu, ICCAD 2005).
//!
//! The input must be a legal placement (see [`crate::Legalizer`]); every
//! accepted move preserves legality, so the output is legal too, and HPWL
//! never increases — the property ComPLx's convergence argument relies on
//! (paper Section 4: "performing detailed placement on a feasible solution
//! should not increase costs").
//!
//! Candidate moves are evaluated through [`HpwlTracker`]'s transactional
//! protocol, so each trial costs only the moved cells' incident nets.

use complx_netlist::{hpwl, CellId, CellKind, Design, HpwlTracker, Placement, Point};

use crate::rows::RowLayout;

/// Outcome of a [`DetailedPlacer::improve`] run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DetailStats {
    /// HPWL before refinement.
    pub hpwl_before: f64,
    /// HPWL after refinement.
    pub hpwl_after: f64,
    /// Number of full passes executed.
    pub passes: usize,
    /// Number of accepted moves.
    pub moves: usize,
}

/// Result wrapper: refined placement plus statistics.
#[derive(Debug, Clone)]
pub struct DetailResult {
    /// The refined legal placement.
    pub placement: Placement,
    /// Run statistics.
    pub stats: DetailStats,
}

/// The iterative detailed placer.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DetailedPlacer {
    /// Maximum number of full passes.
    pub max_passes: usize,
    /// Stop when a pass improves HPWL by less than this fraction.
    pub min_improvement: f64,
}

impl Default for DetailedPlacer {
    fn default() -> Self {
        Self {
            max_passes: 4,
            min_improvement: 5e-4,
        }
    }
}

/// Internal mutable state: per-row cell lists sorted by x.
struct RowState<'a> {
    design: &'a Design,
    rows: RowLayout,
    /// Sorted (by left edge) cells per row.
    cells: Vec<Vec<CellId>>,
    /// Current row of each std cell (usize::MAX when not row-bound).
    row_of: Vec<usize>,
}

impl<'a> RowState<'a> {
    fn new(design: &'a Design, placement: &Placement) -> Self {
        // Macro footprints become blockages.
        let blockages: Vec<_> = design
            .movable_cells()
            .iter()
            .filter(|&&id| design.cell(id).kind() == CellKind::MovableMacro)
            .map(|&id| {
                let c = design.cell(id);
                placement.cell_rect(id, c.width(), c.height())
            })
            .collect();
        let rows = RowLayout::new(design, &blockages);
        let mut cells: Vec<Vec<CellId>> = vec![Vec::new(); rows.num_rows()];
        let mut row_of = vec![usize::MAX; design.num_cells()];
        for &id in design.movable_cells() {
            if design.cell(id).kind() != CellKind::Movable {
                continue;
            }
            let r = rows.nearest_row(placement.position(id).y);
            cells[r].push(id);
            row_of[id.index()] = r;
        }
        for r in 0..cells.len() {
            cells[r].sort_by(|&a, &b| placement.position(a).x.total_cmp(&placement.position(b).x));
        }
        Self {
            design,
            rows,
            cells,
            row_of,
        }
    }

    /// The free interval around the cell at `pos` in row `r` — from the
    /// right edge of its left neighbor to the left edge of its right
    /// neighbor, clipped to the containing segment.
    fn slot(&self, placement: &Placement, r: usize, pos: usize) -> (f64, f64) {
        let id = self.cells[r][pos];
        let x = placement.position(id).x;
        let (mut lo, mut hi) = (f64::NEG_INFINITY, f64::INFINITY);
        if pos > 0 {
            let n = self.cells[r][pos - 1];
            lo = placement.position(n).x + 0.5 * self.design.cell(n).width();
        }
        if pos + 1 < self.cells[r].len() {
            let n = self.cells[r][pos + 1];
            hi = placement.position(n).x - 0.5 * self.design.cell(n).width();
        }
        // Clip to the segment containing the cell.
        for seg in self.rows.segments(r) {
            if x >= seg.lx - 1e-9 && x <= seg.hx + 1e-9 {
                lo = lo.max(seg.lx);
                hi = hi.min(seg.hx);
                break;
            }
        }
        (lo, hi)
    }
}

impl DetailedPlacer {
    /// Refines a legal placement; never increases HPWL.
    ///
    /// The input is assumed legal (row-aligned, overlap-free); illegal
    /// inputs are refined on a best-effort basis but legality is only
    /// preserved, not established.
    pub fn improve(&self, design: &Design, placement: Placement) -> DetailResult {
        self.improve_with_cancel(design, placement, None)
    }

    /// [`Self::improve`] with a cooperative cancellation point between
    /// passes: when `cancel` trips, no further pass starts and the result is
    /// whatever the completed passes produced — still legal, and HPWL never
    /// worse than the input. An untripped token is bit-identical to
    /// [`Self::improve`].
    pub fn improve_with_cancel(
        &self,
        design: &Design,
        placement: Placement,
        cancel: Option<&complx_par::CancelToken>,
    ) -> DetailResult {
        let _span = complx_obs::span("detail");
        let before = hpwl::weighted_hpwl(design, &placement);
        let mut state = RowState::new(design, &placement);
        let mut tracker = HpwlTracker::new(design, placement);
        let mut total_moves = 0usize;
        let mut passes = 0usize;
        let mut last = before;
        for _ in 0..self.max_passes {
            if cancel.is_some_and(complx_par::CancelToken::is_cancelled) {
                break;
            }
            passes += 1;
            let mut moves = 0usize;
            moves += global_swap_pass(&mut state, &mut tracker);
            moves += vertical_swap_pass(&mut state, &mut tracker);
            moves += local_reorder_pass(&mut state, &mut tracker);
            total_moves += moves;
            let now = tracker.total();
            let improved = (last - now) / last.max(1e-30);
            last = now;
            if moves == 0 || improved < self.min_improvement {
                break;
            }
        }
        complx_obs::add("detail.passes", passes as u64);
        complx_obs::add("detail.moves", total_moves as u64);
        DetailResult {
            placement: tracker.into_placement(),
            stats: DetailStats {
                hpwl_before: before,
                hpwl_after: last,
                passes,
                moves: total_moves,
            },
        }
    }
}

/// The x/y position minimizing total incident-net HPWL for a single cell is
/// the median of the other-pin bounding intervals; we approximate with the
/// median of the incident nets' bbox centers (cheap, standard practice).
fn optimal_position(design: &Design, placement: &Placement, id: CellId) -> Point {
    let nets = design.cell_nets(id);
    let mut xs: Vec<f64> = Vec::with_capacity(nets.len());
    let mut ys: Vec<f64> = Vec::with_capacity(nets.len());
    for &n in nets {
        let (lx, ly, hx, hy) = hpwl::net_bbox(design, placement, n);
        xs.push(0.5 * (lx + hx));
        ys.push(0.5 * (ly + hy));
    }
    if xs.is_empty() {
        return placement.position(id);
    }
    xs.sort_by(f64::total_cmp);
    ys.sort_by(f64::total_cmp);
    Point::new(xs[xs.len() / 2], ys[ys.len() / 2])
}

/// Global swap: move each cell toward its optimal position by swapping with
/// a cell already there, accepting only HPWL gains.
fn global_swap_pass(state: &mut RowState<'_>, tracker: &mut HpwlTracker<'_>) -> usize {
    let design = state.design;
    let mut accepted = 0;
    for idx in 0..design.movable_cells().len() {
        let a = design.movable_cells()[idx];
        if design.cell(a).kind() != CellKind::Movable {
            continue;
        }
        let ra = state.row_of[a.index()];
        if ra == usize::MAX {
            continue;
        }
        let opt = optimal_position(design, tracker.placement(), a);
        let target_row = state.rows.nearest_row(opt.y);
        if state.cells[target_row].is_empty() {
            continue;
        }
        // Nearest cell in the target row by x.
        let row = &state.cells[target_row];
        let bpos =
            match row.binary_search_by(|&c| tracker.placement().position(c).x.total_cmp(&opt.x)) {
                Ok(k) => k,
                Err(k) => k.min(row.len() - 1),
            };
        let b = row[bpos];
        if b == a {
            continue;
        }
        let rb = state.row_of[b.index()];
        let Some(apos) = state.cells[ra].iter().position(|&c| c == a) else {
            debug_assert!(false, "cell must be tracked in its row");
            continue;
        };
        if ra == rb && (apos as isize - bpos as isize).abs() <= 1 {
            continue; // adjacent same-row cells: handled by reordering
        }

        // Feasibility: each cell must fit the other's slot.
        let (alo, ahi) = state.slot(tracker.placement(), ra, apos);
        let (blo, bhi) = state.slot(tracker.placement(), rb, bpos);
        let wa = design.cell(a).width();
        let wb = design.cell(b).width();
        if wb > ahi - alo - 1e-9 || wa > bhi - blo - 1e-9 {
            continue;
        }

        let pa = tracker.placement().position(a);
        let pb = tracker.placement().position(b);
        let before = tracker.total();
        // Trial: put each at the center of the other's slot, clamped.
        let na = Point::new(
            pb.x.clamp(blo + 0.5 * wa, (bhi - 0.5 * wa).max(blo + 0.5 * wa)),
            pb.y,
        );
        let nb = Point::new(
            pa.x.clamp(alo + 0.5 * wb, (ahi - 0.5 * wb).max(alo + 0.5 * wb)),
            pa.y,
        );
        tracker.begin();
        tracker.move_cell(a, na);
        tracker.move_cell(b, nb);
        if tracker.total() < before - 1e-12 {
            tracker.commit();
            // Update row bookkeeping.
            state.cells[ra][apos] = b;
            state.cells[rb][bpos] = a;
            state.row_of[a.index()] = rb;
            state.row_of[b.index()] = ra;
            let placement = tracker.placement();
            state.cells[ra]
                .sort_by(|&p, &q| placement.position(p).x.total_cmp(&placement.position(q).x));
            if ra != rb {
                state.cells[rb]
                    .sort_by(|&p, &q| placement.position(p).x.total_cmp(&placement.position(q).x));
            }
            accepted += 1;
        } else {
            tracker.rollback();
        }
    }
    accepted
}

/// Vertical swap: move a cell into a free gap in the row nearest its
/// optimal y, accepting only HPWL gains.
fn vertical_swap_pass(state: &mut RowState<'_>, tracker: &mut HpwlTracker<'_>) -> usize {
    let design = state.design;
    let mut accepted = 0;
    for idx in 0..design.movable_cells().len() {
        let a = design.movable_cells()[idx];
        if design.cell(a).kind() != CellKind::Movable {
            continue;
        }
        let ra = state.row_of[a.index()];
        if ra == usize::MAX {
            continue;
        }
        let opt = optimal_position(design, tracker.placement(), a);
        let target_row = state.rows.nearest_row(opt.y);
        if target_row == ra {
            continue;
        }
        let w = design.cell(a).width();

        // Find a gap in the target row around opt.x.
        let Some((gap_lo, gap_hi, insert_at)) =
            find_gap(state, tracker.placement(), target_row, opt.x, w)
        else {
            continue;
        };

        let before = tracker.total();
        let nx = opt
            .x
            .clamp(gap_lo + 0.5 * w, (gap_hi - 0.5 * w).max(gap_lo + 0.5 * w));
        tracker.begin();
        tracker.move_cell(a, Point::new(nx, state.rows.row_center(target_row)));
        if tracker.total() < before - 1e-12 {
            tracker.commit();
            let Some(apos) = state.cells[ra].iter().position(|&c| c == a) else {
                debug_assert!(false, "cell must be tracked in its row");
                continue;
            };
            state.cells[ra].remove(apos);
            state.cells[target_row].insert(insert_at, a);
            state.row_of[a.index()] = target_row;
            accepted += 1;
        } else {
            tracker.rollback();
        }
    }
    accepted
}

/// Finds a free gap of width ≥ `w` in `row` near `x`; returns the gap
/// bounds and the index at which the cell would be inserted.
fn find_gap(
    state: &RowState<'_>,
    placement: &Placement,
    row: usize,
    x: f64,
    w: f64,
) -> Option<(f64, f64, usize)> {
    let cells = &state.cells[row];
    for seg in state.rows.segments(row) {
        if x < seg.lx || x > seg.hx || seg.width() < w {
            continue;
        }
        // Cells inside this segment.
        let mut edges: Vec<(f64, f64)> = Vec::new(); // occupied intervals
        let mut first_idx = cells.len();
        for (k, &c) in cells.iter().enumerate() {
            let p = placement.position(c).x;
            if p >= seg.lx && p <= seg.hx {
                let hw = 0.5 * state.design.cell(c).width();
                edges.push((p - hw, p + hw));
                if first_idx == cells.len() {
                    first_idx = k;
                }
            }
        }
        let mut best: Option<(f64, f64, usize)> = None;
        let mut best_dist = f64::INFINITY;
        let mut cursor = seg.lx;
        for (g, &(lo, hi)) in edges.iter().enumerate() {
            if lo - cursor >= w {
                let cand = (cursor, lo, first_idx + g);
                let dist = distance_to_interval(x, cand.0, cand.1);
                if dist < best_dist {
                    best_dist = dist;
                    best = Some(cand);
                }
            }
            cursor = cursor.max(hi);
        }
        if seg.hx - cursor >= w {
            let cand = (cursor, seg.hx, first_idx + edges.len());
            if distance_to_interval(x, cand.0, cand.1) < best_dist {
                best = Some(cand);
            }
        }
        if best.is_some() {
            return best;
        }
    }
    None
}

fn distance_to_interval(x: f64, lo: f64, hi: f64) -> f64 {
    if x < lo {
        lo - x
    } else if x > hi {
        x - hi
    } else {
        0.0
    }
}

/// Local reordering: sliding windows of three cells within a row; tries all
/// permutations, re-packing the window span evenly, and keeps the best.
fn local_reorder_pass(state: &mut RowState<'_>, tracker: &mut HpwlTracker<'_>) -> usize {
    const PERMS: [[usize; 3]; 5] = [[0, 2, 1], [1, 0, 2], [1, 2, 0], [2, 0, 1], [2, 1, 0]];
    let design = state.design;
    let mut accepted = 0;
    for r in 0..state.cells.len() {
        if state.cells[r].len() < 3 {
            continue;
        }
        for start in 0..state.cells[r].len() - 2 {
            let trio = [
                state.cells[r][start],
                state.cells[r][start + 1],
                state.cells[r][start + 2],
            ];
            // The window span: left edge of the first, right edge of the
            // last (cells must share a segment).
            let placement = tracker.placement();
            let left = placement.position(trio[0]).x - 0.5 * design.cell(trio[0]).width();
            let right = placement.position(trio[2]).x + 0.5 * design.cell(trio[2]).width();
            let same_segment = state
                .rows
                .segments(r)
                .iter()
                .any(|s| left >= s.lx - 1e-9 && right <= s.hx + 1e-9);
            if !same_segment {
                continue;
            }
            let widths: f64 = trio.iter().map(|&c| design.cell(c).width()).sum();
            let space = right - left - widths;
            if space < -1e-9 {
                continue; // overlapping input; skip
            }
            let originals: Vec<Point> = trio.iter().map(|&c| placement.position(c)).collect();
            let base = tracker.total();
            let gap = space / 2.0;
            let mut best: Option<(f64, [usize; 3])> = None;
            for perm in PERMS.iter() {
                tracker.begin();
                let mut cursor = left;
                for &pi in perm {
                    let c = trio[pi];
                    let w = design.cell(c).width();
                    tracker.move_cell(c, Point::new(cursor + 0.5 * w, originals[pi].y));
                    cursor += w + gap;
                }
                let cost = tracker.total();
                if cost < base - 1e-12 && best.as_ref().is_none_or(|(b, _)| cost < *b) {
                    best = Some((cost, *perm));
                }
                tracker.rollback();
            }
            if let Some((_, perm)) = best {
                tracker.begin();
                let mut cursor = left;
                for &pi in &perm {
                    let c = trio[pi];
                    let w = design.cell(c).width();
                    tracker.move_cell(c, Point::new(cursor + 0.5 * w, originals[pi].y));
                    cursor += w + gap;
                }
                tracker.commit();
                // Update order bookkeeping.
                state.cells[r][start] = trio[perm[0]];
                state.cells[r][start + 1] = trio[perm[1]];
                state.cells[r][start + 2] = trio[perm[2]];
                accepted += 1;
            }
        }
    }
    accepted
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::legalizer::Legalizer;
    use crate::verify::is_legal;
    use complx_netlist::generator::GeneratorConfig;

    fn legal_start(seed: u64) -> (complx_netlist::Design, Placement) {
        let d = GeneratorConfig::small("dp", seed).generate();
        let legal = Legalizer::default().legalize(&d, &d.initial_placement());
        (d, legal.placement)
    }

    #[test]
    fn improve_never_increases_hpwl() {
        let (d, p) = legal_start(41);
        let res = DetailedPlacer::default().improve(&d, p);
        assert!(res.stats.hpwl_after <= res.stats.hpwl_before + 1e-6);
    }

    #[test]
    fn improve_preserves_legality() {
        let (d, p) = legal_start(42);
        let res = DetailedPlacer::default().improve(&d, p);
        assert!(is_legal(&d, &res.placement, 1e-6));
    }

    #[test]
    fn improve_actually_improves_poor_placements() {
        let (d, p) = legal_start(43);
        let res = DetailedPlacer::default().improve(&d, p);
        assert!(
            res.stats.hpwl_after < res.stats.hpwl_before,
            "no improvement found: {:?}",
            res.stats
        );
        assert!(res.stats.moves > 0);
    }

    #[test]
    fn improve_is_deterministic() {
        let (d, p) = legal_start(44);
        let a = DetailedPlacer::default().improve(&d, p.clone());
        let b = DetailedPlacer::default().improve(&d, p);
        assert_eq!(a.placement, b.placement);
    }

    #[test]
    fn reported_hpwl_matches_batch_recompute() {
        let (d, p) = legal_start(46);
        let res = DetailedPlacer::default().improve(&d, p);
        let batch = hpwl::weighted_hpwl(&d, &res.placement);
        assert!(
            (res.stats.hpwl_after - batch).abs() < 1e-6 * batch.max(1.0),
            "incremental {} vs batch {batch}",
            res.stats.hpwl_after
        );
    }

    #[test]
    fn optimal_position_is_median() {
        let (d, p) = legal_start(45);
        let id = d.movable_cells()[0];
        let opt = optimal_position(&d, &p, id);
        assert!(d.core().contains(opt) || opt.x.is_finite());
    }
}
