//! Standard-cell rows and their free segments.

use complx_netlist::{CellKind, Design, Rect};

/// A maximal obstacle-free interval of one row.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Segment {
    /// Left end of the segment.
    pub lx: f64,
    /// Right end of the segment.
    pub hx: f64,
}

impl Segment {
    /// The segment's width.
    pub fn width(&self) -> f64 {
        self.hx - self.lx
    }
}

/// The row structure of a design: uniform rows spanning the core, each
/// split into segments by fixed obstacles (and any extra blockages passed
/// in, e.g. legalized macros).
#[derive(Debug, Clone)]
pub struct RowLayout {
    row_height: f64,
    core: Rect,
    /// Row bottom y coordinates, ascending.
    row_y: Vec<f64>,
    /// Free segments per row, sorted by `lx`.
    segments: Vec<Vec<Segment>>,
}

impl RowLayout {
    /// Builds rows for a design, subtracting fixed obstacles plus
    /// `extra_blockages` (rectangles, e.g. already-legalized macros).
    pub fn new(design: &Design, extra_blockages: &[Rect]) -> Self {
        let core = design.core();
        let rh = design.row_height();
        let num_rows = ((core.height() / rh).floor() as usize).max(1);
        let mut row_y = Vec::with_capacity(num_rows);
        for r in 0..num_rows {
            row_y.push(core.ly + r as f64 * rh);
        }

        // Collect blockage rects: fixed obstacles + extra.
        let mut blockages: Vec<Rect> = design
            .cell_ids()
            .filter(|&id| design.cell(id).kind() == CellKind::Fixed)
            .map(|id| {
                let c = design.cell(id);
                design
                    .fixed_positions()
                    .cell_rect(id, c.width(), c.height())
            })
            .collect();
        blockages.extend_from_slice(extra_blockages);

        let mut segments = Vec::with_capacity(num_rows);
        for &y in &row_y {
            let y_hi = y + rh;
            // Blockage x-intervals overlapping this row.
            let mut cuts: Vec<(f64, f64)> = blockages
                .iter()
                .filter(|b| b.ly < y_hi - 1e-9 && b.hy > y + 1e-9)
                .map(|b| (b.lx.max(core.lx), b.hx.min(core.hx)))
                .filter(|(l, h)| h > l)
                .collect();
            cuts.sort_by(|a, b| a.0.total_cmp(&b.0));
            let mut segs = Vec::new();
            let mut cursor = core.lx;
            for (l, h) in cuts {
                if l > cursor {
                    segs.push(Segment { lx: cursor, hx: l });
                }
                cursor = cursor.max(h);
            }
            if cursor < core.hx {
                segs.push(Segment {
                    lx: cursor,
                    hx: core.hx,
                });
            }
            segments.push(segs);
        }

        Self {
            row_height: rh,
            core,
            row_y,
            segments,
        }
    }

    /// Number of rows.
    pub fn num_rows(&self) -> usize {
        self.row_y.len()
    }

    /// The row height.
    pub fn row_height(&self) -> f64 {
        self.row_height
    }

    /// Bottom y coordinate of row `r`.
    pub fn row_bottom(&self, r: usize) -> f64 {
        self.row_y[r]
    }

    /// Center y coordinate of row `r`.
    pub fn row_center(&self, r: usize) -> f64 {
        self.row_y[r] + 0.5 * self.row_height
    }

    /// Free segments of row `r`, sorted by x.
    pub fn segments(&self, r: usize) -> &[Segment] {
        &self.segments[r]
    }

    /// The row whose center is nearest to `y` (clamped to valid rows).
    pub fn nearest_row(&self, y: f64) -> usize {
        if self.row_y.is_empty() {
            return 0;
        }
        let r = ((y - self.core.ly - 0.5 * self.row_height) / self.row_height).round();
        (r.max(0.0) as usize).min(self.row_y.len() - 1)
    }

    /// Total free width over all rows.
    pub fn total_free_width(&self) -> f64 {
        self.segments
            .iter()
            .flat_map(|s| s.iter())
            .map(Segment::width)
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use complx_netlist::{CellKind, DesignBuilder, Point};

    fn design(side: f64, rh: f64) -> Design {
        let mut b = DesignBuilder::new("t", Rect::new(0.0, 0.0, side, side), rh);
        let a = b.add_cell("a", 1.0, rh, CellKind::Movable).unwrap();
        let f = b
            .add_fixed_cell(
                "f",
                4.0,
                2.0 * rh,
                CellKind::Fixed,
                Point::new(side / 2.0, rh),
            )
            .unwrap();
        b.add_net("n", 1.0, vec![(a, 0.0, 0.0), (f, 0.0, 0.0)])
            .unwrap();
        b.build().unwrap()
    }

    #[test]
    fn row_count_and_coordinates() {
        let d = design(16.0, 2.0);
        let rows = RowLayout::new(&d, &[]);
        assert_eq!(rows.num_rows(), 8);
        assert_eq!(rows.row_bottom(0), 0.0);
        assert_eq!(rows.row_center(1), 3.0);
    }

    #[test]
    fn obstacle_splits_rows() {
        let d = design(16.0, 2.0);
        let rows = RowLayout::new(&d, &[]);
        // Obstacle spans y ∈ [0, 4] → rows 0 and 1 are split; row 2 is not.
        assert_eq!(rows.segments(0).len(), 2);
        assert_eq!(rows.segments(1).len(), 2);
        assert_eq!(rows.segments(2).len(), 1);
        let s = rows.segments(0);
        assert_eq!(s[0].hx, 6.0);
        assert_eq!(s[1].lx, 10.0);
    }

    #[test]
    fn extra_blockages_respected() {
        let d = design(16.0, 2.0);
        let rows = RowLayout::new(&d, &[Rect::new(0.0, 14.0, 16.0, 16.0)]);
        // Last row fully blocked.
        assert!(rows.segments(7).is_empty());
    }

    #[test]
    fn nearest_row_clamps() {
        let d = design(16.0, 2.0);
        let rows = RowLayout::new(&d, &[]);
        assert_eq!(rows.nearest_row(-10.0), 0);
        assert_eq!(rows.nearest_row(100.0), 7);
        assert_eq!(rows.nearest_row(3.0), 1);
    }

    #[test]
    fn total_free_width_subtracts_obstacles() {
        let d = design(16.0, 2.0);
        let rows = RowLayout::new(&d, &[]);
        // 8 rows × 16 − obstacle occupying 4 width in 2 rows.
        assert!((rows.total_free_width() - (8.0 * 16.0 - 2.0 * 4.0)).abs() < 1e-9);
    }
}
