//! Abacus row-based least-displacement legalization
//! (Spindler et al., "Abacus: fast legalization of standard cell circuits
//! with minimal movement").

use complx_netlist::{CellKind, Design, Placement, Point};

use crate::rows::RowLayout;

/// One placed cell inside a segment, in packing order.
#[derive(Debug, Clone, Copy)]
struct SegCell {
    id: u32,
    /// Desired left edge.
    want_lx: f64,
    width: f64,
}

/// A cluster of abutting cells with the classic Abacus aggregates.
#[derive(Debug, Clone, Copy)]
struct Cluster {
    /// First cell index (into the segment's cell list).
    first: usize,
    /// One-past-last cell index.
    last: usize,
    /// Total weight (one per cell here).
    e: f64,
    /// Weighted optimal-position numerator.
    q: f64,
    /// Total width.
    w: f64,
    /// Current left edge.
    x: f64,
}

/// The state of one segment: cells in packing order plus the cluster stack.
#[derive(Debug, Clone, Default)]
struct SegmentState {
    cells: Vec<SegCell>,
    clusters: Vec<Cluster>,
}

impl SegmentState {
    /// Appends a cell and re-clusters; returns the cell's final left edge.
    fn place(&mut self, cell: SegCell, seg_lx: f64, seg_hx: f64) -> f64 {
        let idx = self.cells.len();
        self.cells.push(cell);
        let mut c = Cluster {
            first: idx,
            last: idx + 1,
            e: 1.0,
            q: cell.want_lx,
            w: cell.width,
            x: 0.0,
        };
        // Collapse: clamp into segment, then merge with predecessor while
        // overlapping.
        loop {
            c.x = (c.q / c.e).clamp(seg_lx, (seg_hx - c.w).max(seg_lx));
            match self.clusters.pop() {
                Some(prev) if prev.x + prev.w > c.x + 1e-12 => {
                    // Merge prev ++ c.
                    let merged = Cluster {
                        first: prev.first,
                        last: c.last,
                        e: prev.e + c.e,
                        q: prev.q + (c.q - c.e * prev.w),
                        w: prev.w + c.w,
                        x: 0.0,
                    };
                    c = merged;
                }
                Some(prev) => {
                    self.clusters.push(prev);
                    break;
                }
                None => break,
            }
        }
        // Final left edge of the appended cell: the cluster start plus the
        // widths of the cells packed before it (idx is always inside `c`,
        // whose range ends at idx + 1 through every merge).
        let x = c.x + (c.first..idx).map(|k| self.cells[k].width).sum::<f64>();
        self.clusters.push(c);
        x
    }

    /// Total width currently placed.
    fn used(&self) -> f64 {
        self.cells.iter().map(|c| c.width).sum()
    }

    /// Final left edges of all cells.
    fn positions(&self) -> Vec<(u32, f64)> {
        let mut out = Vec::with_capacity(self.cells.len());
        for c in &self.clusters {
            let mut x = c.x;
            for k in c.first..c.last {
                out.push((self.cells[k].id, x));
                x += self.cells[k].width;
            }
        }
        out
    }
}

/// Legalizes movable standard cells with the Abacus algorithm: cells are
/// processed in x order; each is trial-inserted into nearby rows and
/// committed to the row minimizing its resulting displacement. Cluster
/// merging shifts earlier cells as needed, which is what gives Abacus its
/// least-squares-displacement behavior.
///
/// Returns the number of unplaceable cells (0 on success).
pub fn abacus_legalize(design: &Design, rows: &RowLayout, placement: &mut Placement) -> usize {
    let num_rows = rows.num_rows();
    let mut states: Vec<Vec<SegmentState>> = (0..num_rows)
        .map(|r| vec![SegmentState::default(); rows.segments(r).len()])
        .collect();

    let mut order: Vec<_> = design
        .movable_cells()
        .iter()
        .copied()
        .filter(|&id| design.cell(id).kind() == CellKind::Movable)
        .collect();
    order.sort_by(|&a, &b| {
        let la = placement.position(a).x - 0.5 * design.cell(a).width();
        let lb = placement.position(b).x - 0.5 * design.cell(b).width();
        la.total_cmp(&lb)
    });

    let mut failures = 0;
    for id in order {
        let cell = design.cell(id);
        let w = cell.width();
        let p = placement.position(id);
        let want_lx = p.x - 0.5 * w;
        let pref_row = rows.nearest_row(p.y);

        let mut best: Option<(f64, usize, usize)> = None; // (cost, row, seg)
        for d in 0..num_rows as isize {
            for sign in [1isize, -1] {
                if d == 0 && sign < 0 {
                    continue;
                }
                let r = pref_row as isize + sign * d;
                if r < 0 || r >= num_rows as isize {
                    continue;
                }
                let r = r as usize;
                let dy = (rows.row_center(r) - p.y).abs();
                if let Some((cost, ..)) = best {
                    if dy >= cost {
                        continue;
                    }
                }
                for (si, seg) in rows.segments(r).iter().enumerate() {
                    let st = &mut states[r][si];
                    if st.used() + w > seg.width() + 1e-9 {
                        continue;
                    }
                    // Trial insert on a clone of the cluster stack.
                    let mut trial = st.clone();
                    let lx = trial.place(
                        SegCell {
                            id: id.index() as u32,
                            want_lx,
                            width: w,
                        },
                        seg.lx,
                        seg.hx,
                    );
                    let cost = (lx - want_lx).abs() + dy;
                    if best.is_none_or(|(best_cost, ..)| cost < best_cost) {
                        best = Some((cost, r, si));
                    }
                }
            }
        }

        match best {
            Some((_, r, si)) => {
                let seg = rows.segments(r)[si];
                states[r][si].place(
                    SegCell {
                        id: id.index() as u32,
                        want_lx,
                        width: w,
                    },
                    seg.lx,
                    seg.hx,
                );
            }
            None => failures += 1,
        }
    }

    // Write back final positions.
    for r in 0..num_rows {
        let yc = rows.row_center(r);
        for st in &states[r] {
            for (raw, lx) in st.positions() {
                let id = complx_netlist::CellId::from_index(raw as usize);
                let w = design.cell(id).width();
                placement.set_position(id, Point::new(lx + 0.5 * w, yc));
            }
        }
    }
    failures
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tetris::tetris_legalize;
    use crate::verify::is_legal;
    use complx_netlist::generator::GeneratorConfig;

    #[test]
    fn abacus_produces_legal_placement() {
        let d = GeneratorConfig::small("a", 21).generate();
        let rows = RowLayout::new(&d, &[]);
        let mut p = d.initial_placement();
        let failures = abacus_legalize(&d, &rows, &mut p);
        assert_eq!(failures, 0);
        assert!(is_legal(&d, &p, 1e-6));
    }

    #[test]
    fn abacus_no_worse_than_tetris_on_displacement() {
        let d = GeneratorConfig::small("a2", 22).generate();
        let rows = RowLayout::new(&d, &[]);
        // Mildly spread start (realistic for post-global placement).
        let core = d.core();
        let mut start = d.initial_placement();
        for (i, &id) in d.movable_cells().iter().enumerate() {
            let fx = (i as f64 * 0.61803) % 1.0;
            let fy = (i as f64 * 0.31415) % 1.0;
            start.set_position(
                id,
                Point::new(core.lx + fx * core.width(), core.ly + fy * core.height()),
            );
        }
        let mut ab = start.clone();
        abacus_legalize(&d, &rows, &mut ab);
        let mut tt = start.clone();
        tetris_legalize(&d, &rows, &mut tt);
        let d_ab = start.l1_distance(&ab);
        let d_tt = start.l1_distance(&tt);
        assert!(
            d_ab <= d_tt * 1.2,
            "abacus displacement {d_ab} vs tetris {d_tt}"
        );
    }

    #[test]
    fn cluster_merging_resolves_collisions() {
        // Two cells wanting the same spot must end up abutting, centered
        // around the contested position.
        use complx_netlist::{CellKind, DesignBuilder, Rect};
        let mut b = DesignBuilder::new("c", Rect::new(0.0, 0.0, 20.0, 1.0), 1.0);
        let c1 = b.add_cell("c1", 4.0, 1.0, CellKind::Movable).unwrap();
        let c2 = b.add_cell("c2", 4.0, 1.0, CellKind::Movable).unwrap();
        b.add_net("n", 1.0, vec![(c1, 0.0, 0.0), (c2, 0.0, 0.0)])
            .unwrap();
        let d = b.build().unwrap();
        let mut p = d.initial_placement();
        p.set_position(c1, Point::new(10.0, 0.5));
        p.set_position(c2, Point::new(10.0, 0.5));
        let rows = RowLayout::new(&d, &[]);
        let failures = abacus_legalize(&d, &rows, &mut p);
        assert_eq!(failures, 0);
        let x1 = p.position(c1).x;
        let x2 = p.position(c2).x;
        assert!((x1 - x2).abs() >= 4.0 - 1e-9, "cells overlap: {x1} {x2}");
        // Centered: mean of centers ≈ contested position.
        assert!((0.5 * (x1 + x2) - 10.0).abs() < 1.0);
    }

    #[test]
    fn full_segment_rejects_cells() {
        use complx_netlist::{CellKind, DesignBuilder, Rect};
        let mut b = DesignBuilder::new("f", Rect::new(0.0, 0.0, 4.0, 1.0), 1.0);
        let c1 = b.add_cell("c1", 3.0, 1.0, CellKind::Movable).unwrap();
        let c2 = b.add_cell("c2", 3.0, 1.0, CellKind::Movable).unwrap();
        b.add_net("n", 1.0, vec![(c1, 0.0, 0.0), (c2, 0.0, 0.0)])
            .unwrap();
        let d = b.build().unwrap();
        let rows = RowLayout::new(&d, &[]);
        let mut p = d.initial_placement();
        let failures = abacus_legalize(&d, &rows, &mut p);
        assert_eq!(failures, 1, "only one 3-wide cell fits in a 4-wide row");
    }
}
