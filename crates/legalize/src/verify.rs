//! Legality checking.

use complx_netlist::{CellKind, Design, Placement, Rect};

/// Detailed legality diagnostics for a placement.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct LegalityReport {
    /// Total pairwise overlap area among movable cells (and against fixed
    /// obstacles).
    pub overlap_area: f64,
    /// Number of standard cells not aligned to a row center.
    pub off_row_cells: usize,
    /// Number of movable cells extending outside the core.
    pub out_of_core: usize,
}

impl LegalityReport {
    /// Whether the report indicates a legal placement under tolerance `tol`
    /// (area units for overlap, length units for alignment).
    pub fn is_legal(&self, tol: f64) -> bool {
        self.overlap_area <= tol && self.off_row_cells == 0 && self.out_of_core == 0
    }
}

/// Computes a [`LegalityReport`] with a sweep over a uniform hash grid
/// (O(n·k) for k local neighbors rather than O(n²)).
pub fn legality_report(design: &Design, placement: &Placement) -> LegalityReport {
    let core = design.core();
    let rh = design.row_height();

    // Gather movable rects and fixed obstacle rects.
    let mut rects: Vec<(usize, Rect, bool)> = Vec::new(); // (cell, rect, movable)
    for id in design.cell_ids() {
        let cell = design.cell(id);
        match cell.kind() {
            CellKind::Movable | CellKind::MovableMacro => {
                let r = placement.cell_rect(id, cell.width(), cell.height());
                rects.push((id.index(), r, true));
            }
            CellKind::Fixed => {
                let r = design
                    .fixed_positions()
                    .cell_rect(id, cell.width(), cell.height());
                rects.push((id.index(), r, false));
            }
            CellKind::Terminal => {}
        }
    }

    let mut report = LegalityReport::default();

    // Row alignment + core containment for movables.
    for &(idx, r, movable) in &rects {
        if !movable {
            continue;
        }
        let id = complx_netlist::CellId::from_index(idx);
        let cell = design.cell(id);
        if r.lx < core.lx - 1e-6
            || r.hx > core.hx + 1e-6
            || r.ly < core.ly - 1e-6
            || r.hy > core.hy + 1e-6
        {
            report.out_of_core += 1;
        }
        if cell.kind() == CellKind::Movable {
            // Bottom edge must sit on a row boundary.
            let offset = (r.ly - core.ly) / rh;
            if (offset - offset.round()).abs() > 1e-6 {
                report.off_row_cells += 1;
            }
        }
    }

    // Pairwise overlap via a uniform grid of buckets.
    let cell_count = rects.len().max(1);
    let buckets = ((cell_count as f64).sqrt().ceil() as usize).clamp(1, 1024);
    let bw = core.width() / buckets as f64;
    let bh = core.height() / buckets as f64;
    let mut grid: Vec<Vec<u32>> = vec![Vec::new(); buckets * buckets];
    let clamp_bin = |v: f64, lo: f64, extent: f64| -> usize {
        (((v - lo) / extent).floor() as isize).clamp(0, buckets as isize - 1) as usize
    };
    for (k, &(_, r, _)) in rects.iter().enumerate() {
        let x0 = clamp_bin(r.lx, core.lx, bw);
        let x1 = clamp_bin(r.hx, core.lx, bw);
        let y0 = clamp_bin(r.ly, core.ly, bh);
        let y1 = clamp_bin(r.hy, core.ly, bh);
        for iy in y0..=y1 {
            for ix in x0..=x1 {
                grid[iy * buckets + ix].push(k as u32);
            }
        }
    }
    // BTreeSet, not HashSet: verify runs inside determinism tests, and the
    // no-unordered-iter contract bans unordered containers crate-wide.
    let mut seen: std::collections::BTreeSet<(u32, u32)> = std::collections::BTreeSet::new();
    for bucket in &grid {
        for i in 0..bucket.len() {
            for j in i + 1..bucket.len() {
                let (a, b) = (bucket[i].min(bucket[j]), bucket[i].max(bucket[j]));
                if !seen.insert((a, b)) {
                    continue;
                }
                let (_, ra, ma) = rects[a as usize];
                let (_, rb, mb) = rects[b as usize];
                if !ma && !mb {
                    continue; // fixed-fixed overlap is the design's business
                }
                report.overlap_area += ra.overlap_area(&rb);
            }
        }
    }
    report
}

/// Convenience wrapper: `true` when the placement is overlap-free (within
/// `tol` area units), row-aligned, and inside the core.
pub fn is_legal(design: &Design, placement: &Placement, tol: f64) -> bool {
    legality_report(design, placement).is_legal(tol)
}

#[cfg(test)]
mod tests {
    use super::*;
    use complx_netlist::{CellKind, DesignBuilder, Point};

    fn design() -> Design {
        let mut b = DesignBuilder::new("v", Rect::new(0.0, 0.0, 10.0, 4.0), 1.0);
        let a = b.add_cell("a", 2.0, 1.0, CellKind::Movable).unwrap();
        let c = b.add_cell("b", 2.0, 1.0, CellKind::Movable).unwrap();
        b.add_net("n", 1.0, vec![(a, 0.0, 0.0), (c, 0.0, 0.0)])
            .unwrap();
        b.build().unwrap()
    }

    #[test]
    fn legal_placement_passes() {
        let d = design();
        let mut p = d.initial_placement();
        p.set_position(d.find_cell("a").unwrap(), Point::new(1.0, 0.5));
        p.set_position(d.find_cell("b").unwrap(), Point::new(4.0, 1.5));
        assert!(is_legal(&d, &p, 1e-9));
    }

    #[test]
    fn overlap_detected() {
        let d = design();
        let mut p = d.initial_placement();
        p.set_position(d.find_cell("a").unwrap(), Point::new(1.0, 0.5));
        p.set_position(d.find_cell("b").unwrap(), Point::new(2.0, 0.5));
        let rep = legality_report(&d, &p);
        assert!((rep.overlap_area - 1.0).abs() < 1e-9);
        assert!(!rep.is_legal(1e-9));
    }

    #[test]
    fn off_row_detected() {
        let d = design();
        let mut p = d.initial_placement();
        p.set_position(d.find_cell("a").unwrap(), Point::new(1.0, 0.75));
        p.set_position(d.find_cell("b").unwrap(), Point::new(5.0, 1.5));
        let rep = legality_report(&d, &p);
        assert_eq!(rep.off_row_cells, 1);
    }

    #[test]
    fn out_of_core_detected() {
        let d = design();
        let mut p = d.initial_placement();
        p.set_position(d.find_cell("a").unwrap(), Point::new(-1.0, 0.5));
        p.set_position(d.find_cell("b").unwrap(), Point::new(5.0, 1.5));
        let rep = legality_report(&d, &p);
        assert_eq!(rep.out_of_core, 1);
    }
}
