//! Legality checking.

use complx_netlist::{CellKind, Design, Placement, Rect};

/// Default counting tolerance (length units) used by [`legality_report`]
/// for the `off_row_cells` / `out_of_core` counters.
pub const DEFAULT_TOL: f64 = 1e-6;

/// Detailed legality diagnostics for a placement.
///
/// The counters depend on the counting tolerance the report was built with
/// (see [`legality_report_with_tol`]); the `max_*` fields record the exact
/// worst-case deviations so [`LegalityReport::is_legal`] can apply a
/// caller-chosen tolerance uniformly to every violation class.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct LegalityReport {
    /// Total pairwise overlap area among movable cells (and against fixed
    /// obstacles).
    pub overlap_area: f64,
    /// Number of standard cells not aligned to a row center (beyond the
    /// counting tolerance).
    pub off_row_cells: usize,
    /// Number of movable cells extending outside the core (beyond the
    /// counting tolerance).
    pub out_of_core: usize,
    /// Worst core-boundary breach in length units (0 when contained).
    pub max_core_breach: f64,
    /// Worst row misalignment in length units (0 when aligned).
    pub max_row_misalign: f64,
}

impl LegalityReport {
    /// Whether the report indicates a legal placement under tolerance `tol`
    /// (area units for overlap, length units for core containment and row
    /// alignment).
    ///
    /// All three violation classes are compared against `tol`: a cell off
    /// by one ULP after a parallel reduction no longer flags as illegal
    /// just because the containment/alignment checks used to ignore the
    /// tolerance.
    pub fn is_legal(&self, tol: f64) -> bool {
        self.overlap_area <= tol && self.max_core_breach <= tol && self.max_row_misalign <= tol
    }
}

/// Computes a [`LegalityReport`] with the default counting tolerance
/// ([`DEFAULT_TOL`]).
pub fn legality_report(design: &Design, placement: &Placement) -> LegalityReport {
    legality_report_with_tol(design, placement, DEFAULT_TOL)
}

/// Computes a [`LegalityReport`] with a sweep over a uniform hash grid
/// (O(n·k) for k local neighbors rather than O(n²)). Cells deviating by
/// more than `tol` length units are counted in `off_row_cells` /
/// `out_of_core`; the `max_*` fields are exact regardless of `tol`.
pub fn legality_report_with_tol(
    design: &Design,
    placement: &Placement,
    tol: f64,
) -> LegalityReport {
    let core = design.core();
    let rh = design.row_height();

    // Gather movable rects and fixed obstacle rects.
    let mut rects: Vec<(usize, Rect, bool)> = Vec::new(); // (cell, rect, movable)
    for id in design.cell_ids() {
        let cell = design.cell(id);
        match cell.kind() {
            CellKind::Movable | CellKind::MovableMacro => {
                let r = placement.cell_rect(id, cell.width(), cell.height());
                rects.push((id.index(), r, true));
            }
            CellKind::Fixed => {
                let r = design
                    .fixed_positions()
                    .cell_rect(id, cell.width(), cell.height());
                rects.push((id.index(), r, false));
            }
            CellKind::Terminal => {}
        }
    }

    let mut report = LegalityReport::default();

    // Row alignment + core containment for movables, measured as
    // deviation distances so the tolerance applies symmetrically.
    for &(idx, r, movable) in &rects {
        if !movable {
            continue;
        }
        let id = complx_netlist::CellId::from_index(idx);
        let cell = design.cell(id);
        let breach = (core.lx - r.lx)
            .max(r.hx - core.hx)
            .max(core.ly - r.ly)
            .max(r.hy - core.hy)
            .max(0.0);
        if breach > tol {
            report.out_of_core += 1;
        }
        if breach > report.max_core_breach {
            report.max_core_breach = breach;
        }
        if cell.kind() == CellKind::Movable && rh > 0.0 {
            // Bottom edge must sit on a row boundary; the deviation is
            // reported in length units, not row fractions.
            let offset = (r.ly - core.ly) / rh;
            let misalign = (offset - offset.round()).abs() * rh;
            if misalign > tol {
                report.off_row_cells += 1;
            }
            if misalign > report.max_row_misalign {
                report.max_row_misalign = misalign;
            }
        }
    }

    // Pairwise overlap via a uniform grid of buckets.
    let cell_count = rects.len().max(1);
    let buckets = ((cell_count as f64).sqrt().ceil() as usize).clamp(1, 1024);
    let bw = core.width() / buckets as f64;
    let bh = core.height() / buckets as f64;
    let mut grid: Vec<Vec<u32>> = vec![Vec::new(); buckets * buckets];
    let clamp_bin = |v: f64, lo: f64, extent: f64| -> usize {
        (((v - lo) / extent).floor() as isize).clamp(0, buckets as isize - 1) as usize
    };
    for (k, &(_, r, _)) in rects.iter().enumerate() {
        let x0 = clamp_bin(r.lx, core.lx, bw);
        let x1 = clamp_bin(r.hx, core.lx, bw);
        let y0 = clamp_bin(r.ly, core.ly, bh);
        let y1 = clamp_bin(r.hy, core.ly, bh);
        for iy in y0..=y1 {
            for ix in x0..=x1 {
                grid[iy * buckets + ix].push(k as u32);
            }
        }
    }
    // BTreeSet, not HashSet: verify runs inside determinism tests, and the
    // no-unordered-iter contract bans unordered containers crate-wide.
    let mut seen: std::collections::BTreeSet<(u32, u32)> = std::collections::BTreeSet::new();
    for bucket in &grid {
        for i in 0..bucket.len() {
            for j in i + 1..bucket.len() {
                let (a, b) = (bucket[i].min(bucket[j]), bucket[i].max(bucket[j]));
                if !seen.insert((a, b)) {
                    continue;
                }
                let (_, ra, ma) = rects[a as usize];
                let (_, rb, mb) = rects[b as usize];
                if !ma && !mb {
                    continue; // fixed-fixed overlap is the design's business
                }
                report.overlap_area += ra.overlap_area(&rb);
            }
        }
    }
    report
}

/// Convenience wrapper: `true` when the placement is overlap-free (within
/// `tol` area units), row-aligned and inside the core (both within `tol`
/// length units).
pub fn is_legal(design: &Design, placement: &Placement, tol: f64) -> bool {
    legality_report_with_tol(design, placement, tol).is_legal(tol)
}

#[cfg(test)]
mod tests {
    use super::*;
    use complx_netlist::{CellKind, DesignBuilder, Point};

    fn design() -> Design {
        let mut b = DesignBuilder::new("v", Rect::new(0.0, 0.0, 10.0, 4.0), 1.0);
        let a = b.add_cell("a", 2.0, 1.0, CellKind::Movable).unwrap();
        let c = b.add_cell("b", 2.0, 1.0, CellKind::Movable).unwrap();
        b.add_net("n", 1.0, vec![(a, 0.0, 0.0), (c, 0.0, 0.0)])
            .unwrap();
        b.build().unwrap()
    }

    #[test]
    fn legal_placement_passes() {
        let d = design();
        let mut p = d.initial_placement();
        p.set_position(d.find_cell("a").unwrap(), Point::new(1.0, 0.5));
        p.set_position(d.find_cell("b").unwrap(), Point::new(4.0, 1.5));
        assert!(is_legal(&d, &p, 1e-9));
    }

    #[test]
    fn overlap_detected() {
        let d = design();
        let mut p = d.initial_placement();
        p.set_position(d.find_cell("a").unwrap(), Point::new(1.0, 0.5));
        p.set_position(d.find_cell("b").unwrap(), Point::new(2.0, 0.5));
        let rep = legality_report(&d, &p);
        assert!((rep.overlap_area - 1.0).abs() < 1e-9);
        assert!(!rep.is_legal(1e-9));
    }

    #[test]
    fn off_row_detected() {
        let d = design();
        let mut p = d.initial_placement();
        p.set_position(d.find_cell("a").unwrap(), Point::new(1.0, 0.75));
        p.set_position(d.find_cell("b").unwrap(), Point::new(5.0, 1.5));
        let rep = legality_report(&d, &p);
        assert_eq!(rep.off_row_cells, 1);
        assert!((rep.max_row_misalign - 0.25).abs() < 1e-12);
        assert!(!rep.is_legal(1e-6));
    }

    #[test]
    fn out_of_core_detected() {
        let d = design();
        let mut p = d.initial_placement();
        p.set_position(d.find_cell("a").unwrap(), Point::new(-1.0, 0.5));
        p.set_position(d.find_cell("b").unwrap(), Point::new(5.0, 1.5));
        let rep = legality_report(&d, &p);
        assert_eq!(rep.out_of_core, 1);
        assert!((rep.max_core_breach - 2.0).abs() < 1e-12);
        assert!(!rep.is_legal(1e-6));
    }

    #[test]
    fn ulp_scale_deviations_respect_the_tolerance() {
        // A cell off the row / core edge by 1e-9 used to flag as illegal
        // under any tolerance because the counters ignored `tol`; now the
        // same tolerance governs every violation class.
        let d = design();
        let mut p = d.initial_placement();
        p.set_position(
            d.find_cell("a").unwrap(),
            Point::new(1.0 - 1e-9, 0.5 + 1e-9),
        );
        p.set_position(d.find_cell("b").unwrap(), Point::new(5.0, 1.5));
        let rep = legality_report(&d, &p);
        assert_eq!(rep.off_row_cells, 0);
        assert_eq!(rep.out_of_core, 0);
        assert!(rep.is_legal(1e-6));
        assert!(!rep.is_legal(1e-12), "an exact check still sees the drift");
        // A stricter counting tolerance surfaces the same drift as counts.
        let strict = legality_report_with_tol(&d, &p, 1e-12);
        assert_eq!(strict.off_row_cells, 1);
    }
}
