//! Cell-orientation (mirroring) optimization.
//!
//! Table 1's footnote notes the comparison "regenerated placements of SimPL
//! without a cell-orientation optimization" — flipping cells about their
//! vertical axis to shorten nets is a standard post-pass that placers may
//! or may not include. This module provides it as an *optional* extra step:
//! mirroring a cell negates its pins' x-offsets without moving the cell, so
//! legality is untouched and only HPWL can change.

use complx_netlist::{CellId, CellKind, Design, NetId, Placement};

/// Per-cell mirror flags (true = flipped about the cell's vertical axis),
/// indexed by [`CellId::index`].
pub type Mirroring = Vec<bool>;

/// HPWL of one net honoring mirror flags (x pin offsets negate for
/// mirrored cells; y offsets are unaffected by a vertical-axis flip).
pub fn net_hpwl_mirrored(
    design: &Design,
    placement: &Placement,
    mirroring: &Mirroring,
    net: NetId,
) -> f64 {
    let mut min_x = f64::INFINITY;
    let mut max_x = f64::NEG_INFINITY;
    let mut min_y = f64::INFINITY;
    let mut max_y = f64::NEG_INFINITY;
    for pin in design.net_pins(net) {
        let p = placement.position(pin.cell);
        let dx = if mirroring[pin.cell.index()] {
            -pin.dx
        } else {
            pin.dx
        };
        let px = p.x + dx;
        let py = p.y + pin.dy;
        min_x = min_x.min(px);
        max_x = max_x.max(px);
        min_y = min_y.min(py);
        max_y = max_y.max(py);
    }
    (max_x - min_x) + (max_y - min_y)
}

/// Total weighted HPWL honoring mirror flags.
pub fn hpwl_mirrored(design: &Design, placement: &Placement, mirroring: &Mirroring) -> f64 {
    design
        .net_ids()
        .map(|n| design.net(n).weight() * net_hpwl_mirrored(design, placement, mirroring, n))
        .sum()
}

/// Greedily flips movable standard cells whenever doing so reduces the
/// weighted HPWL of their incident nets; iterates to a fixed point (at most
/// `max_passes` sweeps). Returns the mirror flags and the total HPWL gain.
///
/// Macros and fixed cells are never flipped (macro orientations are a
/// floorplanning decision, and fixed geometry is immutable).
pub fn optimize_mirroring(
    design: &Design,
    placement: &Placement,
    max_passes: usize,
) -> (Mirroring, f64) {
    let mut mirroring = vec![false; design.num_cells()];
    let before = hpwl_mirrored(design, placement, &mirroring);
    for _ in 0..max_passes {
        let mut flips = 0usize;
        for &id in design.movable_cells() {
            if design.cell(id).kind() != CellKind::Movable {
                continue;
            }
            if try_flip(design, placement, &mut mirroring, id) {
                flips += 1;
            }
        }
        if flips == 0 {
            break;
        }
    }
    let after = hpwl_mirrored(design, placement, &mirroring);
    (mirroring, before - after)
}

/// Flips `cell` if that reduces its incident nets' weighted HPWL; returns
/// whether the flip was kept.
fn try_flip(
    design: &Design,
    placement: &Placement,
    mirroring: &mut Mirroring,
    cell: CellId,
) -> bool {
    let nets = design.cell_nets(cell);
    // Cells whose pins are all centered gain nothing.
    if nets.is_empty() {
        return false;
    }
    let cost = |m: &Mirroring| -> f64 {
        nets.iter()
            .map(|&n| design.net(n).weight() * net_hpwl_mirrored(design, placement, m, n))
            .sum()
    };
    let base = cost(mirroring);
    mirroring[cell.index()] = !mirroring[cell.index()];
    let flipped = cost(mirroring);
    if flipped < base - 1e-12 {
        true
    } else {
        mirroring[cell.index()] = !mirroring[cell.index()];
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use complx_netlist::{generator::GeneratorConfig, DesignBuilder, Point, Rect};

    #[test]
    fn mirroring_never_increases_hpwl() {
        let d = GeneratorConfig::small("mir", 3).generate();
        let p = d.initial_placement();
        let (m, gain) = optimize_mirroring(&d, &p, 4);
        assert!(gain >= 0.0);
        let plain = hpwl_mirrored(&d, &p, &vec![false; d.num_cells()]);
        let opt = hpwl_mirrored(&d, &p, &m);
        assert!((plain - opt - gain).abs() < 1e-6 * plain.max(1.0));
    }

    #[test]
    fn mirroring_finds_obvious_flips() {
        // A cell whose only pin is on its right side, connected to a pad on
        // its left: flipping moves the pin toward the pad.
        let mut b = DesignBuilder::new("m", Rect::new(0.0, 0.0, 20.0, 20.0), 1.0);
        let a = b
            .add_cell("a", 4.0, 1.0, complx_netlist::CellKind::Movable)
            .unwrap();
        let pad = b
            .add_fixed_cell(
                "p",
                1.0,
                1.0,
                complx_netlist::CellKind::Terminal,
                Point::new(0.0, 10.0),
            )
            .unwrap();
        b.add_net("n", 1.0, vec![(a, 1.9, 0.0), (pad, 0.0, 0.0)])
            .unwrap();
        let d = b.build().unwrap();
        let mut p = d.initial_placement();
        p.set_position(a, Point::new(10.0, 10.0));
        let (m, gain) = optimize_mirroring(&d, &p, 2);
        assert!(m[a.index()], "cell should flip toward the pad");
        assert!((gain - 3.8).abs() < 1e-9, "gain {gain}");
    }

    #[test]
    fn optimization_is_idempotent() {
        let d = GeneratorConfig::small("mi", 4).generate();
        let p = d.initial_placement();
        // A large pass budget guarantees the greedy reaches its fixed point
        // (each kept flip strictly decreases HPWL, so it terminates).
        let (m1, _) = optimize_mirroring(&d, &p, 50);
        // Re-running from the optimized flags finds nothing to flip.
        let mut m2 = m1.clone();
        let mut flips = 0;
        for &id in d.movable_cells() {
            if try_flip(&d, &p, &mut m2, id) {
                flips += 1;
            }
        }
        assert_eq!(flips, 0, "second sweep found more flips");
        assert_eq!(m1, m2);
    }

    #[test]
    fn macros_and_fixed_cells_never_flip() {
        let d = GeneratorConfig::ispd2006_like("mm", 5, 400, 0.8).generate();
        let p = d.initial_placement();
        let (m, _) = optimize_mirroring(&d, &p, 2);
        for id in d.cell_ids() {
            if d.cell(id).kind() != complx_netlist::CellKind::Movable {
                assert!(!m[id.index()]);
            }
        }
    }

    #[test]
    fn gain_on_real_placement_is_positive() {
        // After a real placement, offset-bearing pins leave flip gains on
        // the table; the pass should find some.
        let d = GeneratorConfig::small("mg", 6).generate();
        let legal = crate::Legalizer::default()
            .legalize(&d, &d.initial_placement())
            .placement;
        let (_, gain) = optimize_mirroring(&d, &legal, 4);
        assert!(gain > 0.0, "no mirroring gain found");
    }
}
