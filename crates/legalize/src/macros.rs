//! Greedy legalization of movable macros.
//!
//! ComPLx's `P_C` "may leave small overlaps between macros … even if slight
//! overlaps remain at the end of global placement, they can be fixed by the
//! detailed placer" (paper Section 5). This pass removes those residual
//! overlaps: macros are processed in decreasing area order; each is placed
//! at the position nearest its global location that does not overlap fixed
//! obstacles, previously placed macros, or the core boundary, found by a
//! breadth-first spiral search on a row-height lattice.

use complx_netlist::{CellKind, Design, Placement, Point, Rect};

/// Legalizes movable macros in place; returns the rectangles of their final
/// footprints (to be carved out of [`crate::RowLayout`] as blockages for
/// standard-cell legalization).
///
/// Macros that cannot be placed without overlap stay at their clamped input
/// location (counted in the returned tuple's second element).
pub fn legalize_macros(design: &Design, placement: &mut Placement) -> (Vec<Rect>, usize) {
    let core = design.core();
    let step = design.row_height();

    // Fixed obstacles are immovable blockages.
    let mut placed: Vec<Rect> = design
        .cell_ids()
        .filter(|&id| design.cell(id).kind() == CellKind::Fixed)
        .map(|id| {
            let c = design.cell(id);
            design
                .fixed_positions()
                .cell_rect(id, c.width(), c.height())
        })
        .collect();
    let num_fixed = placed.len();

    let mut macros: Vec<_> = design
        .movable_cells()
        .iter()
        .copied()
        .filter(|&id| design.cell(id).kind() == CellKind::MovableMacro)
        .collect();
    macros.sort_by(|&a, &b| design.cell(b).area().total_cmp(&design.cell(a).area()));

    let mut unplaced = 0;
    for id in macros {
        let cell = design.cell(id);
        let (w, h) = (cell.width(), cell.height());
        let p = placement.position(id);
        // Clamp center so the footprint fits the core.
        let cx = p.x.clamp(
            core.lx + 0.5 * w,
            (core.hx - 0.5 * w).max(core.lx + 0.5 * w),
        );
        let cy = p.y.clamp(
            core.ly + 0.5 * h,
            (core.hy - 0.5 * h).max(core.ly + 0.5 * h),
        );
        // Snap the bottom edge to a row boundary for cleaner row carving.
        let snap_y = |y: f64| -> f64 {
            let bottom = y - 0.5 * h - core.ly;
            core.ly + (bottom / step).round() * step + 0.5 * h
        };

        let overlaps = |r: &Rect| placed.iter().any(|o| o.overlap_area(r) > 1e-9);
        let rect_at =
            |x: f64, y: f64| Rect::new(x - 0.5 * w, y - 0.5 * h, x + 0.5 * w, y + 0.5 * h);

        let mut found = None;
        'search: for radius in 0..200 {
            let r = radius as f64 * step;
            // Ring of candidate centers at L∞ radius `r`.
            let steps = (2 * radius).max(1);
            for i in 0..=steps {
                let t = i as f64 / steps as f64;
                let candidates = if radius == 0 {
                    vec![(cx, cy)]
                } else {
                    vec![
                        (cx - r + 2.0 * r * t, cy - r),
                        (cx - r + 2.0 * r * t, cy + r),
                        (cx - r, cy - r + 2.0 * r * t),
                        (cx + r, cy - r + 2.0 * r * t),
                    ]
                };
                for (x, y) in candidates {
                    let x = x.clamp(
                        core.lx + 0.5 * w,
                        (core.hx - 0.5 * w).max(core.lx + 0.5 * w),
                    );
                    let y = snap_y(y.clamp(
                        core.ly + 0.5 * h,
                        (core.hy - 0.5 * h).max(core.ly + 0.5 * h),
                    ));
                    let rect = rect_at(x, y);
                    if rect.lx >= core.lx - 1e-9
                        && rect.hx <= core.hx + 1e-9
                        && rect.ly >= core.ly - 1e-9
                        && rect.hy <= core.hy + 1e-9
                        && !overlaps(&rect)
                    {
                        found = Some((x, y, rect));
                        break 'search;
                    }
                }
            }
        }

        match found {
            Some((x, y, rect)) => {
                placement.set_position(id, Point::new(x, y));
                placed.push(rect);
            }
            None => {
                unplaced += 1;
                placement.set_position(id, Point::new(cx, snap_y(cy)));
                placed.push(rect_at(cx, snap_y(cy)));
            }
        }
    }

    (placed.split_off(num_fixed), unplaced)
}

#[cfg(test)]
mod tests {
    use super::*;
    use complx_netlist::generator::GeneratorConfig;

    #[test]
    fn macros_end_up_disjoint() {
        let d = GeneratorConfig::ispd2006_like("m", 31, 400, 0.7).generate();
        let mut p = d.initial_placement(); // all macros stacked at center
        let (rects, unplaced) = legalize_macros(&d, &mut p);
        assert_eq!(unplaced, 0);
        for i in 0..rects.len() {
            for j in i + 1..rects.len() {
                assert!(
                    rects[i].overlap_area(&rects[j]) < 1e-6,
                    "macros {i} and {j} overlap"
                );
            }
        }
    }

    #[test]
    fn macros_avoid_fixed_obstacles_and_core_bounds() {
        let d = GeneratorConfig::ispd2006_like("m2", 32, 400, 0.7).generate();
        let mut p = d.initial_placement();
        let (rects, _) = legalize_macros(&d, &mut p);
        let core = d.core();
        let obstacles: Vec<Rect> = d
            .cell_ids()
            .filter(|&id| d.cell(id).kind() == CellKind::Fixed)
            .map(|id| {
                let c = d.cell(id);
                d.fixed_positions().cell_rect(id, c.width(), c.height())
            })
            .collect();
        for r in &rects {
            assert!(r.lx >= core.lx - 1e-6 && r.hx <= core.hx + 1e-6);
            assert!(r.ly >= core.ly - 1e-6 && r.hy <= core.hy + 1e-6);
            for o in &obstacles {
                assert!(r.overlap_area(o) < 1e-6);
            }
        }
    }

    #[test]
    fn already_legal_macros_barely_move() {
        let d = GeneratorConfig::ispd2006_like("m3", 33, 400, 0.7).generate();
        let mut p = d.initial_placement();
        legalize_macros(&d, &mut p); // first pass: make legal
        let before = p.clone();
        let (_, unplaced) = legalize_macros(&d, &mut p); // second pass
        assert_eq!(unplaced, 0);
        let moved = before.l1_distance(&p);
        assert!(
            moved < d.row_height() * d.movable_cells().len() as f64 * 0.01 + 1.0,
            "second legalization moved macros by {moved}"
        );
    }
}
