//! The legalization orchestrator: macros first, then standard cells.

use complx_netlist::{Design, Placement};

use crate::abacus::abacus_legalize;
use crate::macros::legalize_macros;
use crate::rows::RowLayout;
use crate::tetris::tetris_legalize;

/// Which standard-cell legalization algorithm to run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum LegalizerAlgorithm {
    /// Abacus least-displacement legalization (default; better quality).
    #[default]
    Abacus,
    /// Greedy Tetris sweep (faster; used as fallback).
    Tetris,
}

/// A legalized placement plus diagnostics.
#[derive(Debug, Clone)]
pub struct LegalPlacement {
    /// The legal placement.
    pub placement: Placement,
    /// Total L1 displacement from the input placement.
    pub displacement: f64,
    /// Number of cells (including macros) that could not be placed legally.
    pub failures: usize,
}

/// Legalization entry point: legalizes movable macros by spiral search,
/// carves their footprints out of the row structure, then legalizes
/// standard cells row by row.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Legalizer {
    /// Standard-cell algorithm choice.
    pub algorithm: LegalizerAlgorithm,
}

impl Legalizer {
    /// Creates a legalizer with the default (Abacus) algorithm.
    pub fn new(algorithm: LegalizerAlgorithm) -> Self {
        Self { algorithm }
    }

    /// Produces a legal placement from a (global) placement.
    pub fn legalize(&self, design: &Design, placement: &Placement) -> LegalPlacement {
        let _span = complx_obs::span("legalize");
        let mut out = placement.clone();
        let (macro_rects, macro_failures) = legalize_macros(design, &mut out);
        let rows = RowLayout::new(design, &macro_rects);
        let std_failures = match self.algorithm {
            LegalizerAlgorithm::Abacus => abacus_legalize(design, &rows, &mut out),
            LegalizerAlgorithm::Tetris => tetris_legalize(design, &rows, &mut out),
        };
        let displacement = placement.l1_distance(&out);
        complx_obs::add("legalize.runs", 1);
        complx_obs::add("legalize.failures", (macro_failures + std_failures) as u64);
        complx_obs::observe("legalize.displacement", displacement);
        LegalPlacement {
            displacement,
            placement: out,
            failures: macro_failures + std_failures,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::verify::{is_legal, legality_report};
    use complx_netlist::generator::GeneratorConfig;

    #[test]
    fn both_algorithms_produce_legal_placements() {
        let d = GeneratorConfig::small("l", 51).generate();
        // A mildly spread starting point, as produced by global placement.
        let core = d.core();
        let mut start = d.initial_placement();
        for (i, &id) in d.movable_cells().iter().enumerate() {
            let fx = (i as f64 * 0.61803) % 1.0;
            let fy = (i as f64 * 0.31415) % 1.0;
            start.set_position(
                id,
                complx_netlist::Point::new(
                    core.lx + fx * core.width(),
                    core.ly + fy * core.height(),
                ),
            );
        }
        for alg in [LegalizerAlgorithm::Abacus, LegalizerAlgorithm::Tetris] {
            let res = Legalizer::new(alg).legalize(&d, &start);
            assert_eq!(res.failures, 0, "{alg:?}");
            assert!(is_legal(&d, &res.placement, 1e-6), "{alg:?}");
        }
    }

    #[test]
    fn mixed_size_designs_legalize() {
        let d = GeneratorConfig::ispd2006_like("lm", 52, 500, 0.7).generate();
        let res = Legalizer::default().legalize(&d, &d.initial_placement());
        assert_eq!(res.failures, 0);
        let rep = legality_report(&d, &res.placement);
        assert!(rep.is_legal(1e-6), "{rep:?}");
    }

    #[test]
    fn displacement_reported() {
        let d = GeneratorConfig::small("ld", 53).generate();
        let res = Legalizer::default().legalize(&d, &d.initial_placement());
        assert!(res.displacement > 0.0);
    }
}
