//! Property-based tests for legalization and detailed placement.

use complx_legalize::{
    is_legal, legality_report, legalize_macros, DetailedPlacer, Legalizer, LegalizerAlgorithm,
    RowLayout,
};
use complx_netlist::{generator::GeneratorConfig, hpwl, Placement, Point};
use proptest::prelude::*;

/// A deterministic pseudo-random spread of movable cells across the core.
fn scatter(design: &complx_netlist::Design, salt: u64) -> Placement {
    let core = design.core();
    let mut p = design.initial_placement();
    for (i, &id) in design.movable_cells().iter().enumerate() {
        let k = i as u64 + salt;
        let fx = ((k.wrapping_mul(2654435761)) % 1000) as f64 / 1000.0;
        let fy = ((k.wrapping_mul(40503)) % 1000) as f64 / 1000.0;
        p.set_position(
            id,
            Point::new(core.lx + fx * core.width(), core.ly + fy * core.height()),
        );
    }
    p
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Both legalizers always produce a legal placement from any scattered
    /// start on std-cell designs.
    #[test]
    fn legalizers_always_produce_legal_output(seed in 0u64..40, salt in 0u64..1000) {
        let mut cfg = GeneratorConfig::small("lp", seed);
        cfg.num_std_cells = 150;
        cfg.num_pads = 8;
        let d = cfg.generate();
        let start = scatter(&d, salt);
        for alg in [LegalizerAlgorithm::Abacus, LegalizerAlgorithm::Tetris] {
            let res = Legalizer::new(alg).legalize(&d, &start);
            prop_assert_eq!(res.failures, 0, "{:?}", alg);
            let rep = legality_report(&d, &res.placement);
            prop_assert!(rep.is_legal(1e-6), "{alg:?}: {rep:?}");
        }
    }

    /// Legalization displacement is bounded: no cell teleports across the
    /// whole chip when the start is already spread out.
    #[test]
    fn legalization_displacement_reasonable(seed in 0u64..25) {
        let mut cfg = GeneratorConfig::small("ld", seed);
        cfg.num_std_cells = 150;
        cfg.num_pads = 8;
        let d = cfg.generate();
        let start = scatter(&d, seed);
        let res = Legalizer::default().legalize(&d, &start);
        let per_cell = res.displacement / d.movable_cells().len() as f64;
        let diag = d.core().width() + d.core().height();
        prop_assert!(per_cell < 0.35 * diag, "avg displacement {per_cell} vs diag {diag}");
    }

    /// The detailed placer never increases HPWL and preserves legality.
    #[test]
    fn detail_is_monotone_and_legal(seed in 0u64..25) {
        let mut cfg = GeneratorConfig::small("dm", seed);
        cfg.num_std_cells = 120;
        cfg.num_pads = 8;
        let d = cfg.generate();
        let legal = Legalizer::default().legalize(&d, &scatter(&d, seed)).placement;
        let before = hpwl::weighted_hpwl(&d, &legal);
        let res = DetailedPlacer::default().improve(&d, legal);
        prop_assert!(res.stats.hpwl_after <= before + 1e-6);
        prop_assert!(is_legal(&d, &res.placement, 1e-6));
    }

    /// Macro legalization makes mixed-size placements overlap-free.
    #[test]
    fn macro_legalization_resolves_overlaps(seed in 0u64..25) {
        let d = GeneratorConfig::ispd2006_like("ml", seed, 500, 0.7).generate();
        let mut p = d.initial_placement();
        let (rects, unplaced) = legalize_macros(&d, &mut p);
        prop_assert_eq!(unplaced, 0);
        for i in 0..rects.len() {
            for j in i + 1..rects.len() {
                prop_assert!(rects[i].overlap_area(&rects[j]) < 1e-6);
            }
        }
    }

    /// Rows never overlap obstacles: every segment of every row is disjoint
    /// from every fixed cell's footprint.
    #[test]
    fn row_segments_avoid_obstacles(seed in 0u64..25) {
        let mut cfg = GeneratorConfig::small("ro", seed);
        cfg.num_std_cells = 80;
        let d = cfg.generate();
        let rows = RowLayout::new(&d, &[]);
        let obstacles: Vec<_> = d
            .cell_ids()
            .filter(|&id| d.cell(id).kind() == complx_netlist::CellKind::Fixed)
            .map(|id| {
                let c = d.cell(id);
                d.fixed_positions().cell_rect(id, c.width(), c.height())
            })
            .collect();
        for r in 0..rows.num_rows() {
            let y0 = rows.row_bottom(r);
            let y1 = y0 + rows.row_height();
            for seg in rows.segments(r) {
                let seg_rect = complx_netlist::Rect::new(seg.lx, y0, seg.hx, y1);
                for o in &obstacles {
                    prop_assert!(
                        seg_rect.overlap_area(o) < 1e-6,
                        "segment {seg:?} in row {r} overlaps obstacle {o:?}"
                    );
                }
            }
        }
    }
}
