//! Fault injection for exercising the placer's recovery machinery.
//!
//! Production fault tolerance is only trustworthy if the recovery paths are
//! routinely executed. A [`FaultPlan`] attached to
//! [`crate::PlacerConfig::faults`] makes the placer *simulate* the
//! numerical failures that degenerate designs cause in the wild — NaN
//! gradients out of the primal solve, CG breakdowns, stalled feasibility
//! projections — at chosen iterations. Each injected fault flows through
//! exactly the same detection and recovery code as a real one, so
//! integration tests can prove that every fault class is caught, recovered,
//! and reported without panicking or losing the best feasible iterate.
//!
//! Each injection fires once: after the recovery policy rolls the iterate
//! back, the retried iteration proceeds clean (unless the plan schedules
//! another fault).

/// The classes of numerical fault the placer knows how to survive.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[non_exhaustive]
pub enum FaultKind {
    /// Poison the primal (lower-bound) iterate with NaN coordinates, as a
    /// degenerate B2B weight `1/(|x_i − x_j|)` on coincident pins would.
    NanGradient,
    /// Make the primal solve report a CG breakdown (`p·Ap ≤ 0`), as a
    /// non-SPD system would.
    CgStall,
    /// Poison the projection (upper-bound) iterate, as a stalled or
    /// corrupted `P_C` pass would.
    ProjectionStall,
    /// Terminate the run at the top of the iteration, exactly as an
    /// external `SIGKILL` landing between two checkpoints would: the placer
    /// returns [`crate::PlaceError::Killed`] and whatever checkpoints were
    /// committed stay on disk for `--resume` to pick up.
    Kill,
    /// Truncate the checkpoint payload mid-write before committing it, as a
    /// crash during `write(2)` on the temp file followed by a stray rename
    /// would. The committed file fails checksum validation on load.
    CkptShortWrite,
    /// Fail the checkpoint write with an I/O error before the temp file is
    /// committed, as a full disk would. The previous generations stay
    /// intact; the run itself continues (checkpointing is best-effort).
    CkptWriteError,
    /// Flip one payload byte after the checksum is computed, as silent media
    /// corruption would. The committed file fails checksum validation on
    /// load and `--resume` must fall back to the previous generation.
    CkptCorrupt,
}

impl FaultKind {
    /// Human-readable description used in recovery logs and error details.
    pub fn describe(&self) -> &'static str {
        match self {
            FaultKind::NanGradient => "injected NaN gradient in primal iterate",
            FaultKind::CgStall => "injected CG breakdown in primal solve",
            FaultKind::ProjectionStall => "injected stalled feasibility projection",
            FaultKind::Kill => "injected kill (simulated crash mid-run)",
            FaultKind::CkptShortWrite => "injected short write on checkpoint commit",
            FaultKind::CkptWriteError => "injected I/O error on checkpoint write",
            FaultKind::CkptCorrupt => "injected byte corruption on checkpoint commit",
        }
    }

    /// Whether this fault class strikes the checkpoint writer (rather than
    /// the solve loop itself).
    pub fn is_checkpoint_fault(&self) -> bool {
        matches!(
            self,
            FaultKind::CkptShortWrite | FaultKind::CkptWriteError | FaultKind::CkptCorrupt
        )
    }
}

/// One scheduled fault: `kind` strikes at global-placement iteration
/// `iteration` (1-based, matching the trace).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FaultInjection {
    /// The 1-based global-placement iteration to strike at.
    pub iteration: usize,
    /// The fault class to simulate.
    pub kind: FaultKind,
}

/// A schedule of faults to inject into a placement run.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct FaultPlan {
    injections: Vec<FaultInjection>,
}

impl FaultPlan {
    /// An empty plan (injects nothing).
    pub fn new() -> Self {
        Self::default()
    }

    /// Schedules `kind` at global-placement iteration `iteration` (1-based).
    #[must_use]
    pub fn inject(mut self, iteration: usize, kind: FaultKind) -> Self {
        self.injections.push(FaultInjection { iteration, kind });
        self
    }

    /// The scheduled injections.
    pub fn injections(&self) -> &[FaultInjection] {
        &self.injections
    }

    /// Whether the plan schedules anything at all.
    pub fn is_empty(&self) -> bool {
        self.injections.is_empty()
    }
}

/// Mutable run-time state: which injections have already fired. Owned by
/// one placement run (the plan itself stays immutable in the config).
#[derive(Debug)]
pub(crate) struct FaultArming {
    pending: Vec<FaultInjection>,
}

impl FaultArming {
    pub(crate) fn new(plan: Option<&FaultPlan>) -> Self {
        Self {
            pending: plan.map(|p| p.injections.clone()).unwrap_or_default(),
        }
    }

    /// Fires (and disarms) the scheduled fault of class `kind` at
    /// iteration `iteration`, if any.
    pub(crate) fn take(&mut self, iteration: usize, kind: FaultKind) -> bool {
        if let Some(i) = self
            .pending
            .iter()
            .position(|f| f.iteration == iteration && f.kind == kind)
        {
            self.pending.swap_remove(i);
            true
        } else {
            false
        }
    }

    /// Fires (and disarms) whichever checkpoint-I/O fault is scheduled at
    /// `iteration`, if any (see [`FaultKind::is_checkpoint_fault`]).
    pub(crate) fn take_io_fault(&mut self, iteration: usize) -> Option<FaultKind> {
        if let Some(i) = self
            .pending
            .iter()
            .position(|f| f.iteration == iteration && f.kind.is_checkpoint_fault())
        {
            Some(self.pending.swap_remove(i).kind)
        } else {
            None
        }
    }

    /// Disarms every injection scheduled at or before `iteration`. A
    /// resumed run calls this so faults that already fired (or would have
    /// fired) in the killed run's lifetime do not fire again.
    pub(crate) fn discard_through(&mut self, iteration: usize) {
        self.pending.retain(|f| f.iteration > iteration);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn injections_fire_once() {
        let plan = FaultPlan::new()
            .inject(3, FaultKind::NanGradient)
            .inject(3, FaultKind::CgStall)
            .inject(5, FaultKind::ProjectionStall);
        assert_eq!(plan.injections().len(), 3);
        assert!(!plan.is_empty());

        let mut armed = FaultArming::new(Some(&plan));
        assert!(!armed.take(2, FaultKind::NanGradient));
        assert!(armed.take(3, FaultKind::NanGradient));
        assert!(!armed.take(3, FaultKind::NanGradient), "fires only once");
        assert!(armed.take(3, FaultKind::CgStall));
        assert!(armed.take(5, FaultKind::ProjectionStall));
        assert!(!armed.take(5, FaultKind::ProjectionStall));
    }

    #[test]
    fn empty_plan_never_fires() {
        let mut armed = FaultArming::new(None);
        for k in 0..100 {
            assert!(!armed.take(k, FaultKind::NanGradient));
            assert!(!armed.take(k, FaultKind::CgStall));
            assert!(!armed.take(k, FaultKind::ProjectionStall));
        }
    }

    #[test]
    fn descriptions_name_the_fault() {
        assert!(FaultKind::NanGradient.describe().contains("NaN"));
        assert!(FaultKind::CgStall.describe().contains("CG"));
        assert!(FaultKind::ProjectionStall.describe().contains("projection"));
        assert!(FaultKind::Kill.describe().contains("kill"));
        assert!(FaultKind::CkptShortWrite.describe().contains("short write"));
        assert!(FaultKind::CkptWriteError.describe().contains("I/O error"));
        assert!(FaultKind::CkptCorrupt.describe().contains("corruption"));
    }

    #[test]
    fn io_faults_are_taken_by_class() {
        let plan = FaultPlan::new()
            .inject(2, FaultKind::CkptShortWrite)
            .inject(4, FaultKind::CkptCorrupt)
            .inject(4, FaultKind::Kill);
        let mut armed = FaultArming::new(Some(&plan));
        assert_eq!(armed.take_io_fault(1), None);
        assert_eq!(armed.take_io_fault(2), Some(FaultKind::CkptShortWrite));
        assert_eq!(armed.take_io_fault(2), None, "fires only once");
        // Kill at 4 is NOT a checkpoint fault; only the corruption fires.
        assert_eq!(armed.take_io_fault(4), Some(FaultKind::CkptCorrupt));
        assert_eq!(armed.take_io_fault(4), None);
        assert!(armed.take(4, FaultKind::Kill));
    }

    #[test]
    fn discard_through_disarms_past_injections() {
        let plan = FaultPlan::new()
            .inject(3, FaultKind::Kill)
            .inject(5, FaultKind::NanGradient)
            .inject(8, FaultKind::CgStall);
        let mut armed = FaultArming::new(Some(&plan));
        armed.discard_through(5);
        assert!(!armed.take(3, FaultKind::Kill));
        assert!(!armed.take(5, FaultKind::NanGradient));
        assert!(
            armed.take(8, FaultKind::CgStall),
            "future faults stay armed"
        );
    }
}
