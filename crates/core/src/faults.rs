//! Fault injection for exercising the placer's recovery machinery.
//!
//! Production fault tolerance is only trustworthy if the recovery paths are
//! routinely executed. A [`FaultPlan`] attached to
//! [`crate::PlacerConfig::faults`] makes the placer *simulate* the
//! numerical failures that degenerate designs cause in the wild — NaN
//! gradients out of the primal solve, CG breakdowns, stalled feasibility
//! projections — at chosen iterations. Each injected fault flows through
//! exactly the same detection and recovery code as a real one, so
//! integration tests can prove that every fault class is caught, recovered,
//! and reported without panicking or losing the best feasible iterate.
//!
//! Each injection fires once: after the recovery policy rolls the iterate
//! back, the retried iteration proceeds clean (unless the plan schedules
//! another fault).

/// The classes of numerical fault the placer knows how to survive.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[non_exhaustive]
pub enum FaultKind {
    /// Poison the primal (lower-bound) iterate with NaN coordinates, as a
    /// degenerate B2B weight `1/(|x_i − x_j|)` on coincident pins would.
    NanGradient,
    /// Make the primal solve report a CG breakdown (`p·Ap ≤ 0`), as a
    /// non-SPD system would.
    CgStall,
    /// Poison the projection (upper-bound) iterate, as a stalled or
    /// corrupted `P_C` pass would.
    ProjectionStall,
}

impl FaultKind {
    /// Human-readable description used in recovery logs and error details.
    pub fn describe(&self) -> &'static str {
        match self {
            FaultKind::NanGradient => "injected NaN gradient in primal iterate",
            FaultKind::CgStall => "injected CG breakdown in primal solve",
            FaultKind::ProjectionStall => "injected stalled feasibility projection",
        }
    }
}

/// One scheduled fault: `kind` strikes at global-placement iteration
/// `iteration` (1-based, matching the trace).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FaultInjection {
    /// The 1-based global-placement iteration to strike at.
    pub iteration: usize,
    /// The fault class to simulate.
    pub kind: FaultKind,
}

/// A schedule of faults to inject into a placement run.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct FaultPlan {
    injections: Vec<FaultInjection>,
}

impl FaultPlan {
    /// An empty plan (injects nothing).
    pub fn new() -> Self {
        Self::default()
    }

    /// Schedules `kind` at global-placement iteration `iteration` (1-based).
    #[must_use]
    pub fn inject(mut self, iteration: usize, kind: FaultKind) -> Self {
        self.injections.push(FaultInjection { iteration, kind });
        self
    }

    /// The scheduled injections.
    pub fn injections(&self) -> &[FaultInjection] {
        &self.injections
    }

    /// Whether the plan schedules anything at all.
    pub fn is_empty(&self) -> bool {
        self.injections.is_empty()
    }
}

/// Mutable run-time state: which injections have already fired. Owned by
/// one placement run (the plan itself stays immutable in the config).
#[derive(Debug)]
pub(crate) struct FaultArming {
    pending: Vec<FaultInjection>,
}

impl FaultArming {
    pub(crate) fn new(plan: Option<&FaultPlan>) -> Self {
        Self {
            pending: plan.map(|p| p.injections.clone()).unwrap_or_default(),
        }
    }

    /// Fires (and disarms) the scheduled fault of class `kind` at
    /// iteration `iteration`, if any.
    pub(crate) fn take(&mut self, iteration: usize, kind: FaultKind) -> bool {
        if let Some(i) = self
            .pending
            .iter()
            .position(|f| f.iteration == iteration && f.kind == kind)
        {
            self.pending.swap_remove(i);
            true
        } else {
            false
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn injections_fire_once() {
        let plan = FaultPlan::new()
            .inject(3, FaultKind::NanGradient)
            .inject(3, FaultKind::CgStall)
            .inject(5, FaultKind::ProjectionStall);
        assert_eq!(plan.injections().len(), 3);
        assert!(!plan.is_empty());

        let mut armed = FaultArming::new(Some(&plan));
        assert!(!armed.take(2, FaultKind::NanGradient));
        assert!(armed.take(3, FaultKind::NanGradient));
        assert!(!armed.take(3, FaultKind::NanGradient), "fires only once");
        assert!(armed.take(3, FaultKind::CgStall));
        assert!(armed.take(5, FaultKind::ProjectionStall));
        assert!(!armed.take(5, FaultKind::ProjectionStall));
    }

    #[test]
    fn empty_plan_never_fires() {
        let mut armed = FaultArming::new(None);
        for k in 0..100 {
            assert!(!armed.take(k, FaultKind::NanGradient));
            assert!(!armed.take(k, FaultKind::CgStall));
            assert!(!armed.take(k, FaultKind::ProjectionStall));
        }
    }

    #[test]
    fn descriptions_name_the_fault() {
        assert!(FaultKind::NanGradient.describe().contains("NaN"));
        assert!(FaultKind::CgStall.describe().contains("CG"));
        assert!(FaultKind::ProjectionStall.describe().contains("projection"));
    }
}
