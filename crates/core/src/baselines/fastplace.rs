//! A FastPlace-3.0-style baseline: quadratic placement + local cell
//! shifting (diffusion) + iterative local refinement.
//!
//! FastPlace spreads cells with *local* density information: each
//! overfilled bin pushes its cells toward less-utilized neighbors, and the
//! shifted locations become anchor targets for the next quadratic solve.
//! This is precisely the "local subgradient information" approach the paper
//! contrasts with ComPLx's global feasibility projection (Section 3), and
//! its weaker spreading signal is why it needs more iterations.

use std::time::Instant;

use complx_legalize::{DetailedPlacer, Legalizer};
use complx_netlist::{density::DensityGrid, hpwl, Design, Placement, Point};
use complx_sparse::CgSolver;
use complx_wirelength::{Anchors, InterconnectModel, NetModel, QuadraticModel};

use complx_obs as obs;

use crate::metrics::PlacementMetrics;
use crate::placer::PlacementOutcome;
use crate::solves::SolveRecord;
use crate::trace::{IterationRecord, Trace};

/// Configuration of the FastPlace-like baseline.
#[derive(Debug, Clone, PartialEq)]
pub struct FastPlaceLike {
    /// Maximum spreading iterations.
    pub max_iterations: usize,
    /// Stop when overflow drops below this ratio.
    pub overflow_tolerance: f64,
    /// Anchor strength growth per iteration (dimensionless).
    pub anchor_growth: f64,
    /// Diffusion step size (fraction of a bin per unit normalized density
    /// gradient).
    pub diffusion_step: f64,
    /// Number of diffusion sub-steps per iteration.
    pub diffusion_substeps: usize,
}

impl Default for FastPlaceLike {
    fn default() -> Self {
        Self {
            max_iterations: 120,
            overflow_tolerance: 0.04,
            anchor_growth: 1.3,
            diffusion_step: 0.6,
            diffusion_substeps: 10,
        }
    }
}

impl FastPlaceLike {
    /// Runs the baseline; the outcome mirrors [`crate::ComplxPlacer`] so the
    /// benchmark harness can tabulate both uniformly.
    pub fn place(&self, design: &Design) -> PlacementOutcome {
        let _place_span = obs::span("place");
        let t_global = Instant::now(); // lint:allow(nondet-taint): phase timer; elapsed seconds feed the report only, never a coordinate
        let model = QuadraticModel::new(NetModel::HybridCliqueStar)
            .with_solver(CgSolver::new().with_tolerance(1e-5));

        let mut solves: Vec<SolveRecord> = Vec::new();
        let mut lower = design.initial_placement();
        {
            let _bootstrap_span = obs::span("bootstrap");
            for _ in 0..3 {
                let stats = model.minimize(design, &mut lower, None);
                solves.push(SolveRecord::from_stats(0, &stats));
            }
        }

        let bins = grid_bins(design);
        let mut trace = Trace::new();
        let mut anchor_lambda = 0.0f64;
        let mut converged = false;
        let mut iterations = 0;

        // Initial anchor strength comparable to ComPLx's λ₁ heuristic.
        let g0 = DensityGrid::build(design, &lower, bins, bins);
        let phi0 = hpwl::weighted_hpwl(design, &lower);
        let mut shifted = lower.clone();
        diffuse(
            design,
            &mut shifted,
            bins,
            self.diffusion_step,
            self.diffusion_substeps,
        );
        let pi0 = lower.l1_distance(&shifted).max(1e-12);
        let lambda_1 = phi0 / (100.0 * pi0);
        trace.push(IterationRecord {
            iteration: 0,
            lambda: 0.0,
            phi_lower: phi0,
            phi_upper: hpwl::weighted_hpwl(design, &shifted),
            pi: pi0,
            lagrangian: phi0,
            overflow: g0.overflow_ratio(design.target_density()),
            bins,
        });

        let mut targets = shifted;
        for k in 1..=self.max_iterations {
            let _iter_span = obs::span("iteration");
            obs::add("place.iterations", 1);
            iterations = k;
            // lint:allow(no-float-eq): exact 0.0 is the "first iteration"
            // sentinel; the variable is never computed, only assigned.
            anchor_lambda = if anchor_lambda == 0.0 {
                lambda_1
            } else {
                anchor_lambda * self.anchor_growth
            };
            let anchors = Anchors::uniform(design, targets.clone(), anchor_lambda);
            let stats = model.minimize(design, &mut lower, Some(&anchors));
            solves.push(SolveRecord::from_stats(k, &stats));

            // Local diffusion toward less dense areas.
            let mut next = lower.clone();
            diffuse(
                design,
                &mut next,
                bins,
                self.diffusion_step,
                self.diffusion_substeps,
            );

            let grid = DensityGrid::build(design, &lower, bins, bins);
            let overflow = grid.overflow_ratio(design.target_density());
            let phi_lower = hpwl::weighted_hpwl(design, &lower);
            let pi = lower.l1_distance(&next);
            trace.push(IterationRecord {
                iteration: k,
                lambda: anchor_lambda,
                phi_lower,
                phi_upper: hpwl::weighted_hpwl(design, &next),
                pi,
                lagrangian: phi_lower + anchor_lambda * pi,
                overflow,
                bins,
            });
            targets = next;
            if overflow < self.overflow_tolerance {
                converged = true;
                break;
            }
        }
        let global_seconds = t_global.elapsed().as_secs_f64();

        let t_detail = Instant::now(); // lint:allow(nondet-taint): phase timer; elapsed seconds feed the report only, never a coordinate
        let legalized = Legalizer::default().legalize(design, &lower);
        let legal = DetailedPlacer::default()
            .improve(design, legalized.placement)
            .placement;
        let detail_seconds = t_detail.elapsed().as_secs_f64();

        let metrics = PlacementMetrics::measure(design, &legal);
        PlacementOutcome {
            upper: targets,
            lower,
            hpwl_legal: metrics.hpwl,
            metrics,
            legal,
            final_lambda: anchor_lambda,
            trace,
            iterations,
            converged,
            stop_reason: if converged {
                crate::StopReason::Converged
            } else {
                crate::StopReason::IterationCap
            },
            recoveries: 0,
            global_seconds,
            detail_seconds,
            solves,
        }
    }
}

/// Number of bins per side for the diffusion grid.
pub(crate) fn grid_bins(design: &Design) -> usize {
    // Coarser than ComPLx's projection grid: local diffusion needs several
    // cells per bin to produce a stable gradient signal.
    let n = design.movable_cells().len().max(1) as f64;
    ((n / 16.0).sqrt().ceil() as usize).clamp(4, 256)
}

/// One local density-diffusion move: every movable cell drifts down the
/// (bin-smoothed) density gradient, scaled by how overfilled its bin is.
pub(crate) fn diffuse(
    design: &Design,
    placement: &mut Placement,
    bins: usize,
    step: f64,
    substeps: usize,
) {
    let gamma = design.target_density();
    let core = design.core();
    for _ in 0..substeps {
        let grid = DensityGrid::build(design, placement, bins, bins);
        let bw = grid.bin_width();
        let bh = grid.bin_height();
        let util = |ix: isize, iy: isize| -> f64 {
            if ix < 0 || iy < 0 || ix >= bins as isize || iy >= bins as isize {
                // Walls behave like fully-utilized bins so cells drift
                // inward, not off the edge.
                return 2.0;
            }
            let (ix, iy) = (ix as usize, iy as usize);
            let cap = grid.capacity(ix, iy);
            if cap <= 1e-9 {
                2.0
            } else {
                grid.usage(ix, iy) / cap
            }
        };
        for &id in design.movable_cells() {
            let p = placement.position(id);
            let ix = (((p.x - core.lx) / bw).floor() as isize).clamp(0, bins as isize - 1);
            let iy = (((p.y - core.ly) / bh).floor() as isize).clamp(0, bins as isize - 1);
            let here = util(ix, iy);
            let excess = (here - gamma).max(0.0);
            if excess <= 0.0 {
                continue;
            }
            let mut gx = util(ix + 1, iy) - util(ix - 1, iy);
            let mut gy = util(ix, iy + 1) - util(ix, iy - 1);
            if gx.abs() + gy.abs() < 1e-9 {
                // Perfectly symmetric pile-ups have zero central-difference
                // gradient; break the tie with a deterministic per-cell
                // direction so diffusion cannot stall.
                let theta = id.index() as f64 * 2.399963229728653; // golden angle
                gx = -theta.cos();
                gy = -theta.sin();
            }
            let scale = step * excess.min(2.0);
            let cell = design.cell(id);
            let hw = (0.5 * cell.width()).min(0.5 * core.width());
            let hh = (0.5 * cell.height()).min(0.5 * core.height());
            let nx = (p.x - scale * gx * bw * 0.5).clamp(core.lx + hw, core.hx - hw);
            let ny = (p.y - scale * gy * bh * 0.5).clamp(core.ly + hh, core.hy - hh);
            placement.set_position(id, Point::new(nx, ny));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use complx_legalize::is_legal;
    use complx_netlist::generator::GeneratorConfig;

    #[test]
    fn fastplace_like_produces_legal_placement() {
        let d = GeneratorConfig::small("fp", 61).generate();
        let cfg = FastPlaceLike {
            max_iterations: 40,
            ..FastPlaceLike::default()
        };
        let out = cfg.place(&d);
        assert!(is_legal(&d, &out.legal, 1e-6));
        assert!(out.hpwl_legal > 0.0);
    }

    #[test]
    fn diffusion_reduces_overflow() {
        let d = GeneratorConfig::small("df", 62).generate();
        let mut p = d.initial_placement();
        let bins = grid_bins(&d);
        let before = DensityGrid::build(&d, &p, bins, bins).overflow_ratio(1.0);
        diffuse(&d, &mut p, bins, 0.45, 10);
        let after = DensityGrid::build(&d, &p, bins, bins).overflow_ratio(1.0);
        assert!(after < before, "{before} -> {after}");
    }

    #[test]
    fn diffusion_keeps_cells_in_core() {
        let d = GeneratorConfig::small("dc", 63).generate();
        let mut p = d.initial_placement();
        diffuse(&d, &mut p, grid_bins(&d), 1.0, 20);
        for &id in d.movable_cells() {
            assert!(d.core().contains(p.position(id)));
        }
    }
}
