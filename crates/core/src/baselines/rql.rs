//! An RQL-style baseline: relaxed quadratic spreading with ad-hoc force
//! modulation (Viswanathan et al., DAC 2007).
//!
//! RQL is the strongest published competitor in the paper's tables. Its
//! placement engine is, like SimPL/ComPLx, a sequence of quadratic solves
//! against spreading targets; what distinguishes it is *force modulation*:
//! the spreading force applied to each cell is capped by an ad-hoc
//! threshold instead of being derived from a Lagrangian (the critique in
//! paper Section 3). We reproduce that structure: spreading targets come
//! from the same look-ahead projection, but each cell's per-iteration
//! target displacement is clamped to a fixed number of bin widths, and the
//! multiplier grows on a fixed (non-adaptive) schedule.

use std::time::Instant;

use complx_legalize::{DetailedPlacer, Legalizer};
use complx_netlist::{hpwl, Design, Placement, Point};
use complx_sparse::CgSolver;
use complx_spread::FeasibilityProjection;
use complx_wirelength::{Anchors, InterconnectModel, NetModel, QuadraticModel};

use complx_obs as obs;

use crate::metrics::PlacementMetrics;
use crate::placer::PlacementOutcome;
use crate::solves::SolveRecord;
use crate::trace::{IterationRecord, Trace};

/// Configuration of the RQL-like baseline.
#[derive(Debug, Clone, PartialEq)]
pub struct RqlLike {
    /// Maximum spreading iterations.
    pub max_iterations: usize,
    /// Stop when overflow drops below this ratio.
    pub overflow_tolerance: f64,
    /// Stop when the relative gap between bounds drops below this.
    pub gap_tolerance: f64,
    /// Fixed multiplier growth per iteration (non-adaptive — RQL does not
    /// track a dual variable).
    pub lambda_step: f64,
    /// Per-iteration anchor displacement cap, in bin widths (the ad-hoc
    /// force-modulation threshold).
    pub displacement_cap_bins: f64,
}

impl Default for RqlLike {
    fn default() -> Self {
        Self {
            max_iterations: 100,
            overflow_tolerance: 0.05,
            gap_tolerance: 0.1,
            lambda_step: 40.0,
            displacement_cap_bins: 4.0,
        }
    }
}

impl RqlLike {
    /// Runs the baseline.
    pub fn place(&self, design: &Design) -> PlacementOutcome {
        let _place_span = obs::span("place");
        let t_global = Instant::now(); // lint:allow(nondet-taint): phase timer; elapsed seconds feed the report only, never a coordinate
        let model = QuadraticModel::new(NetModel::Bound2Bound)
            .with_solver(CgSolver::new().with_tolerance(1e-5));
        let projection = FeasibilityProjection::default();
        let bins = projection.adaptive_bins(design);
        let cap = self.displacement_cap_bins * design.core().width() / bins as f64;

        let mut solves: Vec<SolveRecord> = Vec::new();
        let mut lower = design.initial_placement();
        {
            let _bootstrap_span = obs::span("bootstrap");
            for _ in 0..3 {
                let stats = model.minimize(design, &mut lower, None);
                solves.push(SolveRecord::from_stats(0, &stats));
            }
        }

        let mut trace = Trace::new();
        let mut proj = projection.project_with_bins(design, &lower, bins);
        let phi0 = hpwl::weighted_hpwl(design, &lower);
        let pi0 = proj.distance_l1.max(1e-12);
        let lambda_1 = phi0 / (100.0 * pi0);
        trace.push(IterationRecord {
            iteration: 0,
            lambda: 0.0,
            phi_lower: phi0,
            phi_upper: hpwl::weighted_hpwl(design, &proj.placement),
            pi: pi0,
            lagrangian: phi0,
            overflow: proj.overflow_before,
            bins,
        });

        let mut best_upper = proj.placement.clone();
        let mut best_phi_upper = hpwl::weighted_hpwl(design, &best_upper);
        let mut targets = proj.placement.clone();
        clamp_displacement(design, &lower, &mut targets, cap);

        let mut lambda = 0.0f64;
        let mut converged = false;
        let mut iterations = 0;
        for k in 1..=self.max_iterations {
            let _iter_span = obs::span("iteration");
            obs::add("place.iterations", 1);
            iterations = k;
            // lint:allow(no-float-eq): exact 0.0 is the "first iteration"
            // sentinel; the variable is never computed, only assigned.
            lambda = if lambda == 0.0 {
                lambda_1
            } else {
                lambda + self.lambda_step * lambda_1
            };
            let anchors = Anchors::uniform(design, targets.clone(), lambda);
            let stats = model.minimize(design, &mut lower, Some(&anchors));
            solves.push(SolveRecord::from_stats(k, &stats));

            proj = projection.project_with_bins(design, &lower, bins);
            let upper = proj.placement.clone();
            let phi_lower = hpwl::weighted_hpwl(design, &lower);
            let phi_upper = hpwl::weighted_hpwl(design, &upper);
            let pi = lower.l1_distance(&upper);
            if phi_upper < best_phi_upper && proj.overflow_after < 0.25 {
                best_phi_upper = phi_upper;
                best_upper = upper.clone();
            }
            trace.push(IterationRecord {
                iteration: k,
                lambda,
                phi_lower,
                phi_upper,
                pi,
                lagrangian: phi_lower + lambda * pi,
                overflow: proj.overflow_before,
                bins,
            });
            // Force modulation: clamp the next anchors' displacement.
            targets = upper;
            clamp_displacement(design, &lower, &mut targets, cap);

            let rel_gap = if phi_upper > 0.0 {
                (phi_upper - phi_lower) / phi_upper
            } else {
                0.0
            };
            if proj.overflow_before < self.overflow_tolerance
                || (k >= 3 && rel_gap < self.gap_tolerance)
            {
                converged = true;
                break;
            }
        }
        let global_seconds = t_global.elapsed().as_secs_f64();

        let t_detail = Instant::now(); // lint:allow(nondet-taint): phase timer; elapsed seconds feed the report only, never a coordinate
        let legalized = Legalizer::default().legalize(design, &best_upper);
        let legal = DetailedPlacer::default()
            .improve(design, legalized.placement)
            .placement;
        let detail_seconds = t_detail.elapsed().as_secs_f64();

        let metrics = PlacementMetrics::measure(design, &legal);
        PlacementOutcome {
            upper: best_upper,
            lower,
            hpwl_legal: metrics.hpwl,
            metrics,
            legal,
            final_lambda: lambda,
            trace,
            iterations,
            converged,
            stop_reason: if converged {
                crate::StopReason::Converged
            } else {
                crate::StopReason::IterationCap
            },
            recoveries: 0,
            global_seconds,
            detail_seconds,
            solves,
        }
    }
}

/// Clamps each cell's move from `from` to at most `cap` per axis — the
/// ad-hoc force-modulation threshold.
fn clamp_displacement(design: &Design, from: &Placement, to: &mut Placement, cap: f64) {
    for &id in design.movable_cells() {
        let a = from.position(id);
        let b = to.position(id);
        let nx = a.x + (b.x - a.x).clamp(-cap, cap);
        let ny = a.y + (b.y - a.y).clamp(-cap, cap);
        to.set_position(id, Point::new(nx, ny));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use complx_legalize::is_legal;
    use complx_netlist::generator::GeneratorConfig;

    #[test]
    fn rql_like_produces_legal_placement() {
        let d = GeneratorConfig::small("rq", 71).generate();
        let cfg = RqlLike {
            max_iterations: 50,
            ..RqlLike::default()
        };
        let out = cfg.place(&d);
        assert!(is_legal(&d, &out.legal, 1e-6));
        assert!(out.hpwl_legal > 0.0);
    }

    #[test]
    fn displacement_cap_enforced() {
        let d = GeneratorConfig::small("rc", 72).generate();
        let from = d.initial_placement();
        let mut to = from.clone();
        for v in to.xs_mut() {
            *v += 100.0;
        }
        clamp_displacement(&d, &from, &mut to, 5.0);
        for &id in d.movable_cells() {
            let delta = (to.position(id).x - from.position(id).x).abs();
            assert!(delta <= 5.0 + 1e-9);
        }
    }
}
