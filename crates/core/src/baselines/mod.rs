//! Baseline placers for the paper's comparisons (Tables 1 and 2).
//!
//! * [`simpl_placer`] — SimPL as a special case of ComPLx (Section 5):
//!   the same machinery with SimPL's arithmetic pseudonet-weight schedule
//!   and coarser convergence test.
//! * [`FastPlaceLike`] — a FastPlace-3.0-style force-directed placer:
//!   quadratic optimization plus *local* bin-based cell shifting (diffusion)
//!   instead of a global feasibility projection.
//! * [`RqlLike`] — an RQL-style variant of the same: relaxed quadratic
//!   spreading with ad-hoc force-modulation thresholding (the foil the
//!   paper's Section 3 describes).
//! * [`CogConstrained`] — a GORDIAN-style center-of-gravity constrained
//!   primal-dual placer, the §S4 comparison point.
//!
//! The reimplementations are intentionally faithful to the *mechanisms*
//! the paper contrasts (local subgradient-ish diffusion vs. global
//! projection), not to every engineering detail of the original binaries.

mod cog;
mod fastplace;
mod rql;

pub use cog::CogConstrained;
pub use fastplace::FastPlaceLike;
pub use rql::RqlLike;

use crate::config::PlacerConfig;
use crate::placer::ComplxPlacer;

/// SimPL (Kim, Lee, Markov, TCAD 2012) expressed as a ComPLx configuration,
/// exactly as paper Section 5 casts it: linearized-quadratic B2B Φ,
/// look-ahead legalization as `P_C`, arithmetic pseudonet-weight growth.
pub fn simpl_placer() -> ComplxPlacer {
    ComplxPlacer::new(PlacerConfig::simpl())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::LambdaMode;

    #[test]
    fn simpl_preset_uses_arithmetic_lambda() {
        let p = simpl_placer();
        assert!(matches!(
            p.config().lambda_mode,
            LambdaMode::Arithmetic { .. }
        ));
    }
}
