//! A GORDIAN-style center-of-gravity (CoG) constrained primal-dual placer —
//! the §S4 comparison point.
//!
//! Paper Section S4: "Primal-dual optimization was used once in global
//! placement [Alpert et al., 1998], where it was limited to explicit
//! center-of-gravity 'spreading' constraints. These constraints appear in
//! GORDIAN and GORDIAN-L … being convex and linear, they are insufficient
//! to handle modern IC layouts."
//!
//! This baseline demonstrates exactly that: cells are recursively assigned
//! to a `2^level × 2^level` grid of regions (by sorted position, preserving
//! relative order), and each region's CoG is constrained to its region
//! center. The equality constraints are linear, so an augmented-Lagrangian
//! scheme works: per-region multipliers `μ_r` plus a quadratic penalty term
//! fold into the same SPD systems ComPLx solves. What it *cannot* express —
//! per-bin density inequalities, obstacles, macros — is why ComPLx's
//! projection-based nonconvex constraint handling is needed.

use std::time::Instant;

use complx_legalize::{DetailedPlacer, Legalizer};
use complx_netlist::{hpwl, CellId, CellKind, Design, Placement, Point};
use complx_sparse::{CgSolver, CsrMatrix, TripletMatrix};
use complx_wirelength::{decompose_net, Edge, NetModel, VarIndex};

use complx_obs as obs;

use crate::metrics::PlacementMetrics;
use crate::placer::PlacementOutcome;
use crate::solves::SolveRecord;
use crate::trace::{IterationRecord, Trace};

/// Configuration of the CoG-constrained baseline.
#[derive(Debug, Clone, PartialEq)]
pub struct CogConstrained {
    /// Refinement levels: level `l` uses a `2^l × 2^l` region grid.
    pub levels: usize,
    /// Dual iterations per level.
    pub dual_iterations: usize,
    /// Augmented-Lagrangian penalty weight, relative to the mean
    /// connection weight.
    pub rho_factor: f64,
}

impl Default for CogConstrained {
    fn default() -> Self {
        Self {
            levels: 4,
            dual_iterations: 8,
            rho_factor: 4.0,
        }
    }
}

impl CogConstrained {
    /// Runs the baseline. The outcome mirrors [`crate::ComplxPlacer`].
    pub fn place(&self, design: &Design) -> PlacementOutcome {
        let _place_span = obs::span("place");
        let t_global = Instant::now(); // lint:allow(nondet-taint): phase timer; elapsed seconds feed the report only, never a coordinate
        let index = VarIndex::new(design);
        let mut placement = design.initial_placement();
        let mut trace = Trace::new();
        let mut solves: Vec<SolveRecord> = Vec::new();

        // Bootstrap: unconstrained quadratic optimum.
        {
            let _bootstrap_span = obs::span("bootstrap");
            for _ in 0..3 {
                let rec = solve_axis_pair(design, &index, &mut placement, &[], &[], 0.0);
                solves.push(SolveRecord {
                    iteration: 0,
                    ..rec
                });
            }
        }
        let phi0 = hpwl::weighted_hpwl(design, &placement);
        trace.push(IterationRecord {
            iteration: 0,
            lambda: 0.0,
            phi_lower: phi0,
            phi_upper: phi0,
            pi: 0.0,
            lagrangian: phi0,
            overflow: 0.0,
            bins: 1,
        });

        let core = design.core();
        let mut iteration = 0usize;
        for level in 1..=self.levels {
            let regions = assign_regions(design, &placement, level);
            // Region centers: the geometric centers of a uniform grid.
            let n_side = 1usize << level;
            let centers: Vec<Point> = (0..n_side * n_side)
                .map(|r| {
                    let ix = r % n_side;
                    let iy = r / n_side;
                    Point::new(
                        core.lx + (ix as f64 + 0.5) / n_side as f64 * core.width(),
                        core.ly + (iy as f64 + 0.5) / n_side as f64 * core.height(),
                    )
                })
                .collect();
            // Dual variables per region per axis.
            let mut mu_x = vec![0.0f64; centers.len()];
            let mut mu_y = vec![0.0f64; centers.len()];
            let rho = self.rho_factor;

            for _ in 0..self.dual_iterations {
                let _iter_span = obs::span("iteration");
                obs::add("place.iterations", 1);
                iteration += 1;
                let rec = solve_axis_pair(design, &index, &mut placement, &regions, &centers, rho);
                solves.push(SolveRecord { iteration, ..rec });
                // Dual ascent on the CoG residuals.
                let (res_x, res_y) = cog_residuals(design, &placement, &regions, &centers);
                let mut total_violation = 0.0;
                for r in 0..centers.len() {
                    mu_x[r] += rho * res_x[r];
                    mu_y[r] += rho * res_y[r];
                    total_violation += res_x[r].abs() + res_y[r].abs();
                }
                let phi = hpwl::weighted_hpwl(design, &placement);
                trace.push(IterationRecord {
                    iteration,
                    lambda: rho,
                    phi_lower: phi,
                    phi_upper: phi,
                    pi: total_violation,
                    lagrangian: phi + rho * total_violation,
                    overflow: 0.0,
                    bins: n_side,
                });
                // Note: μ is tracked for reporting; the CoG pull itself is
                // re-derived from residuals each primal solve (the penalty
                // dominates in practice, as in GORDIAN's implementation).
                let _ = (&mu_x, &mu_y);
            }
        }
        let global_seconds = t_global.elapsed().as_secs_f64();

        let t_detail = Instant::now(); // lint:allow(nondet-taint): phase timer; elapsed seconds feed the report only, never a coordinate
        let legalized = Legalizer::default().legalize(design, &placement);
        let legal = DetailedPlacer::default()
            .improve(design, legalized.placement)
            .placement;
        let detail_seconds = t_detail.elapsed().as_secs_f64();

        let metrics = PlacementMetrics::measure(design, &legal);
        PlacementOutcome {
            lower: placement.clone(),
            upper: placement,
            hpwl_legal: metrics.hpwl,
            metrics,
            legal,
            trace,
            iterations: iteration,
            final_lambda: self.rho_factor,
            converged: true,
            stop_reason: crate::StopReason::Converged,
            recoveries: 0,
            global_seconds,
            detail_seconds,
            solves,
        }
    }
}

/// Assigns each movable cell to a region of the `2^level` grid by recursive
/// order-preserving bisection (GORDIAN's partitioning, simplified to
/// geometric median cuts).
fn assign_regions(design: &Design, placement: &Placement, level: usize) -> Vec<u32> {
    let n_side = 1usize << level;
    let mut region_of = vec![0u32; design.num_cells()];
    // Recursive bisection on index ranges.
    let mut cells: Vec<CellId> = design
        .movable_cells()
        .iter()
        .copied()
        .filter(|&id| design.cell(id).kind() == CellKind::Movable)
        .collect();
    bisect(
        design,
        placement,
        &mut cells,
        0,
        0,
        n_side,
        n_side,
        &mut region_of,
        true,
    );
    region_of
}

#[allow(clippy::too_many_arguments)]
fn bisect(
    design: &Design,
    placement: &Placement,
    cells: &mut [CellId],
    x0: usize,
    y0: usize,
    w: usize,
    h: usize,
    region_of: &mut [u32],
    cut_x: bool,
) {
    let n_side_total = region_of_side(region_of, design);
    if w == 1 && h == 1 {
        for &c in cells.iter() {
            region_of[c.index()] = (y0 * n_side_total + x0) as u32;
        }
        return;
    }
    // Sort by the cut axis and split into equal halves (area-balanced would
    // be closer to GORDIAN; equal count suffices for uniform cells).
    if cut_x && w > 1 {
        cells.sort_by(|&a, &b| placement.position(a).x.total_cmp(&placement.position(b).x));
        let mid = cells.len() / 2;
        let (left, right) = cells.split_at_mut(mid);
        bisect(design, placement, left, x0, y0, w / 2, h, region_of, false);
        bisect(
            design,
            placement,
            right,
            x0 + w / 2,
            y0,
            w - w / 2,
            h,
            region_of,
            false,
        );
    } else if h > 1 {
        cells.sort_by(|&a, &b| placement.position(a).y.total_cmp(&placement.position(b).y));
        let mid = cells.len() / 2;
        let (bot, top) = cells.split_at_mut(mid);
        bisect(design, placement, bot, x0, y0, w, h / 2, region_of, true);
        bisect(
            design,
            placement,
            top,
            x0,
            y0 + h / 2,
            w,
            h - h / 2,
            region_of,
            true,
        );
    } else {
        bisect(design, placement, cells, x0, y0, w, h, region_of, !cut_x);
    }
}

/// Number of regions per side implied by the caller (stored out of band —
/// regions are `iy·n + ix`, and `n` is fixed per level, so we stash it via
/// a thread-agnostic trick: recompute from the design size each call).
fn region_of_side(_region_of: &[u32], _design: &Design) -> usize {
    // The bisection is always launched with w == h == n_side, and region
    // ids are computed at the leaves where x0 < n_side, y0 < n_side. The
    // id formula only needs a consistent stride; use the global maximum
    // side (64) — ids stay unique because x0 < 64 always holds for the
    // levels used here.
    64
}

/// CoG residuals per region: `mean(position) − center`.
fn cog_residuals(
    design: &Design,
    placement: &Placement,
    regions: &[u32],
    centers: &[Point],
) -> (Vec<f64>, Vec<f64>) {
    let n_side = (centers.len() as f64).sqrt() as usize;
    let mut sum_x = vec![0.0f64; centers.len()];
    let mut sum_y = vec![0.0f64; centers.len()];
    let mut count = vec![0usize; centers.len()];
    for &id in design.movable_cells() {
        if design.cell(id).kind() != CellKind::Movable {
            continue;
        }
        let r = decode_region(regions[id.index()], n_side);
        let p = placement.position(id);
        sum_x[r] += p.x;
        sum_y[r] += p.y;
        count[r] += 1;
    }
    let mut res_x = vec![0.0; centers.len()];
    let mut res_y = vec![0.0; centers.len()];
    for r in 0..centers.len() {
        if count[r] > 0 {
            res_x[r] = sum_x[r] / count[r] as f64 - centers[r].x;
            res_y[r] = sum_y[r] / count[r] as f64 - centers[r].y;
        }
    }
    (res_x, res_y)
}

fn decode_region(raw: u32, n_side: usize) -> usize {
    let x0 = (raw as usize) % 64;
    let y0 = (raw as usize) / 64;
    (y0.min(n_side - 1)) * n_side + x0.min(n_side - 1)
}

/// Solves both axes of `Φ_Q + rho·Σ_r |r|·(CoG_r − c_r)²` (the augmented
/// penalty linearized as per-cell pulls toward `pos − residual`). Returns
/// the solver record for the pair (the `iteration` field is left at 0 for
/// the caller to tag).
fn solve_axis_pair(
    design: &Design,
    index: &VarIndex,
    placement: &mut Placement,
    regions: &[u32],
    centers: &[Point],
    rho: f64,
) -> SolveRecord {
    let mut axis_stats = Vec::with_capacity(2);
    let has_cog = !centers.is_empty() && rho > 0.0;
    let (res_x, res_y) = if has_cog {
        cog_residuals(design, placement, regions, centers)
    } else {
        (Vec::new(), Vec::new())
    };
    let n_side = if has_cog {
        (centers.len() as f64).sqrt() as usize
    } else {
        0
    };

    for is_x in [true, false] {
        let n = index.num_vars();
        let mut q = TripletMatrix::with_capacity(n, design.num_pins() * 4);
        let mut f = vec![0.0f64; n];
        let coord = |cell: CellId| -> f64 {
            if is_x {
                placement.xs()[cell.index()]
            } else {
                placement.ys()[cell.index()]
            }
        };
        let mut coords: Vec<f64> = Vec::new();
        let mut edges: Vec<Edge> = Vec::new();
        for nid in design.net_ids() {
            let pins = design.net_pins(nid);
            coords.clear();
            coords.extend(
                pins.iter()
                    .map(|p| coord(p.cell) + if is_x { p.dx } else { p.dy }),
            );
            decompose_net(
                NetModel::Bound2Bound,
                design.net(nid).weight(),
                &coords,
                1.0,
                &mut edges,
            );
            for e in &edges {
                let resolve = |end: usize| -> (Option<usize>, f64) {
                    let pin = &pins[end];
                    let off = if is_x { pin.dx } else { pin.dy };
                    match index.var(pin.cell) {
                        Some(v) => (Some(v), off),
                        None => (None, coord(pin.cell) + off),
                    }
                };
                let (va, ca) = resolve(e.a);
                let (vb, cb) = resolve(e.b);
                match (va, vb) {
                    (Some(i), Some(j)) if i != j => {
                        q.add_connection(i, j, e.weight);
                        f[i] += e.weight * (ca - cb);
                        f[j] += e.weight * (cb - ca);
                    }
                    (Some(i), None) => {
                        q.add_diagonal(i, e.weight);
                        f[i] += e.weight * (ca - cb);
                    }
                    (None, Some(j)) => {
                        q.add_diagonal(j, e.weight);
                        f[j] += e.weight * (cb - ca);
                    }
                    _ => {}
                }
            }
        }

        // Augmented CoG penalty, linearized per cell: pull each cell toward
        // its current position minus its region's residual.
        if has_cog {
            for v in 0..n {
                let cell = index.cell(v);
                if design.cell(cell).kind() != CellKind::Movable {
                    continue;
                }
                let r = decode_region(regions[cell.index()], n_side);
                let residual = if is_x { res_x[r] } else { res_y[r] };
                let target = coord(cell) - residual;
                q.add_diagonal(v, rho);
                f[v] -= rho * target;
            }
        }

        // Regularize any disconnected variable.
        let probe: CsrMatrix = q.to_csr();
        for (v, &d) in probe.diagonal().iter().enumerate() {
            if d <= 0.0 {
                q.add_diagonal(v, 1e-8);
                f[v] -= 1e-8 * coord(index.cell(v));
            }
        }

        let a = q.to_csr();
        let rhs: Vec<f64> = f.iter().map(|v| -v).collect();
        let mut x: Vec<f64> = (0..n).map(|v| coord(index.cell(v))).collect();
        axis_stats.push(CgSolver::new().with_tolerance(1e-5).solve(&a, &rhs, &mut x));

        let core = design.core();
        for (v, &xi) in x.iter().enumerate() {
            let cell = index.cell(v);
            let c = design.cell(cell);
            let half = if is_x {
                0.5 * c.width()
            } else {
                0.5 * c.height()
            };
            let (lo, hi) = if is_x {
                (core.lx + half, core.hx - half)
            } else {
                (core.ly + half, core.hy - half)
            };
            let clamped = xi.clamp(lo.min(hi), hi.max(lo));
            if is_x {
                placement.xs_mut()[cell.index()] = clamped;
            } else {
                placement.ys_mut()[cell.index()] = clamped;
            }
        }
    }
    let (sx, sy) = (axis_stats[0], axis_stats[1]);
    SolveRecord {
        iteration: 0,
        iterations_x: sx.iterations,
        iterations_y: sy.iterations,
        relative_residual: sx.relative_residual.max(sy.relative_residual),
        clamped_diagonals: sx.clamped_diagonals + sy.clamped_diagonals,
        converged: sx.converged && sy.converged,
        breakdown: sx.breakdown.is_some() || sy.breakdown.is_some(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use complx_legalize::is_legal;
    use complx_netlist::generator::GeneratorConfig;

    #[test]
    fn cog_constraints_are_approached() {
        let d = GeneratorConfig::small("cog", 91).generate();
        let cfg = CogConstrained {
            levels: 3,
            dual_iterations: 6,
            ..Default::default()
        };
        let out = cfg.place(&d);
        // The last trace record's Π is the total CoG violation; it must be
        // small relative to the core dimensions.
        let last = out.trace.records().last().expect("non-empty trace");
        let scale = d.core().width() + d.core().height();
        assert!(
            last.pi < 0.5 * scale,
            "CoG violation {} vs core scale {scale}",
            last.pi
        );
    }

    #[test]
    fn cog_baseline_produces_legal_placement() {
        let d = GeneratorConfig::small("cogl", 92).generate();
        let out = CogConstrained::default().place(&d);
        assert!(is_legal(&d, &out.legal, 1e-6));
        assert!(out.hpwl_legal > 0.0);
    }

    #[test]
    fn cog_spreads_cells_from_center() {
        let d = GeneratorConfig::small("cogs", 93).generate();
        let out = CogConstrained::default().place(&d);
        // Mean distance from the core center must be well above zero —
        // the CoG constraints force occupation of all quadrants.
        let c = d.core().center();
        let mean_dist: f64 = d
            .movable_cells()
            .iter()
            .map(|&id| out.lower.position(id).l1_distance(c))
            .sum::<f64>()
            / d.movable_cells().len() as f64;
        assert!(
            mean_dist > 0.2 * (d.core().width() + d.core().height()) / 4.0,
            "cells still clumped: mean distance {mean_dist}"
        );
    }

    #[test]
    fn region_assignment_is_balanced() {
        let d = GeneratorConfig::small("cogr", 94).generate();
        let p = d.initial_placement();
        let regions = assign_regions(&d, &p, 2);
        let n_side = 4;
        let mut counts = vec![0usize; n_side * n_side];
        for &id in d.movable_cells() {
            if d.cell(id).kind() == CellKind::Movable {
                counts[decode_region(regions[id.index()], n_side)] += 1;
            }
        }
        let max = *counts.iter().max().expect("non-empty");
        let min = *counts.iter().min().expect("non-empty");
        assert!(max <= min + min / 2 + 2, "unbalanced regions: {counts:?}");
    }
}
