//! The Lagrange-multiplier schedule (paper Formula 12 and Section 4).

use crate::config::LambdaMode;

/// Stateful λ schedule.
///
/// The first non-zero value is `λ_1 = Φ/(divisor·Π)` — "sufficiently small
/// so that Φ ≫ λΠ", justified because Φ and Π share units (Section 4; the
/// paper uses divisor 100). Updates then follow the configured mode;
/// ComPLx's own rule caps growth at 2× per iteration and scales the
/// increment by the achieved penalty reduction `Π_{k+1}/Π_k`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LambdaSchedule {
    mode: LambdaMode,
    lambda: f64,
    lambda_1: f64,
    h: f64,
    inverse_ratio: bool,
}

impl LambdaSchedule {
    /// Initializes the schedule from the first iterate's Φ and Π.
    ///
    /// # Panics
    ///
    /// Panics if `phi` or `pi` is not positive.
    pub fn new(mode: LambdaMode, divisor: f64, phi: f64, pi: f64) -> Self {
        assert!(phi > 0.0 && pi > 0.0, "Φ and Π must be positive");
        let lambda_1 = phi / (divisor * pi);
        let h = match mode {
            LambdaMode::Complx { h_factor } => h_factor * lambda_1,
            _ => lambda_1,
        };
        Self {
            mode,
            lambda: lambda_1,
            lambda_1,
            h,
            inverse_ratio: false,
        }
    }

    /// Experimental: interpret the Π ratio as `Π_k/Π_{k+1}` (accelerate
    /// while the penalty is falling) instead of `Π_{k+1}/Π_k`.
    #[must_use]
    pub fn with_inverse_ratio(mut self, inverse: bool) -> Self {
        self.inverse_ratio = inverse;
        self
    }

    /// The current multiplier.
    pub fn lambda(&self) -> f64 {
        self.lambda
    }

    /// The initial multiplier `λ_1`.
    pub fn lambda_1(&self) -> f64 {
        self.lambda_1
    }

    /// The Formula 12 increment scale `h` (checkpointed so a resumed
    /// schedule reproduces the original exactly).
    pub fn h(&self) -> f64 {
        self.h
    }

    /// Rebuilds a schedule from previously captured state — the checkpoint
    /// restore path. `inverse_ratio` defaults off; apply
    /// [`Self::with_inverse_ratio`] afterwards as the original run did.
    pub fn restore(mode: LambdaMode, lambda: f64, lambda_1: f64, h: f64) -> Self {
        Self {
            mode,
            lambda,
            lambda_1,
            h,
            inverse_ratio: false,
        }
    }

    /// Scales the current multiplier by `factor` (the divergence-recovery
    /// policy backs λ off after a numerical fault; the schedule then
    /// regrows it through the usual updates).
    pub fn scale(&mut self, factor: f64) {
        self.lambda *= factor;
    }

    /// Advances the schedule given the previous and current penalty values.
    pub fn advance(&mut self, pi_prev: f64, pi_cur: f64) {
        match self.mode {
            LambdaMode::Complx { .. } => {
                // Formula 12: λ_{k+1} = min(2λ_k, λ_k + (Π_{k+1}/Π_k)·h).
                // The 2λ cap binds during the first iterations ("a maximum
                // increase in λ can be imposed, say 100% per iteration");
                // afterwards growth is additive, throttled by how fast Π
                // falls.
                let ratio = if pi_prev > 0.0 {
                    (pi_cur / pi_prev).max(0.0)
                } else {
                    1.0
                };
                let ratio = if self.inverse_ratio && ratio > 0.0 {
                    1.0 / ratio
                } else {
                    ratio
                };
                self.lambda = (2.0 * self.lambda).min(self.lambda + ratio * self.h);
            }
            LambdaMode::Arithmetic { step } => {
                self.lambda += step * self.lambda_1;
            }
            LambdaMode::Geometric { ratio } => {
                self.lambda *= ratio;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn initial_lambda_is_phi_over_100_pi() {
        let s = LambdaSchedule::new(LambdaMode::default(), 100.0, 5000.0, 10.0);
        assert!((s.lambda() - 5.0).abs() < 1e-12);
        assert_eq!(s.lambda(), s.lambda_1());
    }

    #[test]
    fn complx_growth_capped_at_doubling() {
        let mut s = LambdaSchedule::new(LambdaMode::Complx { h_factor: 100.0 }, 100.0, 100.0, 1.0);
        let l0 = s.lambda();
        s.advance(1.0, 1.0); // huge h would explode without the 2λ cap
        assert!((s.lambda() - 2.0 * l0).abs() < 1e-12);
    }

    #[test]
    fn complx_increment_scales_with_pi_ratio() {
        // Use a small h so the 2λ cap does not bind and the Π-ratio term is
        // observable.
        let mode = LambdaMode::Complx { h_factor: 0.5 };
        let mut a = LambdaSchedule::new(mode, 100.0, 100.0, 1.0);
        let mut b = a;
        a.advance(10.0, 9.0); // Π barely decreased → larger increment
        b.advance(10.0, 1.0); // Π collapsed → smaller increment
        assert!(a.lambda() > b.lambda());
    }

    #[test]
    fn arithmetic_growth_is_linear() {
        let mut s = LambdaSchedule::new(LambdaMode::Arithmetic { step: 1.0 }, 100.0, 100.0, 1.0);
        let l1 = s.lambda_1();
        s.advance(1.0, 1.0);
        s.advance(1.0, 1.0);
        assert!((s.lambda() - 3.0 * l1).abs() < 1e-12);
    }

    #[test]
    fn geometric_growth_multiplies() {
        let mut s = LambdaSchedule::new(LambdaMode::Geometric { ratio: 1.5 }, 100.0, 100.0, 1.0);
        let l1 = s.lambda();
        s.advance(1.0, 1.0);
        assert!((s.lambda() - 1.5 * l1).abs() < 1e-12);
    }

    #[test]
    fn scale_backs_lambda_off_without_touching_lambda_1() {
        let mut s = LambdaSchedule::new(LambdaMode::default(), 100.0, 5000.0, 10.0);
        let l1 = s.lambda_1();
        s.advance(1.0, 1.0);
        let before = s.lambda();
        s.scale(0.5);
        assert!((s.lambda() - 0.5 * before).abs() < 1e-12);
        assert_eq!(s.lambda_1(), l1);
    }

    #[test]
    #[should_panic(expected = "must be positive")]
    fn zero_pi_rejected() {
        LambdaSchedule::new(LambdaMode::default(), 100.0, 100.0, 0.0);
    }

    #[test]
    fn restore_reproduces_advance_sequence() {
        let mut original = LambdaSchedule::new(LambdaMode::default(), 100.0, 5000.0, 10.0);
        original.advance(10.0, 7.0);
        original.advance(7.0, 3.0);
        let mut restored = LambdaSchedule::restore(
            LambdaMode::default(),
            original.lambda(),
            original.lambda_1(),
            original.h(),
        );
        original.advance(3.0, 2.0);
        restored.advance(3.0, 2.0);
        assert_eq!(original.lambda().to_bits(), restored.lambda().to_bits());
    }
}
