//! Canonical identity hashing for designs and configurations.
//!
//! One FNV-1a-64 implementation serves every identity check in the
//! workspace: the checkpoint codec's file checksum and resume validation
//! ([`crate::ckpt`]) and the serving layer's result cache, which keys on
//! the `(design_hash, config_hash)` pair — two submissions with equal
//! hashes drive the placer identically, so their results are
//! interchangeable byte for byte (the determinism contract).
//!
//! [`config_hash`] deliberately excludes run-management fields
//! (`time_budget`, `faults`, `checkpoint`): they change how a run is
//! *supervised*, never which iterates it produces.

use complx_netlist::{CellKind, Design};

use crate::config::{GridSchedule, Interconnect, LambdaMode, PlacerConfig};

/// FNV-1a 64 over a byte slice (the file checksum).
pub fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Incremental FNV-1a 64 for structured hashing: length-prefixed strings
/// and fixed-width little-endian scalars, so distinct field sequences
/// cannot collide by concatenation.
pub struct Fnv(u64);

impl Default for Fnv {
    fn default() -> Self {
        Self::new()
    }
}

impl Fnv {
    /// A hasher at the FNV-1a 64 offset basis.
    pub fn new() -> Self {
        Fnv(0xcbf2_9ce4_8422_2325)
    }
    /// Finishes, returning the accumulated hash.
    pub fn finish(&self) -> u64 {
        self.0
    }
    /// Feeds raw bytes.
    pub fn bytes(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 ^= u64::from(b);
            self.0 = self.0.wrapping_mul(0x0000_0100_0000_01b3);
        }
    }
    /// Feeds a `u64` value.
    pub fn u64(&mut self, v: u64) {
        self.bytes(&v.to_le_bytes());
    }
    /// Feeds a `f64` value.
    pub fn f64(&mut self, v: f64) {
        self.u64(v.to_bits());
    }
    /// Feeds a `usize` value.
    pub fn usize(&mut self, v: usize) {
        self.u64(v as u64);
    }
    /// Feeds a `bool` value.
    pub fn bool(&mut self, v: bool) {
        self.bytes(&[u8::from(v)]);
    }
    /// Feeds a `str` value.
    pub fn str(&mut self, s: &str) {
        self.usize(s.len());
        self.bytes(s.as_bytes());
    }
}

/// A structural fingerprint of a design: name, geometry, cells (with fixed
/// positions), nets with their pins, and placement constraints. Two designs
/// with equal hashes drive the placer identically, so a checkpoint taken on
/// one resumes correctly on the other.
pub fn design_hash(design: &Design) -> u64 {
    let mut f = Fnv::new();
    f.str(design.name());
    let core = design.core();
    for v in [core.lx, core.ly, core.hx, core.hy] {
        f.f64(v);
    }
    f.f64(design.row_height());
    f.f64(design.target_density());
    f.usize(design.num_cells());
    for id in design.cell_ids() {
        let c = design.cell(id);
        f.str(c.name());
        f.f64(c.width());
        f.f64(c.height());
        f.u64(match c.kind() {
            CellKind::Movable => 0,
            CellKind::MovableMacro => 1,
            CellKind::Fixed => 2,
            CellKind::Terminal => 3,
        });
        if !c.is_movable() {
            let p = design.fixed_positions().position(id);
            f.f64(p.x);
            f.f64(p.y);
        }
    }
    f.usize(design.num_nets());
    for nid in design.net_ids() {
        let n = design.net(nid);
        f.str(n.name());
        f.f64(n.weight());
        let pins = design.net_pins(nid);
        f.usize(pins.len());
        for p in pins {
            f.usize(p.cell.index());
            f.f64(p.dx);
            f.f64(p.dy);
        }
    }
    f.usize(design.regions().len());
    for r in design.regions() {
        f.str(r.name());
        let rect = r.rect();
        for v in [rect.lx, rect.ly, rect.hx, rect.hy] {
            f.f64(v);
        }
        f.usize(r.cells().len());
        for &c in r.cells() {
            f.usize(c.index());
        }
    }
    f.usize(design.alignments().len());
    for a in design.alignments() {
        f.str(a.name());
        f.u64(matches!(a.axis(), complx_netlist::AlignmentAxis::Horizontal) as u64);
        f.usize(a.cells().len());
        for &c in a.cells() {
            f.usize(c.index());
        }
    }
    f.0
}

/// A fingerprint of every configuration field that influences the iterate
/// sequence. Deliberately *excludes* `time_budget`, `faults`, and
/// `checkpoint`: a run killed by a fault and its resume (with different
/// fault plans and checkpoint settings) must hash identically.
pub fn config_hash(cfg: &PlacerConfig) -> u64 {
    let mut f = Fnv::new();
    match cfg.interconnect {
        Interconnect::Quadratic(nm) => {
            f.u64(0);
            f.u64(match nm {
                complx_wirelength::NetModel::Bound2Bound => 0,
                complx_wirelength::NetModel::Clique => 1,
                complx_wirelength::NetModel::Star => 2,
                complx_wirelength::NetModel::HybridCliqueStar => 3,
            });
        }
        Interconnect::LogSumExp { gamma_rows } => {
            f.u64(1);
            f.f64(gamma_rows);
        }
        Interconnect::BetaRegularized { beta_rows2 } => {
            f.u64(2);
            f.f64(beta_rows2);
        }
        Interconnect::PNorm { p } => {
            f.u64(3);
            f.f64(p);
        }
    }
    f.usize(cfg.max_iterations);
    f.f64(cfg.gap_tolerance);
    f.f64(cfg.overflow_tolerance);
    match cfg.lambda_mode {
        LambdaMode::Complx { h_factor } => {
            f.u64(0);
            f.f64(h_factor);
        }
        LambdaMode::Arithmetic { step } => {
            f.u64(1);
            f.f64(step);
        }
        LambdaMode::Geometric { ratio } => {
            f.u64(2);
            f.f64(ratio);
        }
    }
    f.f64(cfg.lambda_init_divisor);
    f.bool(cfg.lambda_inverse_ratio);
    match cfg.grid {
        GridSchedule::CoarseToFine {
            start_fraction,
            growth,
        } => {
            f.u64(0);
            f.f64(start_fraction);
            f.f64(growth);
        }
        GridSchedule::Fixed { fraction } => {
            f.u64(1);
            f.f64(fraction);
        }
    }
    f.f64(cfg.cells_per_bin);
    f.bool(cfg.per_macro_lambda);
    f.bool(cfg.shred_macros);
    f.bool(cfg.detail_each_iteration);
    f.bool(cfg.final_detail);
    f.f64(cfg.cg_tolerance);
    f.usize(cfg.cg_max_iterations);
    f.usize(cfg.stagnation_window);
    match &cfg.routability {
        None => f.bool(false),
        Some(r) => {
            f.bool(true);
            f.f64(r.supply);
            f.f64(r.alpha);
            f.f64(r.max_inflation);
            f.usize(r.grid_bins);
        }
    }
    f.usize(cfg.max_recoveries);
    f.u64(match cfg.projection {
        crate::config::ProjectionBackend::Geometric => 0,
        crate::config::ProjectionBackend::Electro => 1,
    });
    f.0
}
