//! Per-iteration convergence records — the data behind Figures 1 and 3.

use std::fmt::Write as _;

/// One global placement iteration's measurements.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct IterationRecord {
    /// Iteration index (1-based; 0 is the unconstrained bootstrap solve).
    pub iteration: usize,
    /// The multiplier λ used in this iteration's primal step.
    pub lambda: f64,
    /// `Φ` — interconnect cost (weighted HPWL) of the lower-bound iterate.
    pub phi_lower: f64,
    /// `Φ(x°, y°)` — interconnect cost of the feasible (upper-bound)
    /// iterate.
    pub phi_upper: f64,
    /// `Π` — L1 distance from the iterate to its projection (Formula 3).
    pub pi: f64,
    /// The Lagrangian `L = Φ + λ·Π` (Formula 4).
    pub lagrangian: f64,
    /// Bin-overflow ratio of the lower-bound iterate at this iteration's
    /// grid.
    pub overflow: f64,
    /// Grid resolution used by `P_C` this iteration.
    pub bins: usize,
}

impl IterationRecord {
    /// The duality gap `Δ_Φ = Φ(x°,y°) − Φ(x,y)` (Formula 8).
    pub fn duality_gap(&self) -> f64 {
        self.phi_upper - self.phi_lower
    }

    /// The relative duality gap `Δ_Φ / Φ(x°,y°)`.
    pub fn relative_gap(&self) -> f64 {
        if self.phi_upper <= 0.0 {
            0.0
        } else {
            self.duality_gap() / self.phi_upper
        }
    }
}

/// The full convergence trace of one placement run.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Trace {
    records: Vec<IterationRecord>,
}

impl Trace {
    /// Creates an empty trace.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends a record.
    pub fn push(&mut self, r: IterationRecord) {
        self.records.push(r);
    }

    /// All records in iteration order.
    pub fn records(&self) -> &[IterationRecord] {
        &self.records
    }

    /// Number of recorded iterations.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// Whether the trace is empty.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// The final λ (0 when empty) — the y axis of Figure 3.
    pub fn final_lambda(&self) -> f64 {
        self.records.last().map_or(0.0, |r| r.lambda)
    }

    /// Serializes as CSV (`iteration,lambda,phi_lower,phi_upper,pi,
    /// lagrangian,overflow,bins`), the input to the Figure 1 plots.
    pub fn to_csv(&self) -> String {
        let mut s =
            String::from("iteration,lambda,phi_lower,phi_upper,pi,lagrangian,overflow,bins\n");
        for r in &self.records {
            let _ = writeln!(
                s,
                "{},{:.6e},{:.6e},{:.6e},{:.6e},{:.6e},{:.6e},{}",
                r.iteration,
                r.lambda,
                r.phi_lower,
                r.phi_upper,
                r.pi,
                r.lagrangian,
                r.overflow,
                r.bins
            );
        }
        s
    }

    /// Serializes as a pretty-printed JSON array of per-iteration objects
    /// (chosen by the CLI when `--trace` names a `.json` file), terminated
    /// by a newline like [`Self::to_csv`].
    pub fn to_json(&self) -> String {
        use complx_obs::JsonValue;
        let arr = JsonValue::Arr(
            self.records
                .iter()
                .map(|r| {
                    JsonValue::object(vec![
                        ("iteration", r.iteration.into()),
                        ("lambda", r.lambda.into()),
                        ("phi_lower", r.phi_lower.into()),
                        ("phi_upper", r.phi_upper.into()),
                        ("pi", r.pi.into()),
                        ("lagrangian", r.lagrangian.into()),
                        ("overflow", r.overflow.into()),
                        ("bins", r.bins.into()),
                    ])
                })
                .collect(),
        );
        let mut s = arr.to_json_pretty();
        s.push('\n');
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(i: usize, lambda: f64, lower: f64, upper: f64, pi: f64) -> IterationRecord {
        IterationRecord {
            iteration: i,
            lambda,
            phi_lower: lower,
            phi_upper: upper,
            pi,
            lagrangian: lower + lambda * pi,
            overflow: 0.1,
            bins: 16,
        }
    }

    #[test]
    fn gap_computation() {
        let r = rec(1, 0.5, 90.0, 100.0, 10.0);
        assert!((r.duality_gap() - 10.0).abs() < 1e-12);
        assert!((r.relative_gap() - 0.1).abs() < 1e-12);
    }

    #[test]
    fn csv_has_header_and_rows() {
        let mut t = Trace::new();
        t.push(rec(1, 0.1, 90.0, 100.0, 10.0));
        t.push(rec(2, 0.2, 92.0, 99.0, 8.0));
        let csv = t.to_csv();
        assert_eq!(csv.lines().count(), 3);
        assert!(csv.starts_with("iteration,lambda"));
        assert!(csv.ends_with('\n'), "CSV ends with a newline");
        assert_eq!(t.final_lambda(), 0.2);
        assert_eq!(t.len(), 2);
    }

    #[test]
    fn json_trace_parses_and_preserves_records() {
        let mut t = Trace::new();
        t.push(rec(1, 0.1, 90.0, 100.0, 10.0));
        t.push(rec(2, 0.2, 92.0, 99.0, 8.0));
        let text = t.to_json();
        assert!(text.ends_with('\n'), "JSON ends with a newline");
        let doc = complx_obs::parse(&text).expect("valid JSON");
        let arr = doc.as_array().expect("array");
        assert_eq!(arr.len(), 2);
        assert_eq!(
            arr[1]
                .get("iteration")
                .and_then(complx_obs::JsonValue::as_i64),
            Some(2)
        );
        assert_eq!(
            arr[0]
                .get("phi_upper")
                .and_then(complx_obs::JsonValue::as_f64),
            Some(100.0)
        );
    }
}
