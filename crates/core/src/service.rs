//! Library-shaped solve entry point: one call that runs the full
//! instrumented pipeline the `complx` CLI drives by hand.
//!
//! The CLI wires its pieces — thread budget, observability sinks, cancel
//! token, placement, report assembly — inline in `main`. A long-lived
//! consumer (the `complx-serve` daemon runs one of these per job, on its
//! own worker thread) needs the same pipeline as a function: give it a
//! design, a configuration, and an optional event sink, get back the
//! outcome and the finished `complx-run-report/v1` manifest.
//!
//! The observability pipeline is thread-local, so concurrent
//! [`solve`] calls on different threads keep fully independent event
//! streams and harvests — the property that lets a job server run K
//! placements at once with one JSONL stream per job.

use complx_netlist::Design;
use complx_obs::{RunReport, Sink};
use complx_par::CancelToken;

use crate::config::PlacerConfig;
use crate::error::PlaceError;
use crate::placer::{ComplxPlacer, PlacementOutcome};
use crate::report::run_report;

/// Everything one solve needs beyond the design itself.
pub struct SolveRequest {
    /// Placer configuration (hashed by [`crate::idhash::config_hash`]
    /// for result-cache identity).
    pub config: PlacerConfig,
    /// Worker-thread budget for this solve's parallel kernels, applied as
    /// a thread-local override for the duration of the call (`None` =
    /// process default). Budgets only change speed, never results.
    pub threads: Option<usize>,
    /// Cooperative cancellation; an untripped token changes nothing.
    pub cancel: Option<CancelToken>,
    /// Event sinks for this solve (for example a line-buffered JSONL
    /// stream). The aggregator behind the report always runs.
    pub sinks: Vec<Box<dyn Sink>>,
}

impl SolveRequest {
    /// A request with the given configuration and all extras defaulted.
    pub fn new(config: PlacerConfig) -> Self {
        Self {
            config,
            threads: None,
            cancel: None,
            sinks: Vec::new(),
        }
    }
}

/// A completed solve: the placement outcome plus its run manifest.
pub struct SolveArtifacts {
    /// The placer's structured result (placements, trace, metrics).
    pub outcome: PlacementOutcome,
    /// The `complx-run-report/v1` manifest, phase timings included.
    pub report: RunReport,
}

/// Runs one fully instrumented placement: installs the request's sinks on
/// this thread, applies the thread budget, places under the cancel token,
/// then harvests and assembles the report manifest.
///
/// # Errors
///
/// Every failure mode of [`ComplxPlacer::place`], plus
/// [`PlaceError::Cancelled`] when the token trips before a feasible
/// iterate exists. The pipeline is harvested (sinks flushed and closed)
/// on the error path too, so a cancelled job still leaves a complete
/// event stream.
pub fn solve(design: &Design, request: SolveRequest) -> Result<SolveArtifacts, PlaceError> {
    let SolveRequest {
        config,
        threads,
        cancel,
        sinks,
    } = request;
    // Guard-scoped: the budget must cover the report assembly too, so
    // `extra.parallel.threads` records the thread count the job ran at.
    let _budget = threads.map(complx_par::with_threads);
    complx_obs::install(sinks);
    let mut placer = ComplxPlacer::new(config.clone());
    if let Some(token) = cancel {
        placer = placer.with_cancel(token);
    }
    // lint:allow(nondet-taint): total solve timer; feeds the report's
    // wall-clock field only
    let started = std::time::Instant::now();
    let outcome = match placer.place(design) {
        Ok(o) => o,
        Err(e) => {
            // Flush the event stream so a failed run still leaves a record.
            drop(complx_obs::harvest());
            return Err(e);
        }
    };
    let total_seconds = started.elapsed().as_secs_f64();
    let harvest = complx_obs::harvest();
    let report = run_report(design, Some(&config), &outcome, harvest, total_seconds);
    Ok(SolveArtifacts { outcome, report })
}

#[cfg(test)]
mod tests {
    use super::*;
    use complx_netlist::generator::GeneratorConfig;

    #[test]
    fn solve_produces_outcome_and_report() {
        let design = GeneratorConfig::small("svc", 3).generate();
        let mut req = SolveRequest::new(PlacerConfig::fast());
        req.threads = Some(2);
        let arts = solve(&design, req).expect("solve succeeds");
        assert!(arts.outcome.hpwl_legal > 0.0);
        assert_eq!(arts.report.tool, "complx");
        let threads = arts
            .report
            .extra
            .get("parallel")
            .and_then(|p| p.get("threads"))
            .and_then(complx_obs::JsonValue::as_i64);
        assert_eq!(threads, Some(2), "report records the per-job budget");
    }

    #[test]
    fn solve_matches_direct_place_bit_for_bit() {
        let design = GeneratorConfig::small("svc_eq", 5).generate();
        let direct = ComplxPlacer::new(PlacerConfig::fast())
            .place(&design)
            .expect("direct place");
        let served =
            solve(&design, SolveRequest::new(PlacerConfig::fast())).expect("service solve");
        assert_eq!(
            direct.legal.xs(),
            served.outcome.legal.xs(),
            "instrumentation observes, never perturbs"
        );
        assert_eq!(direct.legal.ys(), served.outcome.legal.ys());
    }

    #[test]
    fn pre_tripped_token_cancels() {
        let design = GeneratorConfig::small("svc_cancel", 7).generate();
        let token = CancelToken::new();
        token.cancel();
        let mut req = SolveRequest::new(PlacerConfig::fast());
        req.cancel = Some(token);
        match solve(&design, req) {
            Err(PlaceError::Cancelled) => {}
            Err(other) => panic!("expected Cancelled, got {other}"),
            Ok(arts) => assert_eq!(
                arts.outcome.stop_reason,
                crate::error::StopReason::Cancelled,
                "a feasible iterate may exist before the first poll"
            ),
        }
    }
}
