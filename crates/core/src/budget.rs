//! Unified stop conditions for the solve pipeline.
//!
//! A [`Budget`] folds the two asynchronous reasons a run must wind down —
//! the wall-clock deadline from [`crate::PlacerConfig::time_budget`] and an
//! external [`complx_par::CancelToken`] — behind one query. The placer
//! polls [`Budget::stop`] at iteration boundaries and exits gracefully
//! through the best-iterate path with the returned [`StopReason`];
//! the raw token (via [`Budget::cancel_token`]) additionally reaches the
//! cancellable kernels (CG, NLCG, projection, detailed placement) so a
//! cancel also interrupts a long-running *step*, not just the loop.
//! The iteration cap stays where it is legible: in the loop bounds.

use std::time::Instant;

use complx_par::CancelToken;

use crate::error::StopReason;

/// The run-wide stop conditions: deadline ∪ external cancellation.
///
/// With no deadline and no token this is inert — every query returns
/// `None` and the placer behaves exactly as an unbudgeted run.
#[derive(Debug, Clone, Default)]
pub struct Budget {
    deadline: Option<Instant>,
    cancel: Option<CancelToken>,
}

impl Budget {
    /// A budget from an optional deadline and an optional cancel token.
    pub fn new(deadline: Option<Instant>, cancel: Option<CancelToken>) -> Self {
        Self { deadline, cancel }
    }

    /// Whether the run must stop now, and why. Cancellation wins over the
    /// deadline when both hold: it is the more deliberate signal.
    pub fn stop(&self) -> Option<StopReason> {
        if self.cancel.as_ref().is_some_and(CancelToken::is_cancelled) {
            return Some(StopReason::Cancelled);
        }
        // lint:allow(nondet-taint): the deadline watchdog is the explicit
        // --max-seconds opt-out of bit-determinism; without a budget this
        // read never gates an iteration
        if self.deadline.is_some_and(|d| Instant::now() >= d) {
            return Some(StopReason::TimeBudget);
        }
        None
    }

    /// The external token for threading into cancellable kernels. `None`
    /// when the budget has no cancellation source (deadline-only budgets
    /// stop at iteration boundaries, as before).
    pub fn cancel_token(&self) -> Option<&CancelToken> {
        self.cancel.as_ref()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    #[test]
    fn empty_budget_never_stops() {
        let b = Budget::default();
        assert_eq!(b.stop(), None);
        assert!(b.cancel_token().is_none());
    }

    #[test]
    fn expired_deadline_reports_time_budget() {
        let b = Budget::new(Some(Instant::now() - Duration::from_millis(1)), None);
        assert_eq!(b.stop(), Some(StopReason::TimeBudget));
    }

    #[test]
    fn future_deadline_does_not_stop() {
        let b = Budget::new(Some(Instant::now() + Duration::from_secs(3600)), None);
        assert_eq!(b.stop(), None);
    }

    #[test]
    fn tripped_token_reports_cancelled() {
        let t = CancelToken::new();
        let b = Budget::new(None, Some(t.clone()));
        assert_eq!(b.stop(), None);
        t.cancel();
        assert_eq!(b.stop(), Some(StopReason::Cancelled));
    }

    #[test]
    fn cancellation_wins_over_expired_deadline() {
        let t = CancelToken::new();
        t.cancel();
        let b = Budget::new(Some(Instant::now() - Duration::from_millis(1)), Some(t));
        assert_eq!(b.stop(), Some(StopReason::Cancelled));
    }
}
