//! ComPLx: a competitive primal-dual Lagrange optimization for global
//! placement (Kim & Markov, DAC 2012) — the core placer of this
//! reproduction.
//!
//! The algorithm alternates two steps until the duality gap closes
//! (paper Sections 3–4):
//!
//! 1. **Primal step** — minimize the simplified Lagrangian
//!    `L°(x, y, λ) = Φ(x, y) + λ‖(x, y) − (x°, y°)‖₁` (Formula 10) with a
//!    pluggable interconnect model (linearized-quadratic Bound2Bound by
//!    default, log-sum-exp optional). This produces the *lower-bound*
//!    placement.
//! 2. **Dual step** — project onto the feasible set with `P_C`
//!    (look-ahead legalization) to obtain the anchors `(x°, y°)` — the
//!    *upper-bound* placement — and raise λ per Formula 12:
//!    `λ_{k+1} = min(2λ_k, λ_k + (Π_{k+1}/Π_k)·h)`, starting from
//!    `λ_1 = Φ/(100·Π)`.
//!
//! Per Section 4, iterations stop on the relative duality gap
//! `Δ_Φ = Φ(x°, y°) − Φ(x, y)`, and detailed placement runs on the last
//! *feasible* iterate. Mixed-size designs get per-macro λ scaling and
//! macro shredding inside `P_C` (Section 5); timing-driven placement
//! weighs the penalty by cell criticality (Formula 13, Section S6).
//!
//! # Quickstart
//!
//! ```
//! use complx_netlist::generator::GeneratorConfig;
//! use complx_place::{ComplxPlacer, PlacerConfig};
//!
//! let design = GeneratorConfig::small("quick", 1).generate();
//! let outcome = ComplxPlacer::new(PlacerConfig::fast())
//!     .place(&design)
//!     .expect("placement failed");
//! assert!(outcome.hpwl_legal > 0.0);
//! assert!(outcome.trace.len() >= 2);
//! ```
//!
//! Baselines for the paper's comparisons live in [`baselines`]: a SimPL
//! configuration (ComPLx restricted to SimPL's schedule, Section 5's
//! "special cases"), and FastPlace/RQL-style force-directed placers.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod baselines;
mod budget;
pub mod check;
pub mod ckpt;
mod config;
mod error;
pub mod faults;
pub mod idhash;
mod lambda;
mod metrics;
mod placer;
pub mod report;
pub mod service;
mod solves;
pub mod timing_driven;
mod trace;

pub use budget::Budget;
pub use ckpt::{load_checkpoint, CheckpointState, CkptError};
pub use config::{
    CheckpointConfig, GridSchedule, Interconnect, LambdaMode, PlacerConfig, ProjectionBackend,
    RoutabilityConfig,
};
pub use error::{PlaceError, StopReason};
pub use faults::{FaultInjection, FaultKind, FaultPlan};
pub use idhash::{config_hash, design_hash};
pub use lambda::LambdaSchedule;
pub use metrics::PlacementMetrics;
pub use placer::{ComplxPlacer, PlacementOutcome};
pub use report::{attach_extra, run_report};
pub use service::{solve, SolveArtifacts, SolveRequest};
pub use solves::{SolveRecord, SolverTotals};
pub use trace::{IterationRecord, Trace};
