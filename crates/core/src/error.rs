//! Structured errors and stop reasons for the solve pipeline.
//!
//! The placer never panics on a degenerate design and never silently
//! returns a corrupted placement: every failure mode is a [`PlaceError`]
//! variant, and every successful run reports *why* it stopped through
//! [`StopReason`]. When the run diverges past the recovery budget, the best
//! feasible iterate found so far rides along in
//! [`PlaceError::Diverged`] so callers can still salvage a placement.

use std::error::Error;
use std::fmt;

use complx_netlist::Placement;

/// Why a successful placement run stopped iterating.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[non_exhaustive]
pub enum StopReason {
    /// A convergence criterion fired (duality gap or overflow tolerance).
    Converged,
    /// The best feasible iterate stopped improving for the configured
    /// stagnation window.
    Stagnated,
    /// The iteration cap was reached.
    IterationCap,
    /// The wall-clock budget expired; the run exited gracefully through
    /// the best-iterate path.
    TimeBudget,
    /// One or more numerical faults were detected and recovered during the
    /// run; the returned placement is the best feasible iterate.
    Recovered,
    /// An external [`complx_par::CancelToken`] tripped; the run exited
    /// gracefully through the best-iterate path, like a time budget.
    Cancelled,
}

impl fmt::Display for StopReason {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            StopReason::Converged => "converged",
            StopReason::Stagnated => "stagnated",
            StopReason::IterationCap => "iteration cap",
            StopReason::TimeBudget => "time budget",
            StopReason::Recovered => "recovered",
            StopReason::Cancelled => "cancelled",
        };
        f.write_str(s)
    }
}

/// Errors produced by [`crate::ComplxPlacer`] and the CLI pipeline.
#[derive(Debug)]
#[non_exhaustive]
pub enum PlaceError {
    /// The input design cannot be placed (inconsistent geometry, more
    /// movable area than the core holds, non-finite inputs, …).
    InvalidDesign {
        /// What is wrong with the design.
        reason: String,
    },
    /// The linear solver broke down before any feasible iterate existed,
    /// so there is no placement to degrade to.
    SolverBreakdown {
        /// Global-placement iteration at which the breakdown happened
        /// (`0` = the λ = 0 bootstrap).
        iteration: usize,
        /// Human-readable description of the breakdown.
        detail: String,
    },
    /// The primal-dual loop kept producing invalid iterates after
    /// exhausting the recovery budget. The best feasible placement found
    /// before divergence is attached.
    Diverged {
        /// Iteration at which the final, unrecoverable fault occurred.
        iteration: usize,
        /// Number of recovery attempts that were executed.
        recoveries: usize,
        /// The last good (feasible) placement, if one existed.
        best: Option<Box<Placement>>,
        /// Human-readable description of the last fault.
        detail: String,
    },
    /// The wall-clock budget expired before a single feasible iterate was
    /// produced (graceful degradation needs at least one).
    TimedOut {
        /// The configured budget in seconds.
        budget_seconds: f64,
    },
    /// An I/O failure in the surrounding pipeline (trace or solution
    /// writing).
    Io(std::io::Error),
    /// An external cancel token tripped before a single feasible iterate
    /// was produced (graceful degradation needs at least one).
    Cancelled,
    /// A `--resume` checkpoint does not match the current design or
    /// configuration (or is structurally unusable), so resuming would not
    /// reproduce the original run.
    CheckpointMismatch {
        /// What failed to match or validate.
        reason: String,
    },
    /// An injected kill fault fired (fault harness only): the run was
    /// terminated mid-loop exactly as an external `SIGKILL` would at a
    /// checkpoint boundary, leaving any on-disk checkpoints behind.
    Killed {
        /// The 1-based global-placement iteration the kill struck at.
        iteration: usize,
    },
}

impl PlaceError {
    /// Short machine-readable name of the variant (stable across releases;
    /// used by the CLI's one-line error format).
    pub fn kind(&self) -> &'static str {
        match self {
            PlaceError::InvalidDesign { .. } => "invalid-design",
            PlaceError::SolverBreakdown { .. } => "solver-breakdown",
            PlaceError::Diverged { .. } => "diverged",
            PlaceError::TimedOut { .. } => "timed-out",
            PlaceError::Io(_) => "io",
            PlaceError::Cancelled => "cancelled",
            PlaceError::CheckpointMismatch { .. } => "checkpoint-mismatch",
            PlaceError::Killed { .. } => "killed",
        }
    }

    /// The process exit code the CLI maps this error to. Distinct per
    /// variant so scripts can react without parsing messages; `1` is left
    /// to usage errors.
    pub fn exit_code(&self) -> u8 {
        match self {
            PlaceError::InvalidDesign { .. } => 3,
            PlaceError::SolverBreakdown { .. } => 4,
            PlaceError::Diverged { .. } => 5,
            PlaceError::TimedOut { .. } => 6,
            PlaceError::Io(_) => 7,
            PlaceError::Cancelled => 8,
            PlaceError::CheckpointMismatch { .. } => 9,
            PlaceError::Killed { .. } => 10,
        }
    }

    /// The best feasible placement salvaged from a failed run, when the
    /// failure mode preserves one.
    pub fn best_placement(&self) -> Option<&Placement> {
        match self {
            PlaceError::Diverged { best, .. } => best.as_deref(),
            _ => None,
        }
    }
}

impl fmt::Display for PlaceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PlaceError::InvalidDesign { reason } => {
                write!(f, "invalid design: {reason}")
            }
            PlaceError::SolverBreakdown { iteration, detail } => {
                write!(f, "solver breakdown at iteration {iteration}: {detail}")
            }
            PlaceError::Diverged {
                iteration,
                recoveries,
                best,
                detail,
            } => {
                write!(
                    f,
                    "diverged at iteration {iteration} after {recoveries} recovery \
                     attempt(s): {detail}{}",
                    if best.is_some() {
                        " (best feasible placement attached)"
                    } else {
                        ""
                    }
                )
            }
            PlaceError::TimedOut { budget_seconds } => {
                write!(
                    f,
                    "timed out: {budget_seconds}s budget expired before a feasible \
                     iterate existed"
                )
            }
            PlaceError::Io(e) => write!(f, "i/o error: {e}"),
            PlaceError::Cancelled => {
                write!(f, "cancelled before a feasible iterate existed")
            }
            PlaceError::CheckpointMismatch { reason } => {
                write!(f, "checkpoint mismatch: {reason}")
            }
            PlaceError::Killed { iteration } => {
                write!(f, "killed by injected fault at iteration {iteration}")
            }
        }
    }
}

impl Error for PlaceError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            PlaceError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for PlaceError {
    fn from(e: std::io::Error) -> Self {
        PlaceError::Io(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exit_codes_are_distinct_and_nonzero() {
        let io = std::io::Error::new(std::io::ErrorKind::Other, "x");
        let errs = [
            PlaceError::InvalidDesign { reason: "r".into() },
            PlaceError::SolverBreakdown {
                iteration: 1,
                detail: "d".into(),
            },
            PlaceError::Diverged {
                iteration: 2,
                recoveries: 3,
                best: None,
                detail: "d".into(),
            },
            PlaceError::TimedOut {
                budget_seconds: 1.0,
            },
            PlaceError::Io(io),
            PlaceError::Cancelled,
            PlaceError::CheckpointMismatch { reason: "r".into() },
            PlaceError::Killed { iteration: 4 },
        ];
        let mut codes: Vec<u8> = errs.iter().map(|e| e.exit_code()).collect();
        assert!(codes.iter().all(|&c| c > 1));
        codes.sort_unstable();
        codes.dedup();
        assert_eq!(codes.len(), errs.len());
    }

    #[test]
    fn display_is_one_line_and_informative() {
        let e = PlaceError::Diverged {
            iteration: 7,
            recoveries: 3,
            best: Some(Box::new(Placement::zeros(2))),
            detail: "non-finite iterate".into(),
        };
        let msg = e.to_string();
        assert!(!msg.contains('\n'));
        assert!(msg.contains("iteration 7"));
        assert!(msg.contains("attached"));
        assert_eq!(e.kind(), "diverged");
        assert!(e.best_placement().is_some());
    }

    #[test]
    fn io_errors_chain() {
        let e = PlaceError::from(std::io::Error::new(std::io::ErrorKind::NotFound, "gone"));
        assert!(e.source().is_some());
        assert_eq!(e.kind(), "io");
    }

    #[test]
    fn stop_reasons_display() {
        for (r, s) in [
            (StopReason::Converged, "converged"),
            (StopReason::Stagnated, "stagnated"),
            (StopReason::IterationCap, "iteration cap"),
            (StopReason::TimeBudget, "time budget"),
            (StopReason::Recovered, "recovered"),
            (StopReason::Cancelled, "cancelled"),
        ] {
            assert_eq!(r.to_string(), s);
        }
    }
}
