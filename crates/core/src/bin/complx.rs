//! `complx` — command-line global placer for Bookshelf designs.
//!
//! ```text
//! complx <design.aux> [options]
//!
//! options:
//!   -o, --out <dir>        output directory for the solution bundle
//!                          (default: alongside the input, suffix `.complx`)
//!   --target-density <γ>   override the density target (0 < γ ≤ 1)
//!   --max-iterations <n>   global placement iteration cap (default 100)
//!   --finest-grid          use the finest P_C grid in all iterations
//!   --pc-dp                run detailed placement after every projection
//!   --simpl                use the SimPL special-case configuration
//!   --projection <b>       feasibility-projection backend: `geometric`
//!                          (SimPL-style look-ahead legalization, the
//!                          default) or `electro` (FFT electrostatic
//!                          density equalization)
//!   --lse [gamma_rows]     log-sum-exp interconnect model (default γ = 4)
//!   --no-detail            skip final legalization refinement
//!   --max-seconds <s>      wall-clock budget; the placer exits gracefully
//!                          with its best feasible iterate when it expires
//!   --max-recoveries <n>   divergence-recovery attempts before giving up
//!   --checkpoint <file>    periodically write a crash-safe checkpoint of
//!                          the λ-loop state (atomic tmp+rename, previous
//!                          generation kept at `<file>.prev`)
//!   --checkpoint-every <k> checkpoint cadence in iterations (default 5;
//!                          requires --checkpoint)
//!   --resume <file>        restore λ-loop state from a checkpoint and
//!                          continue; the design and configuration must
//!                          match the checkpointed run, and the resumed
//!                          run's result is byte-identical to an
//!                          uninterrupted one
//!   --fault-kill-at <k>    fault injection: simulate a crash (SIGKILL) at
//!                          the top of iteration k
//!   --threads <n>          worker threads for parallel kernels (default:
//!                          available cores, or the COMPLX_THREADS
//!                          environment variable; `--threads 1` runs the
//!                          exact sequential path). Results are
//!                          bit-identical for every thread count.
//!   --trace <file>         write the per-iteration convergence trace;
//!                          a `.json` extension selects JSON, anything
//!                          else CSV
//!   --report <file.json>   write the end-of-run report manifest
//!   --events <file.jsonl>  stream instrumentation events (one JSON
//!                          object per line) while placing
//!   --profile <file>       write a collapsed-stack ("folded") span-time
//!                          profile consumable by flamegraph tooling, and
//!                          add a per-iteration `extra.timeline` section
//!                          to the report (iteration → phase durations,
//!                          CG iterations, λ, HPWL)
//!   --profile-mem          arm the tracking allocator: charge allocation
//!                          counts/bytes and the live-byte high-water
//!                          mark to span paths, reported as
//!                          `extra.memory` and in the summary table.
//!                          Profiling observes and never perturbs: the
//!                          solution and trace are byte-identical with
//!                          the flags on or off
//!   --log-level <level>    stderr instrumentation verbosity:
//!                          off | info | debug (default off)
//!   -q, --quiet            suppress progress output
//! ```
//!
//! On failure the process prints a one-line structured error
//! (`complx: error[<kind>]: <message>`) and exits with a per-variant code:
//! `1` usage/input errors, `3` invalid design, `4` solver breakdown,
//! `5` diverged, `6` timed out, `7` i/o, `8` cancelled,
//! `9` checkpoint mismatch, `10` killed by injected fault.

use std::path::PathBuf;
use std::process::ExitCode;

use complx_netlist::bookshelf;
use complx_obs::{JsonlSink, Level, Sink, StderrLogger, TimelineSink};
use complx_place::{
    load_checkpoint, CheckpointConfig, CkptError, ComplxPlacer, FaultKind, FaultPlan, Interconnect,
    PlaceError, PlacerConfig, ProjectionBackend,
};

/// The tracking allocator behind `--profile-mem`. Until that flag arms
/// it, every allocation costs one relaxed atomic load over the system
/// allocator — and placement results are bit-identical either way.
#[global_allocator]
static ALLOC: complx_obs::prof::CountingAlloc = complx_obs::prof::CountingAlloc;

struct Options {
    aux: PathBuf,
    out: Option<PathBuf>,
    target_density: Option<f64>,
    max_iterations: Option<usize>,
    finest_grid: bool,
    pc_dp: bool,
    simpl: bool,
    projection: Option<ProjectionBackend>,
    lse: Option<f64>,
    no_detail: bool,
    max_seconds: Option<f64>,
    max_recoveries: Option<usize>,
    checkpoint: Option<PathBuf>,
    checkpoint_every: Option<usize>,
    resume: Option<PathBuf>,
    fault_kill_at: Option<usize>,
    threads: Option<usize>,
    trace: Option<PathBuf>,
    report: Option<PathBuf>,
    events: Option<PathBuf>,
    profile: Option<PathBuf>,
    profile_mem: bool,
    log_level: Level,
    quiet: bool,
}

fn usage() -> &'static str {
    "usage: complx <design.aux> [-o DIR] [--target-density G] [--max-iterations N]\n\
     [--finest-grid] [--pc-dp] [--simpl] [--projection geometric|electro]\n\
     [--lse [GAMMA_ROWS]] [--no-detail]\n\
     [--max-seconds S] [--max-recoveries N] [--checkpoint FILE [--checkpoint-every K]]\n\
     [--resume FILE] [--fault-kill-at K] [--threads N] [--trace FILE[.json|.csv]]\n\
     [--report FILE.json] [--events FILE.jsonl] [--profile FILE] [--profile-mem]\n\
     [--log-level off|info|debug] [-q]"
}

fn parse_args() -> Result<Options, String> {
    let mut args = std::env::args().skip(1).peekable();
    let mut opts = Options {
        aux: PathBuf::new(),
        out: None,
        target_density: None,
        max_iterations: None,
        finest_grid: false,
        pc_dp: false,
        simpl: false,
        projection: None,
        lse: None,
        no_detail: false,
        max_seconds: None,
        max_recoveries: None,
        checkpoint: None,
        checkpoint_every: None,
        resume: None,
        fault_kill_at: None,
        threads: None,
        trace: None,
        report: None,
        events: None,
        profile: None,
        profile_mem: false,
        log_level: Level::Off,
        quiet: false,
    };
    let mut positional = Vec::new();
    while let Some(a) = args.next() {
        match a.as_str() {
            "-o" | "--out" => {
                opts.out = Some(PathBuf::from(args.next().ok_or("missing value for --out")?))
            }
            "--target-density" => {
                let v: f64 = args
                    .next()
                    .ok_or("missing value for --target-density")?
                    .parse()
                    .map_err(|_| "bad --target-density value")?;
                opts.target_density = Some(v);
            }
            "--max-iterations" => {
                let v: usize = args
                    .next()
                    .ok_or("missing value for --max-iterations")?
                    .parse()
                    .map_err(|_| "bad --max-iterations value")?;
                opts.max_iterations = Some(v);
            }
            "--finest-grid" => opts.finest_grid = true,
            "--pc-dp" => opts.pc_dp = true,
            "--simpl" => opts.simpl = true,
            "--projection" => {
                let v = args.next().ok_or("missing value for --projection")?;
                opts.projection = Some(v.parse()?);
            }
            "--lse" => {
                // Optional numeric argument: anything that parses as a
                // number is claimed (and must be a valid smoothing radius);
                // a following flag like `--simpl` falls through to the
                // default. `--lse -3` must not silently produce a
                // nonsensical negative γ.
                let gamma = match args.peek().and_then(|v| v.parse::<f64>().ok()) {
                    Some(g) => {
                        args.next();
                        if !g.is_finite() || g <= 0.0 {
                            return Err(format!(
                                "--lse smoothing radius must be a finite positive number of row heights (got {g})"
                            ));
                        }
                        g
                    }
                    None => 4.0,
                };
                opts.lse = Some(gamma);
            }
            "--no-detail" => opts.no_detail = true,
            "--max-seconds" => {
                let v: f64 = args
                    .next()
                    .ok_or("missing value for --max-seconds")?
                    .parse()
                    .map_err(|_| "bad --max-seconds value")?;
                if !v.is_finite() || v <= 0.0 {
                    return Err("--max-seconds must be a positive number".into());
                }
                opts.max_seconds = Some(v);
            }
            "--max-recoveries" => {
                let v: usize = args
                    .next()
                    .ok_or("missing value for --max-recoveries")?
                    .parse()
                    .map_err(|_| "bad --max-recoveries value")?;
                opts.max_recoveries = Some(v);
            }
            "--checkpoint" => {
                opts.checkpoint = Some(PathBuf::from(
                    args.next().ok_or("missing value for --checkpoint")?,
                ))
            }
            "--checkpoint-every" => {
                let v: usize = args
                    .next()
                    .ok_or("missing value for --checkpoint-every")?
                    .parse()
                    .map_err(|_| "bad --checkpoint-every value")?;
                if v == 0 {
                    return Err("--checkpoint-every must be at least 1".into());
                }
                opts.checkpoint_every = Some(v);
            }
            "--resume" => {
                opts.resume = Some(PathBuf::from(
                    args.next().ok_or("missing value for --resume")?,
                ))
            }
            "--fault-kill-at" => {
                let v: usize = args
                    .next()
                    .ok_or("missing value for --fault-kill-at")?
                    .parse()
                    .map_err(|_| "bad --fault-kill-at value")?;
                if v == 0 {
                    return Err(
                        "--fault-kill-at must be at least 1 (iterations are 1-based)".into(),
                    );
                }
                opts.fault_kill_at = Some(v);
            }
            "--threads" => {
                let v: usize = args
                    .next()
                    .ok_or("missing value for --threads")?
                    .parse()
                    .map_err(|_| "bad --threads value")?;
                if v == 0 {
                    return Err("--threads must be at least 1".into());
                }
                opts.threads = Some(v);
            }
            "--trace" => {
                opts.trace = Some(PathBuf::from(
                    args.next().ok_or("missing value for --trace")?,
                ))
            }
            "--report" => {
                opts.report = Some(PathBuf::from(
                    args.next().ok_or("missing value for --report")?,
                ))
            }
            "--events" => {
                opts.events = Some(PathBuf::from(
                    args.next().ok_or("missing value for --events")?,
                ))
            }
            "--profile" => {
                opts.profile = Some(PathBuf::from(
                    args.next().ok_or("missing value for --profile")?,
                ))
            }
            "--profile-mem" => opts.profile_mem = true,
            "--log-level" => {
                opts.log_level = args
                    .next()
                    .ok_or("missing value for --log-level")?
                    .parse()?;
            }
            "-q" | "--quiet" => opts.quiet = true,
            "-h" | "--help" => return Err(usage().to_string()),
            other if !other.starts_with('-') => positional.push(PathBuf::from(other)),
            other => return Err(format!("unknown option `{other}`\n{}", usage())),
        }
    }
    if opts.checkpoint_every.is_some() && opts.checkpoint.is_none() {
        return Err("--checkpoint-every requires --checkpoint".into());
    }
    match positional.len() {
        1 => {
            opts.aux = positional.into_iter().next().expect("checked length");
            Ok(opts)
        }
        0 => Err(format!("missing input .aux file\n{}", usage())),
        _ => Err(format!("expected exactly one input file\n{}", usage())),
    }
}

fn main() -> ExitCode {
    let opts = match parse_args() {
        Ok(o) => o,
        Err(msg) => {
            eprintln!("{msg}");
            return ExitCode::FAILURE;
        }
    };

    if let Some(n) = opts.threads {
        complx_par::set_threads(n);
    }

    // Arm memory profiling before the design loads so parse/bootstrap
    // allocations are part of the accounting window.
    if opts.profile_mem {
        complx_obs::prof::set_mem_profiling(true);
    }

    let bundle = match bookshelf::read_aux(&opts.aux) {
        Ok(b) => b,
        Err(e) => {
            eprintln!("complx: cannot read {}: {e}", opts.aux.display());
            return ExitCode::FAILURE;
        }
    };
    let mut design = bundle.design;
    if let Some(gamma) = opts.target_density {
        // Rebuild with the overridden density (Design is immutable).
        let mut b =
            complx_netlist::DesignBuilder::new(design.name(), design.core(), design.row_height());
        if let Err(e) = b.set_target_density(gamma) {
            eprintln!("complx: {e}");
            return ExitCode::FAILURE;
        }
        for id in design.cell_ids() {
            let c = design.cell(id);
            let r = if c.is_movable() {
                b.add_cell(c.name(), c.width(), c.height(), c.kind())
                    .map(|_| ())
            } else {
                b.add_fixed_cell(
                    c.name(),
                    c.width(),
                    c.height(),
                    c.kind(),
                    design.fixed_positions().position(id),
                )
                .map(|_| ())
            };
            if let Err(e) = r {
                eprintln!("complx: {e}");
                return ExitCode::FAILURE;
            }
        }
        for nid in design.net_ids() {
            let n = design.net(nid);
            if let Err(e) = b.add_net(
                n.name(),
                n.weight(),
                design
                    .net_pins(nid)
                    .iter()
                    .map(|p| (p.cell, p.dx, p.dy))
                    .collect(),
            ) {
                eprintln!("complx: {e}");
                return ExitCode::FAILURE;
            }
        }
        design = match b.build() {
            Ok(d) => d,
            Err(e) => {
                eprintln!("complx: {e}");
                return ExitCode::FAILURE;
            }
        };
    }

    let mut cfg = if opts.simpl {
        PlacerConfig::simpl()
    } else if opts.finest_grid {
        PlacerConfig::finest_grid()
    } else if opts.pc_dp {
        PlacerConfig::projection_with_detail()
    } else {
        PlacerConfig::default()
    };
    if let Some(n) = opts.max_iterations {
        cfg.max_iterations = n;
    }
    if let Some(backend) = opts.projection {
        cfg.projection = backend;
    }
    if let Some(gamma_rows) = opts.lse {
        cfg.interconnect = Interconnect::LogSumExp { gamma_rows };
    }
    if opts.no_detail {
        cfg.final_detail = false;
    }
    cfg.time_budget = opts.max_seconds;
    if let Some(n) = opts.max_recoveries {
        cfg.max_recoveries = n;
    }
    if let Some(path) = &opts.checkpoint {
        cfg.checkpoint = Some(CheckpointConfig::new(
            path,
            opts.checkpoint_every.unwrap_or(5),
        ));
    }
    if let Some(k) = opts.fault_kill_at {
        cfg.faults = Some(FaultPlan::new().inject(k, FaultKind::Kill));
    }

    if !opts.quiet {
        eprintln!(
            "complx: placing `{}` ({} cells, {} nets, {} pins)",
            design.name(),
            design.num_cells(),
            design.num_nets(),
            design.num_pins()
        );
        for issue in complx_netlist::validate::validate(&design).iter().take(10) {
            eprintln!("complx: warning: {issue}");
        }
    }
    let mut sinks: Vec<Box<dyn Sink>> = Vec::new();
    if opts.log_level > Level::Off {
        sinks.push(Box::new(StderrLogger::new(opts.log_level)));
    }
    if let Some(events_path) = &opts.events {
        match JsonlSink::create(events_path) {
            Ok(s) => sinks.push(Box::new(s)),
            Err(e) => {
                let e = PlaceError::from(e);
                eprintln!(
                    "complx: error[{}]: cannot open events stream {}: {e}",
                    e.kind(),
                    events_path.display()
                );
                return ExitCode::from(e.exit_code());
            }
        }
    }
    let timeline = opts.profile.as_ref().map(|_| {
        let (sink, handle) = TimelineSink::new();
        sinks.push(Box::new(sink) as Box<dyn Sink>);
        handle
    });
    let instrument =
        !sinks.is_empty() || opts.report.is_some() || opts.profile.is_some() || opts.profile_mem;
    if instrument {
        complx_obs::install(sinks);
    }

    let started = std::time::Instant::now();
    let placer = ComplxPlacer::new(cfg.clone());
    let placed = match &opts.resume {
        Some(resume_path) => match load_checkpoint(resume_path) {
            Ok((state, used_prev)) => {
                if !opts.quiet {
                    if used_prev {
                        eprintln!(
                            "complx: warning: {} unreadable or corrupt; resumed from previous generation {}.prev",
                            resume_path.display(),
                            resume_path.display()
                        );
                    }
                    eprintln!(
                        "complx: resuming from {} (iteration {}, generation {})",
                        resume_path.display(),
                        state.iteration,
                        state.generation
                    );
                }
                placer.resume(&design, state)
            }
            Err(CkptError::Io(e)) => Err(PlaceError::from(e)),
            Err(e) => Err(PlaceError::CheckpointMismatch {
                reason: format!("{}: {e}", resume_path.display()),
            }),
        },
        None => placer.place(&design),
    };
    let outcome = match placed {
        Ok(o) => o,
        Err(e) => {
            // Flush the event stream so a failed run still leaves a record.
            if instrument {
                drop(complx_obs::harvest());
            }
            eprintln!("complx: error[{}]: {e}", e.kind());
            return ExitCode::from(e.exit_code());
        }
    };
    let total_seconds = started.elapsed().as_secs_f64();
    let harvest = if instrument {
        complx_obs::harvest()
    } else {
        None
    };
    if !opts.quiet {
        eprintln!(
            "complx: {} iterations (stop: {}{}), λ = {:.4}, global {:.1}s + detail {:.1}s",
            outcome.iterations,
            outcome.stop_reason,
            if outcome.recoveries > 0 {
                format!(", {} recoveries", outcome.recoveries)
            } else {
                String::new()
            },
            outcome.final_lambda,
            outcome.global_seconds,
            outcome.detail_seconds
        );
    }
    println!("{}", outcome.metrics);
    let violations = complx_place::check::verify_placement(
        &design,
        &outcome.legal,
        &complx_place::check::AcceptanceCriteria::default(),
    );
    if violations.is_empty() {
        if !opts.quiet {
            eprintln!("complx: placement accepted (legal, constraints satisfied)");
        }
    } else {
        for v in &violations {
            eprintln!("complx: violation: {v}");
        }
    }

    if let Some(trace_path) = &opts.trace {
        let serialized = if trace_path.extension().is_some_and(|x| x == "json") {
            outcome.trace.to_json()
        } else {
            outcome.trace.to_csv()
        };
        if let Err(e) = complx_obs::write_atomic(trace_path, serialized.as_bytes()) {
            let e = PlaceError::from(e);
            eprintln!(
                "complx: error[{}]: cannot write trace {}: {e}",
                e.kind(),
                trace_path.display()
            );
            return ExitCode::from(e.exit_code());
        }
    }

    if let Some(profile_path) = &opts.profile {
        let folded = harvest
            .as_ref()
            .map(complx_obs::prof::collapsed_stacks)
            .unwrap_or_default();
        if let Err(e) = complx_obs::write_atomic(profile_path, folded.as_bytes()) {
            let e = PlaceError::from(e);
            eprintln!(
                "complx: error[{}]: cannot write profile {}: {e}",
                e.kind(),
                profile_path.display()
            );
            return ExitCode::from(e.exit_code());
        }
        if !opts.quiet {
            eprintln!(
                "complx: wrote collapsed-stack profile {}",
                profile_path.display()
            );
        }
    }

    if instrument {
        let mut report =
            complx_place::run_report(&design, Some(&cfg), &outcome, harvest, total_seconds);
        if let Some(handle) = &timeline {
            complx_place::attach_extra(&mut report, "timeline", handle.to_json());
        }
        if !opts.quiet {
            eprint!("{}", report.summary_table());
        }
        if let Some(report_path) = &opts.report {
            if let Err(e) =
                complx_obs::write_atomic(report_path, report.to_json_string().as_bytes())
            {
                let e = PlaceError::from(e);
                eprintln!(
                    "complx: error[{}]: cannot write report {}: {e}",
                    e.kind(),
                    report_path.display()
                );
                return ExitCode::from(e.exit_code());
            }
        }
    }

    let out_dir = opts.out.unwrap_or_else(|| {
        let mut d = opts.aux.clone();
        d.set_extension("complx");
        d
    });
    match bookshelf::write_bundle(&design, &outcome.legal, &out_dir) {
        Ok(aux) => {
            if !opts.quiet {
                eprintln!("complx: wrote solution {}", aux.display());
            }
            ExitCode::SUCCESS
        }
        Err(e) => {
            let kind = PlaceError::from(std::io::Error::other(e.to_string())).kind();
            eprintln!("complx: error[{kind}]: cannot write solution: {e}");
            ExitCode::from(7)
        }
    }
}
