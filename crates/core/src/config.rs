//! Placer configuration.

use complx_wirelength::NetModel;

/// Which interconnect model `Φ` the placer minimizes (paper §S1: "any one
/// of these approximations can be used in ComPLx").
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Interconnect {
    /// Linearized quadratic with the given net decomposition (the SimPL /
    /// ComPLx default is Bound2Bound).
    Quadratic(NetModel),
    /// Log-sum-exp smoothing minimized by nonlinear Conjugate Gradient.
    LogSumExp {
        /// Smoothing parameter as a multiple of the row height.
        gamma_rows: f64,
    },
    /// β-regularized linear wirelength (§S1, Alpert et al., reference \[4\]) minimized
    /// by nonlinear Conjugate Gradient.
    BetaRegularized {
        /// β as a multiple of the squared row height.
        beta_rows2: f64,
    },
    /// p,β-regularization of the max terms (§S1, Kennings & Markov,
    /// reference \[21\]) minimized by nonlinear Conjugate Gradient.
    PNorm {
        /// The exponent `p ≥ 2`; larger is closer to true HPWL.
        p: f64,
    },
}

impl Default for Interconnect {
    fn default() -> Self {
        Interconnect::Quadratic(NetModel::Bound2Bound)
    }
}

/// How λ evolves between iterations.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum LambdaMode {
    /// ComPLx's Formula 12: `λ_{k+1} = min(2λ_k, λ_k + (Π_{k+1}/Π_k)·h)`.
    Complx {
        /// The scaling constant `h`, as a multiple of `λ_1`.
        h_factor: f64,
    },
    /// SimPL's fixed arithmetic pseudonet-weight growth
    /// (`λ_{k+1} = λ_k + step·λ_1`) — the special case of Section 5.
    Arithmetic {
        /// Step size as a multiple of `λ_1`.
        step: f64,
    },
    /// Plain geometric growth (for ablation).
    Geometric {
        /// Per-iteration multiplier.
        ratio: f64,
    },
}

impl Default for LambdaMode {
    fn default() -> Self {
        // h must be large enough that the 2λ cap of Formula 12 binds during
        // the early iterations ("a maximum increase in λ can be imposed,
        // say 100% per iteration") — λ then doubles until it engages, after
        // which growth is additive and modulated by the Π ratio. h = 20·λ₁
        // was calibrated on the synthetic suite (see DESIGN.md §6).
        LambdaMode::Complx { h_factor: 20.0 }
    }
}

/// How the `P_C` grid resolution evolves over iterations.
///
/// ComPLx "gradually increases the accuracy of `P_C` as the grid-cell size
/// decreases" and Section 6 shows coarse grids lose nothing; the *finest
/// grid* configuration of Table 1 is the `Fixed` variant at the finest
/// resolution.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum GridSchedule {
    /// Start coarse and refine geometrically to the adaptive resolution
    /// (the default configuration of Table 1).
    CoarseToFine {
        /// Initial resolution as a fraction of the adaptive resolution.
        start_fraction: f64,
        /// Per-iteration growth of the bin count.
        growth: f64,
    },
    /// Use one fixed fraction of the adaptive resolution for all
    /// iterations (`1.0` = "Finest Grid" of Table 1).
    Fixed {
        /// Resolution as a fraction of the adaptive resolution.
        fraction: f64,
    },
}

impl Default for GridSchedule {
    fn default() -> Self {
        GridSchedule::CoarseToFine {
            start_fraction: 0.25,
            growth: 1.2,
        }
    }
}

impl GridSchedule {
    /// The square-grid resolution for iteration `k` given the adaptive
    /// (finest useful) resolution.
    pub fn bins_at(&self, k: usize, adaptive: usize) -> usize {
        let bins = match *self {
            GridSchedule::CoarseToFine {
                start_fraction,
                growth,
            } => {
                let start = (adaptive as f64 * start_fraction).max(2.0);
                (start * growth.powi(k as i32)).min(adaptive as f64)
            }
            GridSchedule::Fixed { fraction } => (adaptive as f64 * fraction).max(2.0),
        };
        (bins.round() as usize).clamp(2, 2048)
    }
}

/// Which feasibility-projection backend implements `P_C`.
///
/// The paper treats `P_C` as a black box (Section 4); the repo ships two
/// interchangeable implementations behind `complx_spread::Projection`:
/// the geometric SimPL-style engine and the FFT electrostatic engine
/// (FFTPL-style Poisson density equalization; ROADMAP item 2).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ProjectionBackend {
    /// Geometric look-ahead legalization (clustering + bisection
    /// spreading) — the paper's reference implementation.
    #[default]
    Geometric,
    /// Electrostatic density equalization: charge density on a
    /// power-of-two grid, spectral Poisson solve, field-driven drift.
    Electro,
}

impl std::fmt::Display for ProjectionBackend {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            ProjectionBackend::Geometric => "geometric",
            ProjectionBackend::Electro => "electro",
        })
    }
}

impl std::str::FromStr for ProjectionBackend {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "geometric" => Ok(ProjectionBackend::Geometric),
            "electro" => Ok(ProjectionBackend::Electro),
            other => Err(format!(
                "unknown projection backend '{other}' (expected geometric|electro)"
            )),
        }
    }
}

/// Routability-driven extension (SimPLR-lite, paper Section 5): estimate
/// congestion with a RUDY map each iteration and inflate cells in
/// congested bins before the feasibility projection.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RoutabilityConfig {
    /// Routing supply per unit area (demand/supply > 1 ⇒ congested).
    pub supply: f64,
    /// Inflation aggressiveness: width factor = 1 + alpha·(congestion − 1).
    pub alpha: f64,
    /// Inflation cap.
    pub max_inflation: f64,
    /// Congestion grid resolution (square); 0 selects the projection grid.
    pub grid_bins: usize,
}

impl Default for RoutabilityConfig {
    fn default() -> Self {
        Self {
            supply: 1.0,
            alpha: 0.5,
            max_inflation: 2.0,
            grid_bins: 0,
        }
    }
}

/// Periodic crash-safe checkpointing of the λ-loop state.
///
/// Every `every` iterations the placer serializes its complete loop state
/// (iterates, λ schedule, recovery state, trace) to `path` with an atomic
/// tmp-file + rename protocol, rotating the previous file to
/// `<path>.prev`. A run killed between checkpoints can then be resumed
/// with [`crate::ComplxPlacer::resume`] and produces a final placement
/// byte-identical to the uninterrupted run. Checkpoint writes are
/// best-effort: an I/O failure is counted and logged but never fails the
/// run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CheckpointConfig {
    /// Destination file; the previous generation rotates to `<path>.prev`.
    pub path: std::path::PathBuf,
    /// Checkpoint every `every` global-placement iterations (≥ 1).
    pub every: usize,
}

impl CheckpointConfig {
    /// Checkpoints to `path` every `every` iterations.
    ///
    /// # Panics
    ///
    /// Panics if `every` is zero.
    pub fn new(path: impl Into<std::path::PathBuf>, every: usize) -> Self {
        assert!(every >= 1, "checkpoint interval must be at least 1");
        Self {
            path: path.into(),
            every,
        }
    }
}

/// Full placer configuration. Start from [`PlacerConfig::default`] (the
/// paper's "Default Config."), [`PlacerConfig::finest_grid`], or
/// [`PlacerConfig::fast`] for tests.
#[derive(Debug, Clone, PartialEq)]
pub struct PlacerConfig {
    /// Interconnect model for `Φ`.
    pub interconnect: Interconnect,
    /// Maximum global placement iterations.
    pub max_iterations: usize,
    /// Stop when the relative duality gap `Δ_Φ/Φ(x°,y°)` falls below this.
    pub gap_tolerance: f64,
    /// Stop when the overflow ratio falls below this.
    pub overflow_tolerance: f64,
    /// λ scheduling mode.
    pub lambda_mode: LambdaMode,
    /// The divisor in `λ_1 = Φ/(divisor·Π)`; the paper uses 100.
    pub lambda_init_divisor: f64,
    /// Interpret Formula 12's Π ratio as `Π_k/Π_{k+1}` (accelerate while Π
    /// falls) instead of `Π_{k+1}/Π_k`.
    pub lambda_inverse_ratio: bool,
    /// Which `P_C` implementation to call each iteration.
    pub projection: ProjectionBackend,
    /// Grid-resolution schedule for `P_C`.
    pub grid: GridSchedule,
    /// Adaptive-resolution target (movable items per bin at the finest
    /// grid).
    pub cells_per_bin: f64,
    /// Scale λ per macro by `area(macro)/mean std-cell area` (Section 5).
    pub per_macro_lambda: bool,
    /// Shred macros inside `P_C` (Section 5).
    pub shred_macros: bool,
    /// Run `P_C` result through the detailed placer *every iteration*
    /// (the expensive `P_C += FastPlace-DP` configuration of Table 1).
    pub detail_each_iteration: bool,
    /// Run legalization + detailed placement after global placement.
    pub final_detail: bool,
    /// CG relative tolerance for the quadratic solves.
    pub cg_tolerance: f64,
    /// CG iteration cap per axis solve (`0` = automatic). Warm starts make
    /// modest caps nearly free in quality while keeping per-iteration cost
    /// linear — the approximate solves the paper's convergence theory
    /// allows ("it is sufficient for P_C to find a solution that is
    /// reasonably close", §4; the same holds for the primal step).
    pub cg_max_iterations: usize,
    /// Stop after this many iterations without an improvement of the best
    /// feasible iterate (Section 4 reads the result off a feasible iterate,
    /// so further iterations cannot help).
    pub stagnation_window: usize,
    /// Routability-driven cell inflation (SimPLR-lite); `None` disables it.
    pub routability: Option<RoutabilityConfig>,
    /// How many divergence recoveries (roll back to the best feasible
    /// iterate, halve λ, tighten the CG tolerance, retry) the placer may
    /// attempt before giving up with [`crate::PlaceError::Diverged`].
    pub max_recoveries: usize,
    /// Wall-clock budget in seconds for the whole run; when it expires the
    /// placer exits gracefully through the best-iterate path with
    /// [`crate::StopReason::TimeBudget`]. `None` = unlimited.
    pub time_budget: Option<f64>,
    /// Fault-injection plan exercising the recovery machinery (testing
    /// only); `None` injects nothing.
    pub faults: Option<crate::faults::FaultPlan>,
    /// Periodic crash-safe checkpointing; `None` disables it. Excluded
    /// (like `time_budget` and `faults`) from the config hash a resume
    /// validates against, so a killed run and its resume match.
    pub checkpoint: Option<CheckpointConfig>,
}

impl Default for PlacerConfig {
    fn default() -> Self {
        Self {
            interconnect: Interconnect::default(),
            max_iterations: 100,
            gap_tolerance: 0.1,
            overflow_tolerance: 0.05,
            lambda_mode: LambdaMode::default(),
            lambda_init_divisor: 100.0,
            // "λ increases proportionally to Π changes": calibration found
            // the accelerate-while-Π-falls reading (Π_k/Π_{k+1}) gives
            // better quality on the synthetic suite; see DESIGN.md §6.
            lambda_inverse_ratio: true,
            projection: ProjectionBackend::default(),
            grid: GridSchedule::default(),
            cells_per_bin: 3.0,
            per_macro_lambda: true,
            shred_macros: true,
            detail_each_iteration: false,
            final_detail: true,
            cg_tolerance: 1e-5,
            cg_max_iterations: 50,
            stagnation_window: 12,
            routability: None,
            max_recoveries: 3,
            time_budget: None,
            faults: None,
            checkpoint: None,
        }
    }
}

impl PlacerConfig {
    /// The "Finest Grid" configuration of Table 1: the finest grid in all
    /// iterations.
    pub fn finest_grid() -> Self {
        Self {
            grid: GridSchedule::Fixed { fraction: 1.0 },
            ..Self::default()
        }
    }

    /// The "`P_C` += FastPlace-DP" configuration of Table 1: post-process
    /// every projection with the detailed placer.
    pub fn projection_with_detail() -> Self {
        Self {
            detail_each_iteration: true,
            ..Self::default()
        }
    }

    /// A cheap configuration for unit tests: fewer iterations, looser
    /// tolerances.
    pub fn fast() -> Self {
        Self {
            max_iterations: 60,
            gap_tolerance: 0.1,
            overflow_tolerance: 0.08,
            ..Self::default()
        }
    }

    /// The electrostatic-projection configuration: identical to the
    /// default except `P_C` runs the FFT Poisson backend.
    pub fn electro() -> Self {
        Self {
            projection: ProjectionBackend::Electro,
            ..Self::default()
        }
    }

    /// The SimPL special case (Section 5): arithmetic pseudonet-weight
    /// growth and a coarser convergence test.
    pub fn simpl() -> Self {
        Self {
            lambda_mode: LambdaMode::Arithmetic { step: 50.0 },
            lambda_inverse_ratio: false,
            gap_tolerance: 0.1,
            overflow_tolerance: 0.05,
            ..Self::default()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn coarse_to_fine_is_monotone_and_capped() {
        let g = GridSchedule::default();
        let adaptive = 64;
        let mut prev = 0;
        for k in 0..40 {
            let b = g.bins_at(k, adaptive);
            assert!(b >= prev);
            assert!(b <= adaptive);
            prev = b;
        }
        assert_eq!(g.bins_at(39, adaptive), adaptive);
    }

    #[test]
    fn fixed_grid_is_constant() {
        let g = GridSchedule::Fixed { fraction: 0.5 };
        assert_eq!(g.bins_at(0, 64), g.bins_at(30, 64));
        assert_eq!(g.bins_at(0, 64), 32);
    }

    #[test]
    fn presets_differ_in_the_right_ways() {
        let d = PlacerConfig::default();
        assert!(!d.detail_each_iteration);
        assert!(PlacerConfig::projection_with_detail().detail_each_iteration);
        assert_eq!(
            PlacerConfig::finest_grid().grid,
            GridSchedule::Fixed { fraction: 1.0 }
        );
        assert!(matches!(
            PlacerConfig::simpl().lambda_mode,
            LambdaMode::Arithmetic { .. }
        ));
    }
}
