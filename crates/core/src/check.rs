//! One-call acceptance checking for placement results.
//!
//! Downstream flows need a single verdict: is this placement legal, does it
//! satisfy every constraint, and is its density acceptable? This module
//! aggregates the checks scattered across the crates ([`complx_legalize`]'s
//! legality report, [`complx_spread`]'s constraint predicates, the density
//! metrics) into one structured report.

use complx_legalize::legality_report;
use complx_netlist::{Design, Placement};
use complx_spread::regions::{alignments_satisfied, regions_satisfied};

/// One acceptance violation.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum Violation {
    /// Movable cells overlap each other or fixed obstacles.
    Overlap {
        /// Total overlapping area.
        area: f64,
    },
    /// Standard cells not aligned to row boundaries.
    OffRow {
        /// Number of misaligned cells.
        cells: usize,
    },
    /// Movable cells extending outside the core.
    OutOfCore {
        /// Number of offending cells.
        cells: usize,
    },
    /// A hard region constraint is not satisfied.
    RegionViolated,
    /// An alignment constraint is not satisfied.
    AlignmentViolated,
    /// Density overflow beyond the allowed percentage.
    Overflow {
        /// Measured overflow percent.
        percent: f64,
        /// The configured limit.
        limit: f64,
    },
}

impl std::fmt::Display for Violation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Violation::Overlap { area } => write!(f, "cells overlap ({area:.1} area units)"),
            Violation::OffRow { cells } => write!(f, "{cells} cells off row boundaries"),
            Violation::OutOfCore { cells } => write!(f, "{cells} cells outside the core"),
            Violation::RegionViolated => write!(f, "a region constraint is violated"),
            Violation::AlignmentViolated => write!(f, "an alignment constraint is violated"),
            Violation::Overflow { percent, limit } => {
                write!(
                    f,
                    "density overflow {percent:.2}% exceeds limit {limit:.2}%"
                )
            }
        }
    }
}

/// Acceptance thresholds.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AcceptanceCriteria {
    /// Maximum tolerated overlap area (area units).
    pub overlap_tolerance: f64,
    /// Maximum tolerated density-overflow percentage.
    pub overflow_percent_limit: f64,
    /// Alignment tolerance (length units).
    pub alignment_tolerance: f64,
    /// Require standard cells on row boundaries.
    pub require_row_alignment: bool,
}

impl Default for AcceptanceCriteria {
    fn default() -> Self {
        Self {
            overlap_tolerance: 1e-6,
            overflow_percent_limit: 15.0,
            alignment_tolerance: 1e-6,
            require_row_alignment: true,
        }
    }
}

/// Checks a placement against the design's constraints and the criteria;
/// an empty vector means the placement is accepted.
pub fn verify_placement(
    design: &Design,
    placement: &Placement,
    criteria: &AcceptanceCriteria,
) -> Vec<Violation> {
    let mut violations = Vec::new();

    let report = legality_report(design, placement);
    if report.overlap_area > criteria.overlap_tolerance {
        violations.push(Violation::Overlap {
            area: report.overlap_area,
        });
    }
    if criteria.require_row_alignment && report.off_row_cells > 0 {
        violations.push(Violation::OffRow {
            cells: report.off_row_cells,
        });
    }
    if report.out_of_core > 0 {
        violations.push(Violation::OutOfCore {
            cells: report.out_of_core,
        });
    }
    if !regions_satisfied(design, placement) {
        violations.push(Violation::RegionViolated);
    }
    if !alignments_satisfied(design, placement, criteria.alignment_tolerance) {
        violations.push(Violation::AlignmentViolated);
    }
    let percent = complx_netlist::density::overflow_penalty_percent(
        design,
        placement,
        crate::metrics::PlacementMetrics::METRIC_BINS,
    );
    if percent > criteria.overflow_percent_limit {
        violations.push(Violation::Overflow {
            percent,
            limit: criteria.overflow_percent_limit,
        });
    }
    violations
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{ComplxPlacer, PlacerConfig};
    use complx_netlist::generator::GeneratorConfig;

    #[test]
    fn placed_design_is_accepted() {
        let d = GeneratorConfig::small("acc", 1).generate();
        let out = ComplxPlacer::new(PlacerConfig::fast()).place(&d).unwrap();
        let violations = verify_placement(&d, &out.legal, &AcceptanceCriteria::default());
        assert!(violations.is_empty(), "{violations:?}");
    }

    #[test]
    fn stacked_start_is_rejected() {
        let d = GeneratorConfig::small("rej", 2).generate();
        let p = d.initial_placement();
        let violations = verify_placement(&d, &p, &AcceptanceCriteria::default());
        assert!(violations
            .iter()
            .any(|v| matches!(v, Violation::Overlap { .. })));
        assert!(violations
            .iter()
            .any(|v| matches!(v, Violation::Overflow { .. })));
        // Messages are human-readable.
        assert!(violations[0].to_string().len() > 5);
    }

    #[test]
    fn global_upper_bound_rejected_only_for_rows() {
        // The upper-bound (pseudo-legal) iterate passes density but not row
        // alignment; relaxing that criterion accepts it.
        let d = GeneratorConfig::small("ub", 3).generate();
        let mut cfg = PlacerConfig::fast();
        cfg.final_detail = false;
        let out = ComplxPlacer::new(cfg).place(&d).unwrap();
        let strict = verify_placement(&d, &out.upper, &AcceptanceCriteria::default());
        assert!(!strict.is_empty());
        let relaxed = AcceptanceCriteria {
            require_row_alignment: false,
            overlap_tolerance: f64::INFINITY,
            ..AcceptanceCriteria::default()
        };
        let loose = verify_placement(&d, &out.upper, &relaxed);
        assert!(
            loose.iter().all(|v| !matches!(v, Violation::OffRow { .. })),
            "{loose:?}"
        );
    }
}
