//! Final placement quality metrics.

use complx_netlist::{density, hpwl, Design, Placement};

/// Quality summary of a finished placement, computed on the contest-style
/// grid the ISPD-2006 metric uses.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PlacementMetrics {
    /// Plain HPWL (Formula 1 with unit weights).
    pub hpwl: f64,
    /// Weighted HPWL (Formula 1).
    pub weighted_hpwl: f64,
    /// Density-overflow penalty in percent (Table 2 parentheses).
    pub overflow_percent: f64,
    /// Scaled HPWL = HPWL × (1 + penalty/100) — the ISPD-2006 metric.
    pub scaled_hpwl: f64,
}

impl PlacementMetrics {
    /// Number of bins per side used for the overflow measurement.
    pub const METRIC_BINS: usize = 32;

    /// Measures a placement.
    pub fn measure(design: &Design, placement: &Placement) -> Self {
        let hp = hpwl::hpwl(design, placement);
        let penalty = density::overflow_penalty_percent(design, placement, Self::METRIC_BINS);
        Self {
            hpwl: hp,
            weighted_hpwl: hpwl::weighted_hpwl(design, placement),
            overflow_percent: penalty,
            scaled_hpwl: hp * (1.0 + penalty / 100.0),
        }
    }
}

impl std::fmt::Display for PlacementMetrics {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "HPWL {:.4e} (scaled {:.4e}, overflow {:.2}%)",
            self.hpwl, self.scaled_hpwl, self.overflow_percent
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use complx_netlist::generator::GeneratorConfig;

    #[test]
    fn scaled_at_least_plain() {
        let d = GeneratorConfig::small("m", 8).generate();
        let m = PlacementMetrics::measure(&d, &d.initial_placement());
        assert!(m.scaled_hpwl >= m.hpwl);
        assert!(m.weighted_hpwl >= m.hpwl - 1e-9); // weights are ≥ 1 here
        assert!(m.to_string().contains("HPWL"));
    }
}
