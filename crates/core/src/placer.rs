//! The ComPLx primal-dual placement loop.

use std::time::{Duration, Instant};

use complx_legalize::{DetailedPlacer, Legalizer};
use complx_netlist::{hpwl, CellKind, Design, Placement, Point};
use complx_par::CancelToken;
use complx_sparse::CgSolver;
use complx_spread::rudy::CongestionMap;
use complx_spread::{ElectroProjection, FeasibilityProjection, Projection, ProjectionResult};
use complx_wirelength::{
    Anchors, BetaRegModel, InterconnectModel, LseModel, PNormModel, QuadraticModel,
};

use complx_obs as obs;

use crate::budget::Budget;
use crate::ckpt::{self, CheckpointState, CheckpointWriter};
use crate::config::{Interconnect, PlacerConfig, ProjectionBackend};
use crate::error::{PlaceError, StopReason};
use crate::faults::{FaultArming, FaultKind};
use crate::lambda::LambdaSchedule;
use crate::metrics::PlacementMetrics;
use crate::solves::{SolveRecord, SolverTotals};
use crate::trace::{IterationRecord, Trace};

/// Everything a placement run produces.
#[derive(Debug, Clone)]
pub struct PlacementOutcome {
    /// The last lower-bound iterate `(x, y)` (analytic minimizer).
    pub lower: Placement,
    /// The last feasible iterate `(x°, y°)` (projection output) — per
    /// Section 4, detailed placement starts here.
    pub upper: Placement,
    /// The final legal placement (equal to `upper` when
    /// [`PlacerConfig::final_detail`] is off).
    pub legal: Placement,
    /// Quality metrics of `legal`.
    pub metrics: PlacementMetrics,
    /// HPWL of `legal` (convenience copy of `metrics.hpwl`).
    pub hpwl_legal: f64,
    /// Per-iteration convergence trace (Figures 1 and 3).
    pub trace: Trace,
    /// Number of global placement iterations executed.
    pub iterations: usize,
    /// Final λ value (Figure 3 / Section S3).
    pub final_lambda: f64,
    /// Whether a convergence criterion fired (vs. the iteration cap).
    pub converged: bool,
    /// Why the primal-dual loop stopped iterating.
    pub stop_reason: StopReason,
    /// Number of divergence recoveries executed during the run (`0` for a
    /// clean run; when non-zero, [`Self::stop_reason`] is
    /// [`StopReason::Recovered`]).
    pub recoveries: usize,
    /// Wall-clock seconds in global placement.
    pub global_seconds: f64,
    /// Wall-clock seconds in legalization + detailed placement.
    pub detail_seconds: f64,
    /// Per-iteration linear-solver statistics (bootstrap solves at
    /// iteration 0, then one record per λ-loop primal step).
    pub solves: Vec<SolveRecord>,
}

impl PlacementOutcome {
    /// Run-level totals over [`Self::solves`].
    pub fn solver_totals(&self) -> SolverTotals {
        SolverTotals::from_records(&self.solves)
    }
}

/// The ComPLx global placer. See the crate docs for the algorithm.
#[derive(Debug, Clone, PartialEq)]
pub struct ComplxPlacer {
    config: PlacerConfig,
    cancel: Option<CancelToken>,
}

impl Default for ComplxPlacer {
    fn default() -> Self {
        Self::new(PlacerConfig::default())
    }
}

impl ComplxPlacer {
    /// Creates a placer with the given configuration.
    pub fn new(config: PlacerConfig) -> Self {
        Self {
            config,
            cancel: None,
        }
    }

    /// Attaches an external cancel token. When it trips, the run winds
    /// down cooperatively: the inner kernels (CG, NLCG, projection,
    /// detailed placement) stop at their next safe point and the loop
    /// exits through the best-iterate path with
    /// [`StopReason::Cancelled`] — or [`PlaceError::Cancelled`] when no
    /// feasible iterate exists yet. An untripped token changes nothing:
    /// the run is bit-identical to one without a token.
    #[must_use]
    pub fn with_cancel(mut self, cancel: CancelToken) -> Self {
        self.cancel = Some(cancel);
        self
    }

    /// The active configuration.
    pub fn config(&self) -> &PlacerConfig {
        &self.config
    }

    /// Places a design.
    ///
    /// # Errors
    ///
    /// Returns a [`PlaceError`] when the design is unplaceable, the solver
    /// breaks down before a feasible iterate exists, the run diverges past
    /// the recovery budget, or the time budget expires before any feasible
    /// iterate was produced. See [`PlaceError`] for the variants.
    pub fn place(&self, design: &Design) -> Result<PlacementOutcome, PlaceError> {
        self.run(design, None, None)
    }

    /// Resumes a run from a checkpoint captured by a previous (killed or
    /// cancelled) run with the same design and configuration, continuing
    /// at `state.iteration + 1`. The final placement is byte-identical to
    /// the uninterrupted run's, for any thread count.
    ///
    /// Criticality-weighted runs are not resumable: the checkpoint does
    /// not capture the criticality factors (see
    /// [`Self::place_with_criticality`]).
    ///
    /// # Errors
    ///
    /// Returns [`PlaceError::CheckpointMismatch`] when the checkpoint was
    /// taken on a different design or a configuration whose
    /// determinism-relevant fields differ (see [`ckpt::config_hash`]),
    /// plus every failure mode of [`Self::place`].
    pub fn resume(
        &self,
        design: &Design,
        state: CheckpointState,
    ) -> Result<PlacementOutcome, PlaceError> {
        let dh = ckpt::design_hash(design);
        if dh != state.design_hash {
            return Err(PlaceError::CheckpointMismatch {
                reason: format!(
                    "design hash {dh:#018x} does not match checkpoint {:#018x}",
                    state.design_hash
                ),
            });
        }
        let ch = ckpt::config_hash(&self.config);
        if ch != state.config_hash {
            return Err(PlaceError::CheckpointMismatch {
                reason: format!(
                    "config hash {ch:#018x} does not match checkpoint {:#018x}",
                    state.config_hash
                ),
            });
        }
        if state.lower.len() != design.num_cells() {
            return Err(PlaceError::CheckpointMismatch {
                reason: format!(
                    "checkpoint holds {} cells for a {}-cell design",
                    state.lower.len(),
                    design.num_cells()
                ),
            });
        }
        self.run(design, None, Some(state))
    }

    /// Places a design with per-cell criticality factors `γ_i` weighing the
    /// penalty term (Formula 13). `criticality[i]` multiplies cell `i`'s
    /// λ; pass `None` (or all-ones) for wirelength-driven placement.
    ///
    /// # Errors
    ///
    /// Returns [`PlaceError::InvalidDesign`] when `criticality` has the
    /// wrong length or contains non-finite/negative entries, plus every
    /// failure mode of [`Self::place`].
    pub fn place_with_criticality(
        &self,
        design: &Design,
        criticality: Option<&[f64]>,
    ) -> Result<PlacementOutcome, PlaceError> {
        self.run(design, criticality, None)
    }

    /// The shared engine behind [`Self::place`],
    /// [`Self::place_with_criticality`], and [`Self::resume`]: a fresh run
    /// bootstraps at λ = 0, a resumed run restores the checkpointed loop
    /// state and continues at the next iteration.
    fn run(
        &self,
        design: &Design,
        criticality: Option<&[f64]>,
        resume: Option<CheckpointState>,
    ) -> Result<PlacementOutcome, PlaceError> {
        if let Some(c) = criticality {
            if c.len() != design.num_cells() {
                return Err(PlaceError::InvalidDesign {
                    reason: format!(
                        "criticality has {} entries for {} cells",
                        c.len(),
                        design.num_cells()
                    ),
                });
            }
            if c.iter().any(|v| !v.is_finite() || *v < 0.0) {
                return Err(PlaceError::InvalidDesign {
                    reason: "criticality contains non-finite or negative factors".into(),
                });
            }
        }
        validate_design(design)?;
        let _place_span = obs::span("place");
        let cfg = &self.config;
        let t_global = Instant::now(); // lint:allow(nondet-taint): phase timer; elapsed seconds feed the report only, never a coordinate
        let deadline = match cfg.time_budget {
            Some(s) if s <= 0.0 => {
                return Err(PlaceError::TimedOut { budget_seconds: s });
            }
            Some(s) => Some(t_global + Duration::from_secs_f64(s)),
            None => None,
        };
        // Deadline ∪ external cancellation, polled at every safe point;
        // the token additionally reaches the cancellable kernels.
        let budget = Budget::new(deadline, self.cancel.clone());

        // The CG tolerance is recovery-state: each divergence recovery
        // tightens it (sloppier solves are a prime source of breakdowns),
        // so the model is rebuilt from the current value.
        let make_model = |cg_tol: f64| -> Box<dyn InterconnectModel> {
            match cfg.interconnect {
                Interconnect::Quadratic(net_model) => Box::new(
                    QuadraticModel::new(net_model).with_solver(
                        CgSolver::new()
                            .with_tolerance(cg_tol)
                            .with_max_iterations(cfg.cg_max_iterations),
                    ),
                ),
                Interconnect::LogSumExp { gamma_rows } => {
                    Box::new(LseModel::new().with_gamma_rows(gamma_rows))
                }
                Interconnect::BetaRegularized { beta_rows2 } => {
                    Box::new(BetaRegModel::new().with_beta_rows2(beta_rows2))
                }
                Interconnect::PNorm { p } => Box::new(PNormModel::new().with_p(p)),
            }
        };
        let mut cg_tol = cfg.cg_tolerance;
        let mut model = make_model(cg_tol);
        let mut armed = FaultArming::new(cfg.faults.as_ref());
        // The paper treats `P_C` as a black box; the backend is picked at
        // runtime behind the object-safe `Projection` trait.
        let projection: Box<dyn Projection> = match cfg.projection {
            ProjectionBackend::Geometric => Box::new(FeasibilityProjection {
                shred_macros: cfg.shred_macros,
                cells_per_bin: cfg.cells_per_bin,
                cancel: self.cancel.clone(),
                ..FeasibilityProjection::default()
            }),
            ProjectionBackend::Electro => Box::new(ElectroProjection {
                cells_per_bin: cfg.cells_per_bin,
                cancel: self.cancel.clone(),
                ..ElectroProjection::default()
            }),
        };
        let adaptive = projection.adaptive_bins(design);

        // Periodic crash-safe checkpointing. Disabled for
        // criticality-weighted runs: the checkpoint does not capture the
        // criticality factors, so a resume could not reproduce them.
        let mut ckpt_writer = match (&cfg.checkpoint, criticality) {
            (Some(c), None) => Some(CheckpointWriter::new(
                c,
                resume.as_ref().map_or(0, |s| s.generation),
            )),
            _ => None,
        };
        let hashes = ckpt_writer
            .as_ref()
            .map(|_| (ckpt::design_hash(design), ckpt::config_hash(cfg)));

        // Per-macro λ scale factors (Section 5).
        let macro_scale: Vec<f64> = {
            let mean_std = design.mean_std_cell_area().max(f64::MIN_POSITIVE);
            design
                .cell_ids()
                .map(|id| {
                    let cell = design.cell(id);
                    if cfg.per_macro_lambda && cell.kind() == CellKind::MovableMacro {
                        (cell.area() / mean_std).max(1.0)
                    } else {
                        1.0
                    }
                })
                .collect()
        };
        let crit = |i: usize| criticality.map_or(1.0, |c| c[i]);

        // Mutable loop state — born in the bootstrap for a fresh run,
        // restored verbatim from the checkpoint for a resumed one.
        let mut solves: Vec<SolveRecord>;
        let mut trace: Trace;
        let mut lower: Placement;
        let mut upper: Placement;
        let mut best_upper: Placement;
        let mut best_phi_upper: f64;
        let mut pi_prev: f64;
        let mut converged: bool;
        let mut iterations: usize;
        let mut final_lambda: f64;
        let mut recoveries: usize;
        let mut stale: usize;
        let mut stop_reason: StopReason;
        let schedule_init: Option<LambdaSchedule>;
        let start_k: usize;

        if let Some(st) = resume {
            // Faults scheduled inside the killed run's lifetime already
            // fired (or died with it) — only future ones stay armed.
            armed.discard_through(st.iteration);
            cg_tol = st.cg_tol;
            model = make_model(cg_tol);
            solves = st.solves;
            trace = st.trace;
            lower = st.lower;
            upper = st.upper;
            best_upper = st.best_upper;
            best_phi_upper = st.best_phi_upper;
            pi_prev = st.pi_prev;
            converged = false;
            iterations = st.iteration;
            final_lambda = st.final_lambda;
            recoveries = st.recoveries;
            stale = st.stale;
            stop_reason = StopReason::IterationCap;
            schedule_init = Some(
                LambdaSchedule::restore(cfg.lambda_mode, st.lambda, st.lambda_1, st.h)
                    .with_inverse_ratio(cfg.lambda_inverse_ratio),
            );
            start_k = st.iteration + 1;
            obs::add("ckpt.resumes", 1);
            if obs::enabled() {
                obs::event(
                    "resume",
                    obs::JsonValue::object(vec![
                        ("iteration", (st.iteration as i64).into()),
                        ("generation", (st.generation as i64).into()),
                    ]),
                );
            }
        } else {
            // Bootstrap: unconstrained quadratic placement (λ = 0). A few
            // passes let the B2B linearization settle. A breakdown here is
            // fatal — no feasible iterate exists yet to degrade to.
            solves = Vec::new();
            let bootstrap_span = obs::span("bootstrap");
            lower = design.initial_placement();
            for _ in 0..3 {
                let stats =
                    model.minimize_with_cancel(design, &mut lower, None, budget.cancel_token());
                solves.push(SolveRecord::from_stats(0, &stats));
                if stats.breakdown {
                    return Err(PlaceError::SolverBreakdown {
                        iteration: 0,
                        detail: "CG breakdown in the λ = 0 bootstrap solve".into(),
                    });
                }
                if !placement_is_finite(design, &lower) {
                    return Err(PlaceError::SolverBreakdown {
                        iteration: 0,
                        detail: "non-finite iterate out of the λ = 0 bootstrap solve".into(),
                    });
                }
                if let Some(reason) = budget.stop() {
                    // No projection has run yet, so there is no feasible
                    // placement to exit gracefully with.
                    return Err(match reason {
                        StopReason::Cancelled => PlaceError::Cancelled,
                        _ => PlaceError::TimedOut {
                            budget_seconds: cfg.time_budget.unwrap_or(0.0),
                        },
                    });
                }
            }

            trace = Trace::new();
            let boot = projection.project_with_bins(design, &lower, cfg.grid.bins_at(0, adaptive));
            drop(bootstrap_span);
            upper = boot.placement.clone();
            let phi0 = hpwl::weighted_hpwl(design, &lower);
            pi_prev = boot.distance_l1;

            trace.push(IterationRecord {
                iteration: 0,
                lambda: 0.0,
                phi_lower: phi0,
                phi_upper: hpwl::weighted_hpwl(design, &upper),
                pi: pi_prev,
                lagrangian: phi0,
                overflow: boot.overflow_before,
                bins: boot.bins_used,
            });

            converged = boot.overflow_before < cfg.overflow_tolerance;
            iterations = 0;
            final_lambda = 0.0;
            recoveries = 0;
            // A run that never enters the λ loop — already feasible, or the
            // bootstrap projection left nothing to optimize — is converged.
            // Entering the loop flips this to IterationCap, which then
            // stands only if no break fires before `max_iterations`.
            stop_reason = StopReason::Converged;
            // Best feasible iterate seen so far (SimPL's "upper-bound
            // placement"; Section 4 reads the result off a feasible
            // iterate, so keeping the best one means extra iterations never
            // hurt).
            best_upper = upper.clone();
            best_phi_upper = hpwl::weighted_hpwl(design, &upper);
            stale = 0;
            schedule_init = if !converged && pi_prev > 0.0 && phi0 > 0.0 {
                Some(
                    LambdaSchedule::new(cfg.lambda_mode, cfg.lambda_init_divisor, phi0, pi_prev)
                        .with_inverse_ratio(cfg.lambda_inverse_ratio),
                )
            } else {
                None
            };
            start_k = 1;
        }

        if let Some(mut schedule) = schedule_init {
            stop_reason = StopReason::IterationCap;
            for k in start_k..=cfg.max_iterations {
                if let Some(reason) = budget.stop() {
                    stop_reason = reason;
                    break;
                }
                if armed.take(k, FaultKind::Kill) {
                    // Simulated crash: surface exactly what an external
                    // SIGKILL would leave behind — committed checkpoints on
                    // disk, nothing else.
                    return Err(PlaceError::Killed { iteration: k });
                }
                let _iter_span = obs::span("iteration");
                obs::add("place.iterations", 1);
                iterations = k;
                let lambda = schedule.lambda();
                final_lambda = lambda;

                // Snapshot for rollback: if this iteration faults, the
                // recovery policy restores the last good iterates.
                let lower_prev = lower.clone();

                // Primal step: minimize Φ + λ‖·−(x°,y°)‖₁ (linearized).
                let lambdas: Vec<f64> = (0..design.num_cells())
                    .map(|i| {
                        if design
                            .cell(complx_netlist::CellId::from_index(i))
                            .is_movable()
                        {
                            lambda * macro_scale[i] * crit(i)
                        } else {
                            0.0
                        }
                    })
                    .collect();
                let anchors =
                    Anchors::per_cell(design, upper.clone(), lambdas, 1.5 * design.row_height());
                let mstats = model.minimize_with_cancel(
                    design,
                    &mut lower,
                    Some(&anchors),
                    budget.cancel_token(),
                );
                solves.push(SolveRecord::from_stats(k, &mstats));

                // A cancel (or deadline) that tripped inside the solve left
                // a half-converged iterate; discard it and exit with the
                // snapshot so the reported lower bound stays meaningful.
                if let Some(reason) = budget.stop() {
                    lower = lower_prev;
                    stop_reason = reason;
                    break;
                }

                // Fault detection (injected faults flow through the same
                // checks as real numerical failures).
                if armed.take(k, FaultKind::NanGradient) {
                    poison(&mut lower, design);
                }
                let cg_stall = armed.take(k, FaultKind::CgStall);
                let mut fault: Option<String> = if mstats.breakdown || cg_stall {
                    Some(if cg_stall {
                        FaultKind::CgStall.describe().into()
                    } else {
                        "CG breakdown in primal solve".into()
                    })
                } else if !placement_is_finite(design, &lower) {
                    Some("non-finite lower-bound iterate after primal step".into())
                } else {
                    None
                };

                // Dual step: project — with routability-driven inflation
                // when configured (SimPLR-lite) — and optionally refine with
                // the detailed placer (the "P_C += FastPlace-DP"
                // configuration). Skipped when the primal step already
                // faulted: projecting a poisoned iterate is meaningless.
                let bins = cfg.grid.bins_at(k, adaptive);
                let mut proj_result: Option<ProjectionResult> = None;
                if fault.is_none() {
                    let proj = match &cfg.routability {
                        Some(r) => {
                            let cbins = if r.grid_bins == 0 { bins } else { r.grid_bins };
                            let map = CongestionMap::build(design, &lower, cbins, cbins, r.supply);
                            let factors =
                                map.inflation_factors(design, &lower, r.alpha, r.max_inflation);
                            projection.project_with_bins_inflated(
                                design,
                                &lower,
                                bins,
                                Some(&factors),
                            )
                        }
                        None => projection.project_with_bins(design, &lower, bins),
                    };
                    upper = proj.placement.clone();
                    if armed.take(k, FaultKind::ProjectionStall) {
                        poison(&mut upper, design);
                    }
                    if !placement_is_finite(design, &upper) {
                        fault = Some("non-finite feasible iterate after projection".into());
                    } else {
                        if cfg.detail_each_iteration {
                            let legalized = Legalizer::default().legalize(design, &upper);
                            let refined = DetailedPlacer {
                                max_passes: 1,
                                ..DetailedPlacer::default()
                            }
                            .improve(design, legalized.placement);
                            upper = refined.placement;
                        }
                        proj_result = Some(proj);
                    }
                }

                if let Some(detail) = fault {
                    recoveries += 1;
                    obs::add("place.recoveries", 1);
                    if obs::enabled() {
                        obs::event(
                            "recovery",
                            obs::JsonValue::object(vec![
                                ("iteration", (k as i64).into()),
                                ("recoveries", (recoveries as i64).into()),
                                ("detail", detail.as_str().into()),
                            ]),
                        );
                    }
                    if recoveries > cfg.max_recoveries {
                        return Err(PlaceError::Diverged {
                            iteration: k,
                            recoveries: recoveries - 1,
                            best: Some(Box::new(best_upper)),
                            detail,
                        });
                    }
                    // Recovery policy: restore the last good iterates, back
                    // λ off (an overgrown penalty is the usual culprit),
                    // tighten the CG tolerance, and retry the iteration.
                    lower = lower_prev;
                    upper = best_upper.clone();
                    schedule.scale(0.5);
                    cg_tol = (cg_tol * 0.1).max(1e-12);
                    model = make_model(cg_tol);
                    continue;
                }
                let Some(proj) = proj_result else {
                    // Unreachable: a missing projection always set `fault`,
                    // which the block above consumed with `continue`.
                    continue;
                };

                let phi_lower = hpwl::weighted_hpwl(design, &lower);
                let phi_upper = hpwl::weighted_hpwl(design, &upper);
                let pi = lower.l1_distance(&upper);
                if phi_upper < best_phi_upper && proj.overflow_after < 0.25 {
                    best_phi_upper = phi_upper;
                    best_upper = upper.clone();
                    stale = 0;
                } else {
                    stale += 1;
                }

                trace.push(IterationRecord {
                    iteration: k,
                    lambda,
                    phi_lower,
                    phi_upper,
                    pi,
                    lagrangian: phi_lower + lambda * pi,
                    overflow: proj.overflow_before,
                    // The grid the projection actually used (the electro
                    // backend rounds the request to a power of two).
                    bins: proj.bins_used,
                });
                if obs::enabled() {
                    obs::event(
                        "iteration",
                        obs::JsonValue::object(vec![
                            ("iteration", (k as i64).into()),
                            ("lambda", lambda.into()),
                            ("phi_lower", phi_lower.into()),
                            ("phi_upper", phi_upper.into()),
                            ("pi", pi.into()),
                            ("overflow", proj.overflow_before.into()),
                            ("bins", (bins as i64).into()),
                            ("cg_iterations_x", (mstats.iterations_x as i64).into()),
                            ("cg_iterations_y", (mstats.iterations_y as i64).into()),
                            ("relative_residual", mstats.relative_residual.into()),
                        ]),
                    );
                }

                // Convergence (Section 4): relative duality gap or the
                // overflow of the analytic iterate.
                let rel_gap = if phi_upper > 0.0 {
                    (phi_upper - phi_lower) / phi_upper
                } else {
                    0.0
                };
                // Refined convergence (Section 4): the duality gap or the
                // overflow of the analytic iterate; additionally stop when
                // the best feasible iterate has stagnated — more iterations
                // cannot improve the result that detailed placement uses.
                if proj.overflow_before < cfg.overflow_tolerance
                    || (k >= 3 && rel_gap < cfg.gap_tolerance)
                {
                    converged = true;
                    stop_reason = StopReason::Converged;
                    break;
                }
                if k >= 10 && stale >= cfg.stagnation_window {
                    converged = true;
                    stop_reason = StopReason::Stagnated;
                    break;
                }

                schedule.advance(pi_prev, pi);
                pi_prev = pi;

                // Periodic checkpoint at the loop bottom, where the state
                // is exactly "iteration k done, schedule advanced" — the
                // precondition [`ComplxPlacer::resume`] restores. Best
                // effort: an I/O failure is counted, not fatal.
                if let (Some(w), Some((dh, ch))) = (ckpt_writer.as_mut(), hashes) {
                    if w.due(k) {
                        let _ckpt_span = obs::span("checkpoint");
                        let state = CheckpointState {
                            design_hash: dh,
                            config_hash: ch,
                            generation: w.next_generation(),
                            iteration: k,
                            lambda: schedule.lambda(),
                            lambda_1: schedule.lambda_1(),
                            h: schedule.h(),
                            pi_prev,
                            cg_tol,
                            recoveries,
                            stale,
                            best_phi_upper,
                            final_lambda,
                            lower: lower.clone(),
                            upper: upper.clone(),
                            best_upper: best_upper.clone(),
                            trace: trace.clone(),
                            solves: solves.clone(),
                        };
                        let io_fault = armed.take_io_fault(k);
                        match w.write(&state, io_fault) {
                            Ok(bytes) => {
                                obs::add("ckpt.writes", 1);
                                obs::add("ckpt.bytes", bytes);
                                if obs::enabled() {
                                    obs::event(
                                        "checkpoint",
                                        obs::JsonValue::object(vec![
                                            ("iteration", (k as i64).into()),
                                            ("bytes", (bytes as i64).into()),
                                            ("generation", (state.generation as i64).into()),
                                        ]),
                                    );
                                }
                            }
                            Err(e) => {
                                obs::add("ckpt.errors", 1);
                                if obs::enabled() {
                                    obs::event(
                                        "checkpoint_error",
                                        obs::JsonValue::object(vec![
                                            ("iteration", (k as i64).into()),
                                            ("error", e.to_string().as_str().into()),
                                        ]),
                                    );
                                }
                            }
                        }
                    }
                }
            }
        }
        let global_seconds = t_global.elapsed().as_secs_f64();
        if recoveries > 0 {
            stop_reason = StopReason::Recovered;
        }

        // Final legalization + detailed placement on the best feasible
        // iterate (Section 4). Legalization always runs — the contract is a
        // legal result even on a time-budget exit — but the detailed
        // placement polish is skipped when the budget is already spent.
        let upper = best_upper;
        let t_detail = Instant::now(); // lint:allow(nondet-taint): phase timer; elapsed seconds feed the report only, never a coordinate
        let legal = if cfg.final_detail {
            let legalized = Legalizer::default().legalize(design, &upper);
            if budget.stop().is_some() {
                legalized.placement
            } else {
                DetailedPlacer::default()
                    .improve_with_cancel(design, legalized.placement, budget.cancel_token())
                    .placement
            }
        } else {
            upper.clone()
        };
        let detail_seconds = t_detail.elapsed().as_secs_f64();

        let metrics = PlacementMetrics::measure(design, &legal);
        Ok(PlacementOutcome {
            lower,
            upper,
            hpwl_legal: metrics.hpwl,
            metrics,
            legal,
            trace,
            iterations,
            final_lambda,
            converged,
            stop_reason,
            recoveries,
            global_seconds,
            detail_seconds,
            solves,
        })
    }
}

/// Cheap structural validation: geometry must be finite and the design
/// physically placeable. Runs once per [`ComplxPlacer::place`] call.
fn validate_design(design: &Design) -> Result<(), PlaceError> {
    let fail = |reason: String| Err(PlaceError::InvalidDesign { reason });
    let core = design.core();
    if ![core.lx, core.ly, core.hx, core.hy]
        .iter()
        .all(|v| v.is_finite())
    {
        return fail("core rectangle has non-finite coordinates".into());
    }
    if core.width() <= 0.0 || core.height() <= 0.0 {
        return fail(format!(
            "core rectangle is degenerate ({} × {})",
            core.width(),
            core.height()
        ));
    }
    if !design.row_height().is_finite() || design.row_height() <= 0.0 {
        return fail(format!(
            "row height {} is not positive and finite",
            design.row_height()
        ));
    }
    let mut movable_area = 0.0;
    for id in design.cell_ids() {
        let c = design.cell(id);
        if ![c.width(), c.height()].iter().all(|v| v.is_finite())
            || c.width() < 0.0
            || c.height() < 0.0
        {
            return fail(format!(
                "cell `{}` has invalid dimensions {} × {}",
                c.name(),
                c.width(),
                c.height()
            ));
        }
        if c.is_movable() {
            movable_area += c.area();
        } else {
            let p = design.fixed_positions().position(id);
            if !p.x.is_finite() || !p.y.is_finite() {
                return fail(format!(
                    "fixed cell `{}` has a non-finite position",
                    c.name()
                ));
            }
        }
    }
    let capacity = core.width() * core.height();
    if movable_area > capacity {
        return fail(format!(
            "movable area {movable_area:.1} exceeds core capacity {capacity:.1}"
        ));
    }
    Ok(())
}

/// Whether every movable cell sits at finite coordinates.
fn placement_is_finite(design: &Design, p: &Placement) -> bool {
    design.movable_cells().iter().all(|&id| {
        let pt = p.position(id);
        pt.x.is_finite() && pt.y.is_finite()
    })
}

/// Poisons one movable coordinate with NaN (fault injection only).
fn poison(placement: &mut Placement, design: &Design) {
    if let Some(&id) = design.movable_cells().first() {
        placement.set_position(id, Point::new(f64::NAN, f64::NAN));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{GridSchedule, LambdaMode};
    use complx_legalize::is_legal;
    use complx_netlist::generator::GeneratorConfig;

    fn small(seed: u64) -> Design {
        GeneratorConfig::small("pl", seed).generate()
    }

    #[test]
    fn placement_converges_and_is_legal() {
        let d = small(1);
        let out = ComplxPlacer::new(PlacerConfig::fast()).place(&d).unwrap();
        assert!(
            out.converged,
            "did not converge in {} iters",
            out.iterations
        );
        assert!(is_legal(&d, &out.legal, 1e-6));
        assert!(out.hpwl_legal > 0.0);
    }

    #[test]
    fn trace_shows_paper_trends() {
        // Figure 1: Π decreases, Φ (lower) increases, bounds stay ordered.
        let d = small(2);
        let out = ComplxPlacer::new(PlacerConfig::fast()).place(&d).unwrap();
        let recs = out.trace.records();
        assert!(recs.len() >= 3);
        let first = recs[1]; // skip the λ=0 bootstrap record
        let last = *recs.last().unwrap();
        assert!(
            last.pi < first.pi,
            "Π must decrease: {} -> {}",
            first.pi,
            last.pi
        );
        assert!(
            last.phi_lower > first.phi_lower * 0.95,
            "Φ should (weakly) increase: {} -> {}",
            first.phi_lower,
            last.phi_lower
        );
        for r in &recs[1..] {
            assert!(
                r.phi_lower <= r.phi_upper * 1.02,
                "weak duality violated at iter {}: {} vs {}",
                r.iteration,
                r.phi_lower,
                r.phi_upper
            );
        }
    }

    #[test]
    fn lambda_increases_monotonically() {
        let d = small(3);
        let out = ComplxPlacer::new(PlacerConfig::fast()).place(&d).unwrap();
        let recs = out.trace.records();
        for w in recs.windows(2) {
            assert!(w[1].lambda >= w[0].lambda);
        }
        assert!(out.final_lambda > 0.0);
        // Section S3: the final λ is bounded (its absolute magnitude is
        // design- and unit-dependent; the scale-independence claim is
        // checked across the whole suite by the fig3 harness).
        assert!(out.final_lambda.is_finite() && out.final_lambda < 1e3);
    }

    #[test]
    fn placer_is_deterministic() {
        let d = small(4);
        let a = ComplxPlacer::new(PlacerConfig::fast()).place(&d).unwrap();
        let b = ComplxPlacer::new(PlacerConfig::fast()).place(&d).unwrap();
        assert_eq!(a.legal, b.legal);
        assert_eq!(a.iterations, b.iterations);
    }

    #[test]
    fn placement_beats_projection_of_center_start() {
        // The full loop must clearly beat "project once and legalize".
        let d = small(5);
        let naive = {
            let p = d.initial_placement();
            let proj = complx_spread::FeasibilityProjection::default().project(&d, &p);
            let legal = complx_legalize::Legalizer::default()
                .legalize(&d, &proj.placement)
                .placement;
            complx_netlist::hpwl::hpwl(&d, &legal)
        };
        let out = ComplxPlacer::new(PlacerConfig::fast()).place(&d).unwrap();
        assert!(
            out.hpwl_legal < naive,
            "placer {} vs naive {naive}",
            out.hpwl_legal
        );
    }

    #[test]
    fn mixed_size_designs_place_and_legalize() {
        let d = GeneratorConfig::ispd2006_like("pm", 6, 600, 0.7).generate();
        let out = ComplxPlacer::new(PlacerConfig::fast()).place(&d).unwrap();
        assert!(is_legal(&d, &out.legal, 1e-6));
        // Movable macros actually moved away from the center pile.
        let c = d.core().center();
        let spread_out = d
            .movable_cells()
            .iter()
            .filter(|&&id| d.cell(id).kind() == CellKind::MovableMacro)
            .filter(|&&id| out.legal.position(id).l1_distance(c) > d.row_height())
            .count();
        assert!(spread_out > 0);
    }

    #[test]
    fn region_constraints_satisfied_after_placement() {
        use complx_netlist::{Rect, RegionConstraint};
        let mut cfg = GeneratorConfig::small("rg", 7);
        cfg.num_std_cells = 300;
        // Build design, then rebuild with a region over the first 20 cells.
        let d0 = cfg.generate();
        let core = d0.core();
        let region_rect = Rect::new(
            core.lx,
            core.ly,
            core.lx + 0.4 * core.width(),
            core.ly + 0.4 * core.height(),
        );
        let cells: Vec<_> = d0.movable_cells().iter().copied().take(20).collect();
        let d = {
            // Reuse the timing crate trick: rebuild with a region.
            use complx_netlist::DesignBuilder;
            let mut b = DesignBuilder::new(d0.name(), d0.core(), d0.row_height());
            b.set_target_density(d0.target_density()).unwrap();
            for id in d0.cell_ids() {
                let c = d0.cell(id);
                if c.is_movable() {
                    b.add_cell(c.name(), c.width(), c.height(), c.kind())
                        .unwrap();
                } else {
                    b.add_fixed_cell(
                        c.name(),
                        c.width(),
                        c.height(),
                        c.kind(),
                        d0.fixed_positions().position(id),
                    )
                    .unwrap();
                }
            }
            for nid in d0.net_ids() {
                let n = d0.net(nid);
                b.add_net(
                    n.name(),
                    n.weight(),
                    d0.net_pins(nid)
                        .iter()
                        .map(|p| (p.cell, p.dx, p.dy))
                        .collect(),
                )
                .unwrap();
            }
            b.add_region(RegionConstraint::new("r0", region_rect, cells.clone()));
            b.build().unwrap()
        };
        let mut fast = PlacerConfig::fast();
        fast.final_detail = false; // detail moves are not region-aware yet
        let out = ComplxPlacer::new(fast).place(&d).unwrap();
        assert!(complx_spread::regions::regions_satisfied(&d, &out.upper));
    }

    #[test]
    fn log_sum_exp_interconnect_places_legally() {
        // §S1: any smoothing of HPWL can drive the primal step.
        let d = small(9);
        let cfg = PlacerConfig {
            interconnect: crate::config::Interconnect::LogSumExp { gamma_rows: 4.0 },
            max_iterations: 15,
            ..PlacerConfig::fast()
        };
        let out = ComplxPlacer::new(cfg).place(&d).unwrap();
        assert!(is_legal(&d, &out.legal, 1e-6));
        // Must be in the same ballpark as the quadratic default (LSE with
        // few NLCG iterations is weaker; allow 2x).
        let quad = ComplxPlacer::new(PlacerConfig::fast()).place(&d).unwrap();
        assert!(
            out.hpwl_legal < 2.0 * quad.hpwl_legal,
            "lse {} vs quadratic {}",
            out.hpwl_legal,
            quad.hpwl_legal
        );
    }

    #[test]
    fn grid_and_lambda_ablation_configs_run() {
        let d = small(8);
        for cfg in [
            PlacerConfig {
                grid: GridSchedule::Fixed { fraction: 1.0 },
                max_iterations: 12,
                ..PlacerConfig::fast()
            },
            PlacerConfig {
                lambda_mode: LambdaMode::Geometric { ratio: 1.3 },
                max_iterations: 12,
                ..PlacerConfig::fast()
            },
            PlacerConfig {
                lambda_mode: LambdaMode::Arithmetic { step: 1.0 },
                max_iterations: 12,
                ..PlacerConfig::fast()
            },
        ] {
            let out = ComplxPlacer::new(cfg).place(&d).unwrap();
            assert!(out.hpwl_legal > 0.0);
        }
    }

    #[test]
    fn pre_tripped_cancel_errors_before_feasible_iterate() {
        let d = small(1);
        let token = CancelToken::new();
        token.cancel();
        let err = ComplxPlacer::new(PlacerConfig::fast())
            .with_cancel(token)
            .place(&d)
            .unwrap_err();
        assert!(matches!(err, PlaceError::Cancelled), "got {err}");
        assert_eq!(err.exit_code(), 8);
    }

    #[test]
    fn untripped_token_is_bit_identical_to_no_token() {
        let d = small(4);
        let plain = ComplxPlacer::new(PlacerConfig::fast()).place(&d).unwrap();
        let tokened = ComplxPlacer::new(PlacerConfig::fast())
            .with_cancel(CancelToken::new())
            .place(&d)
            .unwrap();
        assert_eq!(plain.legal, tokened.legal);
        assert_eq!(plain.trace, tokened.trace);
        assert_eq!(plain.iterations, tokened.iterations);
    }

    #[test]
    fn kill_then_resume_reproduces_uninterrupted_run() {
        use crate::config::CheckpointConfig;
        use crate::faults::FaultPlan;

        let d = small(6);
        let dir = std::env::temp_dir().join(format!("complx-placer-resume-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let ckpt_a = dir.join("a.ckpt");
        let ckpt_b = dir.join("b.ckpt");

        let base = PlacerConfig {
            max_iterations: 20,
            ..PlacerConfig::fast()
        };

        // Reference: uninterrupted checkpointed run.
        let cfg_a = PlacerConfig {
            checkpoint: Some(CheckpointConfig::new(&ckpt_a, 2)),
            ..base.clone()
        };
        let reference = ComplxPlacer::new(cfg_a).place(&d).unwrap();
        assert!(
            reference.iterations >= 5,
            "design converged too fast to test resume"
        );

        // Crash: kill at iteration 5 (checkpoints at 2 and 4 committed).
        let cfg_b = PlacerConfig {
            checkpoint: Some(CheckpointConfig::new(&ckpt_b, 2)),
            faults: Some(FaultPlan::new().inject(5, FaultKind::Kill)),
            ..base.clone()
        };
        let err = ComplxPlacer::new(cfg_b).place(&d).unwrap_err();
        assert!(
            matches!(err, PlaceError::Killed { iteration: 5 }),
            "got {err}"
        );
        assert_eq!(err.exit_code(), 10);

        // Resume from the killed run's checkpoint; the fault plan is gone
        // (a real restart would not re-specify it).
        let cfg_r = PlacerConfig {
            checkpoint: Some(CheckpointConfig::new(&ckpt_b, 2)),
            ..base.clone()
        };
        let (state, used_prev) = ckpt::load_checkpoint(&ckpt_b).unwrap();
        assert!(!used_prev);
        assert_eq!(state.iteration, 4);
        let resumed = ComplxPlacer::new(cfg_r).resume(&d, state).unwrap();

        assert_eq!(
            reference.legal, resumed.legal,
            "resume must be byte-identical"
        );
        assert_eq!(reference.upper, resumed.upper);
        assert_eq!(reference.lower, resumed.lower);
        assert_eq!(reference.trace, resumed.trace);
        assert_eq!(reference.iterations, resumed.iterations);
        assert_eq!(
            reference.final_lambda.to_bits(),
            resumed.final_lambda.to_bits()
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn resume_rejects_mismatched_design_and_config() {
        use crate::config::CheckpointConfig;

        let d = small(6);
        let other = small(7);
        let dir = std::env::temp_dir().join(format!("complx-placer-mm-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("m.ckpt");
        let cfg = PlacerConfig {
            max_iterations: 20,
            checkpoint: Some(CheckpointConfig::new(&path, 2)),
            ..PlacerConfig::fast()
        };
        ComplxPlacer::new(cfg.clone()).place(&d).unwrap();
        let (state, _) = ckpt::load_checkpoint(&path).unwrap();

        let err = ComplxPlacer::new(cfg.clone())
            .resume(&other, state.clone())
            .unwrap_err();
        assert!(
            matches!(err, PlaceError::CheckpointMismatch { .. }),
            "got {err}"
        );
        assert_eq!(err.exit_code(), 9);

        let other_cfg = PlacerConfig {
            max_iterations: 25,
            ..cfg
        };
        let err = ComplxPlacer::new(other_cfg).resume(&d, state).unwrap_err();
        assert!(
            matches!(err, PlaceError::CheckpointMismatch { .. }),
            "got {err}"
        );
        let _ = std::fs::remove_dir_all(&dir);
    }
}
