//! Assembly of the end-of-run [`RunReport`] manifest from placer types.
//!
//! The `complx-obs` crate defines the report container and its JSON schema
//! but knows nothing about designs or placements; this module fills the
//! generic sections (design stats, configuration, metrics, iteration trace,
//! solver records) from a [`PlacementOutcome`].

use complx_netlist::Design;
use complx_obs::{Harvest, JsonValue, RunReport};

use crate::config::{GridSchedule, Interconnect, LambdaMode, PlacerConfig};
use crate::placer::PlacementOutcome;

/// Design statistics as a JSON object (the report's `design` section).
pub fn design_json(design: &Design) -> JsonValue {
    let core = design.core();
    JsonValue::object(vec![
        ("name", design.name().into()),
        ("cells", design.num_cells().into()),
        ("movable_cells", design.movable_cells().len().into()),
        ("nets", design.num_nets().into()),
        ("pins", design.num_pins().into()),
        ("core_width", core.width().into()),
        ("core_height", core.height().into()),
        ("row_height", design.row_height().into()),
        ("target_density", design.target_density().into()),
    ])
}

/// Configuration summary as a JSON object (the report's `config` section).
pub fn config_json(cfg: &PlacerConfig) -> JsonValue {
    let interconnect = match cfg.interconnect {
        Interconnect::Quadratic(m) => format!("quadratic({m:?})"),
        Interconnect::LogSumExp { gamma_rows } => format!("log-sum-exp(gamma_rows={gamma_rows})"),
        Interconnect::BetaRegularized { beta_rows2 } => {
            format!("beta-regularized(beta_rows2={beta_rows2})")
        }
        Interconnect::PNorm { p } => format!("p-norm(p={p})"),
    };
    let lambda_mode = match cfg.lambda_mode {
        LambdaMode::Complx { h_factor } => format!("complx(h={h_factor})"),
        LambdaMode::Arithmetic { step } => format!("arithmetic(step={step})"),
        LambdaMode::Geometric { ratio } => format!("geometric(ratio={ratio})"),
    };
    let grid = match cfg.grid {
        GridSchedule::CoarseToFine {
            start_fraction,
            growth,
        } => format!("coarse-to-fine(start={start_fraction},growth={growth})"),
        GridSchedule::Fixed { fraction } => format!("fixed(fraction={fraction})"),
    };
    JsonValue::object(vec![
        ("interconnect", interconnect.into()),
        ("lambda_mode", lambda_mode.into()),
        ("projection", cfg.projection.to_string().into()),
        ("grid", grid.into()),
        ("max_iterations", cfg.max_iterations.into()),
        ("gap_tolerance", cfg.gap_tolerance.into()),
        ("overflow_tolerance", cfg.overflow_tolerance.into()),
        ("cg_tolerance", cfg.cg_tolerance.into()),
        ("cg_max_iterations", cfg.cg_max_iterations.into()),
        ("per_macro_lambda", cfg.per_macro_lambda.into()),
        ("shred_macros", cfg.shred_macros.into()),
        ("detail_each_iteration", cfg.detail_each_iteration.into()),
        ("final_detail", cfg.final_detail.into()),
        ("routability", cfg.routability.is_some().into()),
        ("max_recoveries", cfg.max_recoveries.into()),
        (
            "time_budget",
            cfg.time_budget.map_or(JsonValue::Null, JsonValue::from),
        ),
    ])
}

/// Parallel-runtime accounting as a JSON object (the report's
/// `extra.parallel` section): configured thread count, detected hardware
/// parallelism, and per-kernel speedup estimates.
///
/// Parallel kernels time their worker jobs under a `chunks` span via the
/// observability carrier, so for each harvested `<parent>/chunks` path the
/// ratio of summed worker-busy seconds to the parent's wall-clock seconds
/// estimates the achieved parallelism of that kernel (≈1.0 when running
/// on one thread).
pub fn parallel_json(harvest: Option<&Harvest>) -> JsonValue {
    let mut phases = Vec::new();
    if let Some(h) = harvest {
        for p in &h.phases {
            if let Some(parent) = p.path.strip_suffix("/chunks") {
                let wall = h.phase(parent).map_or(0.0, |pp| pp.total_seconds);
                let parallelism = if wall > 0.0 {
                    p.total_seconds / wall
                } else {
                    0.0
                };
                phases.push(JsonValue::object(vec![
                    ("path", parent.into()),
                    ("busy_seconds", p.total_seconds.into()),
                    ("wall_seconds", wall.into()),
                    ("parallelism", parallelism.into()),
                ]));
            }
        }
    }
    JsonValue::object(vec![
        ("threads", complx_par::threads().into()),
        ("available", complx_par::available().into()),
        ("phases", JsonValue::Arr(phases)),
    ])
}

/// Builds the full run manifest for one placement outcome.
///
/// `config` is `None` for baselines that run without a [`PlacerConfig`];
/// `harvest` is `None` when no observability pipeline was armed (the
/// report then carries metrics and the iteration trace but no phase
/// timings); `total_seconds` is the caller's wall clock for the run.
pub fn run_report(
    design: &Design,
    config: Option<&PlacerConfig>,
    outcome: &PlacementOutcome,
    harvest: Option<Harvest>,
    total_seconds: f64,
) -> RunReport {
    let mut report = RunReport::new("complx");
    report.total_seconds = total_seconds;
    report.stop_reason = outcome.stop_reason.to_string();
    report.design = design_json(design);
    report.config = config.map_or(JsonValue::Null, config_json);
    report.metrics = JsonValue::object(vec![
        ("hpwl", outcome.metrics.hpwl.into()),
        ("weighted_hpwl", outcome.metrics.weighted_hpwl.into()),
        ("scaled_hpwl", outcome.metrics.scaled_hpwl.into()),
        ("overflow_percent", outcome.metrics.overflow_percent.into()),
        ("iterations", outcome.iterations.into()),
        ("final_lambda", outcome.final_lambda.into()),
        ("converged", outcome.converged.into()),
        ("recoveries", outcome.recoveries.into()),
        ("global_seconds", outcome.global_seconds.into()),
        ("detail_seconds", outcome.detail_seconds.into()),
    ]);
    report.iterations = JsonValue::Arr(
        outcome
            .trace
            .records()
            .iter()
            .map(|r| {
                JsonValue::object(vec![
                    ("iteration", r.iteration.into()),
                    ("lambda", r.lambda.into()),
                    ("phi_lower", r.phi_lower.into()),
                    ("phi_upper", r.phi_upper.into()),
                    ("pi", r.pi.into()),
                    ("lagrangian", r.lagrangian.into()),
                    ("overflow", r.overflow.into()),
                    ("bins", r.bins.into()),
                ])
            })
            .collect(),
    );
    let totals = outcome.solver_totals();
    let mut extra = vec![("parallel", parallel_json(harvest.as_ref()))];
    // Memory attribution only exists while `--profile-mem` keeps the
    // tracking allocator armed; reports from unprofiled runs stay free of
    // a section that would be all zeros.
    if complx_obs::prof::mem_profiling() {
        extra.push(("memory", complx_obs::prof::memory_json(harvest.as_ref())));
    }
    extra.extend(vec![
        (
            "solver",
            JsonValue::object(vec![
                ("solves", totals.solves.into()),
                ("cg_iterations", totals.cg_iterations.into()),
                ("clamped_diagonals", totals.clamped_diagonals.into()),
                ("breakdowns", totals.breakdowns.into()),
                ("unconverged", totals.unconverged.into()),
                (
                    "worst_relative_residual",
                    totals.worst_relative_residual.into(),
                ),
            ]),
        ),
        (
            "solves",
            JsonValue::Arr(
                outcome
                    .solves
                    .iter()
                    .map(|s| {
                        JsonValue::object(vec![
                            ("iteration", s.iteration.into()),
                            ("iterations_x", s.iterations_x.into()),
                            ("iterations_y", s.iterations_y.into()),
                            ("relative_residual", s.relative_residual.into()),
                            ("clamped_diagonals", s.clamped_diagonals.into()),
                            ("converged", s.converged.into()),
                            ("breakdown", s.breakdown.into()),
                        ])
                    })
                    .collect(),
            ),
        ),
    ]);
    report.extra = JsonValue::object(extra);
    if let Some(h) = harvest {
        report = report.with_harvest(h);
    }
    report
}

/// Appends a section to the report's `extra` object (used by the CLI for
/// the `--profile` timeline, which only the caller holds).
pub fn attach_extra(report: &mut RunReport, key: &str, value: JsonValue) {
    if let JsonValue::Obj(fields) = &mut report.extra {
        fields.push((key.to_string(), value));
    } else {
        report.extra = JsonValue::object(vec![(key, value)]);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::PlacerConfig;
    use crate::placer::ComplxPlacer;
    use complx_netlist::generator::GeneratorConfig;
    use complx_obs::parse;

    #[test]
    fn report_covers_run_and_round_trips() {
        let d = GeneratorConfig::small("rep", 11).generate();
        let cfg = PlacerConfig::fast();
        complx_obs::install(Vec::new());
        let t0 = std::time::Instant::now();
        let outcome = ComplxPlacer::new(cfg.clone()).place(&d).expect("places");
        let harvest = complx_obs::harvest().expect("armed");
        let total = t0.elapsed().as_secs_f64();
        let report = run_report(&d, Some(&cfg), &outcome, Some(harvest), total);

        // Phase accounting: the `place` span exists and nests iterations.
        assert!(report.phase_seconds("place") > 0.0);
        assert!(report.phase("place/iteration").is_some());
        assert!(report.counter("cg.solves") > 0);
        assert!(report.counter("place.iterations") as usize == outcome.iterations);
        // Instrumented root time stays within the run's wall clock.
        assert!(report.instrumented_seconds() <= total * 1.05);

        // Manifest round-trips through the JSON layer.
        let text = report.to_json_string();
        let doc = parse(&text).expect("valid JSON");
        let back = complx_obs::RunReport::from_json(&doc).expect("schema");
        assert_eq!(back.phases, report.phases);
        assert_eq!(back.counters, report.counters);
        assert_eq!(
            back.design.get("cells").and_then(JsonValue::as_i64),
            Some(d.num_cells() as i64)
        );
        assert_eq!(
            back.metrics.get("hpwl").and_then(JsonValue::as_f64),
            Some(outcome.metrics.hpwl)
        );
        let iters = back.iterations.as_array().expect("array");
        assert_eq!(iters.len(), outcome.trace.records().len());
        assert!(back.stop_reason.contains(&outcome.stop_reason.to_string()));
    }

    #[test]
    fn report_without_harvest_or_config_still_builds() {
        let d = GeneratorConfig::small("rep2", 12).generate();
        let outcome = crate::baselines::RqlLike {
            max_iterations: 10,
            ..Default::default()
        }
        .place(&d);
        let report = run_report(&d, None, &outcome, None, 1.0);
        assert!(report.phases.is_empty());
        assert_eq!(report.config, JsonValue::Null);
        let doc = parse(&report.to_json_string()).expect("valid JSON");
        assert!(complx_obs::RunReport::from_json(&doc).is_ok());
    }

    #[test]
    fn parallel_section_records_thread_count_and_kernels() {
        let d = GeneratorConfig::small("rep4", 14).generate();
        let cfg = PlacerConfig::fast();
        complx_obs::install(Vec::new());
        let _g = complx_par::with_threads(3);
        let outcome = ComplxPlacer::new(cfg.clone()).place(&d).expect("places");
        let harvest = complx_obs::harvest().expect("armed");
        let report = run_report(&d, Some(&cfg), &outcome, Some(harvest), 1.0);
        let par = report.extra.get("parallel").expect("parallel section");
        assert_eq!(par.get("threads").and_then(JsonValue::as_i64), Some(3));
        assert!(
            par.get("available")
                .and_then(JsonValue::as_i64)
                .unwrap_or(0)
                >= 1
        );
        let phases = par
            .get("phases")
            .and_then(JsonValue::as_array)
            .expect("phase array");
        // The small design clears the B2B net-count gate, so at least the
        // stamping kernel must show up with busy time attributed.
        assert!(!phases.is_empty(), "no parallel kernels recorded");
        for ph in phases {
            assert!(ph.get("path").and_then(JsonValue::as_str).is_some());
            assert!(
                ph.get("busy_seconds")
                    .and_then(JsonValue::as_f64)
                    .unwrap_or(-1.0)
                    >= 0.0
            );
            assert!(
                ph.get("parallelism")
                    .and_then(JsonValue::as_f64)
                    .unwrap_or(-1.0)
                    >= 0.0
            );
        }
    }

    #[test]
    fn solver_stats_survive_in_extra_section() {
        let d = GeneratorConfig::small("rep3", 13).generate();
        let cfg = PlacerConfig::fast();
        let outcome = ComplxPlacer::new(cfg.clone()).place(&d).expect("places");
        assert!(!outcome.solves.is_empty(), "bootstrap records at least");
        let totals = outcome.solver_totals();
        assert!(totals.cg_iterations > 0);
        let report = run_report(&d, Some(&cfg), &outcome, None, 1.0);
        let solver = report.extra.get("solver").expect("solver totals");
        assert_eq!(
            solver.get("solves").and_then(JsonValue::as_i64),
            Some(totals.solves as i64)
        );
        let solves = report
            .extra
            .get("solves")
            .and_then(JsonValue::as_array)
            .expect("records");
        assert_eq!(solves.len(), outcome.solves.len());
    }
}
