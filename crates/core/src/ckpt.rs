//! Crash-safe checkpointing of the λ-loop state (`complx-ckpt/v1`).
//!
//! A checkpoint captures everything the primal-dual loop needs to continue
//! from iteration `k + 1` exactly as the uninterrupted run would: both
//! iterates and the best feasible one, the λ schedule's internal state, the
//! recovery state (CG tolerance, recovery and stagnation counters), and
//! the trace/solver records accumulated so far. Because the models are
//! stateless between `minimize` calls (they linearize against the incoming
//! placement) and the parallel runtime is bit-deterministic for any thread
//! count, restoring this state reproduces the remaining iterations
//! *byte-identically* — the acceptance criterion the resume tests enforce.
//!
//! # On-disk format
//!
//! Hand-rolled and dependency-free, little-endian throughout:
//!
//! ```text
//! magic   b"complx-ckpt/v1\n"                      (15 bytes)
//! count   u32    number of sections
//! section tag:u32  len:u64  payload:[u8; len]      (repeated `count` times)
//! crc     u64    FNV-1a 64 over every preceding byte
//! ```
//!
//! Section tags: 1 META (design/config hash, generation, iteration),
//! 2 SCALARS, 3 LOWER, 4 UPPER, 5 BEST (placements as `n, xs[n], ys[n]`),
//! 6 TRACE, 7 SOLVES. All seven must appear exactly once; unknown tags,
//! duplicates, and trailing bytes are rejected. Floats travel as IEEE-754
//! bit patterns (`f64::to_bits`), so the round trip is exact.
//!
//! # Durability protocol
//!
//! [`CheckpointWriter`] writes to `<path>.tmp`, fsyncs, rotates the current
//! file to `<path>.prev`, renames the temp file into place, and fsyncs the
//! directory (best effort). A crash at any point leaves at least one
//! complete earlier generation: [`load_checkpoint`] falls back to
//! `<path>.prev` when the primary file is missing, truncated, or fails the
//! checksum.

use std::fmt;
use std::fs;
use std::io::Write as _;
use std::path::{Path, PathBuf};

use complx_netlist::Placement;

use crate::config::CheckpointConfig;
use crate::faults::FaultKind;
use crate::solves::SolveRecord;
use crate::trace::{IterationRecord, Trace};

/// The version-bearing file magic.
pub const MAGIC: &[u8] = b"complx-ckpt/v1\n";

const TAG_META: u32 = 1;
const TAG_SCALARS: u32 = 2;
const TAG_LOWER: u32 = 3;
const TAG_UPPER: u32 = 4;
const TAG_BEST: u32 = 5;
const TAG_TRACE: u32 = 6;
const TAG_SOLVES: u32 = 7;

/// Why a checkpoint failed to load or validate.
#[derive(Debug)]
#[non_exhaustive]
pub enum CkptError {
    /// The file could not be read.
    Io(std::io::Error),
    /// The file does not start with the `complx-ckpt/v1` magic (wrong file
    /// or a future/incompatible format version).
    BadMagic,
    /// The file ends before the declared structure does.
    Truncated,
    /// The FNV-1a checksum does not match — torn write or bit rot.
    Checksum,
    /// The structure is internally inconsistent (unknown or duplicate
    /// section, length mismatch, trailing bytes).
    Malformed(String),
}

impl fmt::Display for CkptError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CkptError::Io(e) => write!(f, "i/o error reading checkpoint: {e}"),
            CkptError::BadMagic => f.write_str("not a complx-ckpt/v1 file"),
            CkptError::Truncated => f.write_str("checkpoint file is truncated"),
            CkptError::Checksum => f.write_str("checkpoint checksum mismatch"),
            CkptError::Malformed(why) => write!(f, "malformed checkpoint: {why}"),
        }
    }
}

impl std::error::Error for CkptError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            CkptError::Io(e) => Some(e),
            _ => None,
        }
    }
}

/// The complete loop state captured at the bottom of λ-loop iteration
/// [`Self::iteration`], after the schedule advanced for the next iteration.
#[derive(Debug, Clone, PartialEq)]
pub struct CheckpointState {
    /// Hash of the design the run was placing (see [`design_hash`]).
    pub design_hash: u64,
    /// Hash of the determinism-relevant configuration (see [`config_hash`]).
    pub config_hash: u64,
    /// Rotation generation (1-based, monotonically increasing per write).
    pub generation: u64,
    /// The completed λ-loop iteration; resume continues at `iteration + 1`.
    pub iteration: usize,
    /// λ after the post-iteration advance (the value iteration `k + 1`
    /// will use).
    pub lambda: f64,
    /// The schedule's initial multiplier `λ_1`.
    pub lambda_1: f64,
    /// The schedule's Formula 12 increment scale `h`.
    pub h: f64,
    /// The penalty `Π_k` the next advance compares against.
    pub pi_prev: f64,
    /// Current CG tolerance (tightened by each divergence recovery).
    pub cg_tol: f64,
    /// Divergence recoveries executed so far.
    pub recoveries: usize,
    /// Iterations since the best feasible iterate last improved.
    pub stale: usize,
    /// HPWL of the best feasible iterate.
    pub best_phi_upper: f64,
    /// λ used by the checkpointed iteration (for reporting).
    pub final_lambda: f64,
    /// The lower-bound (analytic) iterate.
    pub lower: Placement,
    /// The upper-bound (feasible) iterate — next iteration's anchors.
    pub upper: Placement,
    /// The best feasible iterate seen so far.
    pub best_upper: Placement,
    /// The convergence trace accumulated so far.
    pub trace: Trace,
    /// The solver records accumulated so far.
    pub solves: Vec<SolveRecord>,
}

// ---------------------------------------------------------------------------
// Encoding

struct Enc {
    buf: Vec<u8>,
}

impl Enc {
    fn new() -> Self {
        Self { buf: Vec::new() }
    }
    fn u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }
    fn u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }
    fn f64(&mut self, v: f64) {
        self.u64(v.to_bits());
    }
    fn usize(&mut self, v: usize) {
        self.u64(v as u64);
    }
    fn placement(&mut self, p: &Placement) {
        self.usize(p.len());
        for &x in p.xs() {
            self.f64(x);
        }
        for &y in p.ys() {
            self.f64(y);
        }
    }
    fn section(&mut self, tag: u32, payload: Enc) {
        self.u32(tag);
        self.u64(payload.buf.len() as u64);
        self.buf.extend_from_slice(&payload.buf);
    }
}

/// Serializes a state to the `complx-ckpt/v1` byte format (checksummed,
/// ready to write to disk).
pub fn encode(state: &CheckpointState) -> Vec<u8> {
    let mut out = Enc::new();
    out.buf.extend_from_slice(MAGIC);
    out.u32(7); // section count

    let mut meta = Enc::new();
    meta.u64(state.design_hash);
    meta.u64(state.config_hash);
    meta.u64(state.generation);
    meta.usize(state.iteration);
    out.section(TAG_META, meta);

    let mut sc = Enc::new();
    sc.f64(state.lambda);
    sc.f64(state.lambda_1);
    sc.f64(state.h);
    sc.f64(state.pi_prev);
    sc.f64(state.cg_tol);
    sc.f64(state.best_phi_upper);
    sc.f64(state.final_lambda);
    sc.usize(state.recoveries);
    sc.usize(state.stale);
    out.section(TAG_SCALARS, sc);

    for (tag, p) in [
        (TAG_LOWER, &state.lower),
        (TAG_UPPER, &state.upper),
        (TAG_BEST, &state.best_upper),
    ] {
        let mut e = Enc::new();
        e.placement(p);
        out.section(tag, e);
    }

    let mut tr = Enc::new();
    tr.usize(state.trace.len());
    for r in state.trace.records() {
        tr.usize(r.iteration);
        tr.f64(r.lambda);
        tr.f64(r.phi_lower);
        tr.f64(r.phi_upper);
        tr.f64(r.pi);
        tr.f64(r.lagrangian);
        tr.f64(r.overflow);
        tr.usize(r.bins);
    }
    out.section(TAG_TRACE, tr);

    let mut sv = Enc::new();
    sv.usize(state.solves.len());
    for r in &state.solves {
        sv.usize(r.iteration);
        sv.usize(r.iterations_x);
        sv.usize(r.iterations_y);
        sv.f64(r.relative_residual);
        sv.usize(r.clamped_diagonals);
        sv.buf.push(u8::from(r.converged));
        sv.buf.push(u8::from(r.breakdown));
    }
    out.section(TAG_SOLVES, sv);

    let crc = fnv1a(&out.buf);
    out.u64(crc);
    out.buf
}

// ---------------------------------------------------------------------------
// Decoding

struct Dec<'a> {
    data: &'a [u8],
    pos: usize,
}

impl<'a> Dec<'a> {
    fn new(data: &'a [u8]) -> Self {
        Self { data, pos: 0 }
    }
    fn remaining(&self) -> usize {
        self.data.len().saturating_sub(self.pos)
    }
    fn take(&mut self, n: usize) -> Result<&'a [u8], CkptError> {
        let end = self.pos.checked_add(n).ok_or(CkptError::Truncated)?;
        if end > self.data.len() {
            return Err(CkptError::Truncated);
        }
        let s = &self.data[self.pos..end];
        self.pos = end;
        Ok(s)
    }
    fn u8(&mut self) -> Result<u8, CkptError> {
        Ok(self.take(1)?[0])
    }
    fn u32(&mut self) -> Result<u32, CkptError> {
        let b = self.take(4)?;
        let a: [u8; 4] = b
            .try_into()
            .map_err(|_| CkptError::Malformed("u32 slice".into()))?;
        Ok(u32::from_le_bytes(a))
    }
    fn u64(&mut self) -> Result<u64, CkptError> {
        let b = self.take(8)?;
        let a: [u8; 8] = b
            .try_into()
            .map_err(|_| CkptError::Malformed("u64 slice".into()))?;
        Ok(u64::from_le_bytes(a))
    }
    fn f64(&mut self) -> Result<f64, CkptError> {
        Ok(f64::from_bits(self.u64()?))
    }
    /// A count that must be representable and small enough that the
    /// remaining bytes could hold `width` bytes per element.
    fn count(&mut self, width: usize) -> Result<usize, CkptError> {
        let v = self.u64()?;
        let n = usize::try_from(v).map_err(|_| CkptError::Malformed("count overflow".into()))?;
        if n.checked_mul(width)
            .is_none_or(|need| need > self.remaining())
        {
            return Err(CkptError::Malformed(format!(
                "count {n} exceeds remaining payload"
            )));
        }
        Ok(n)
    }
    fn placement(&mut self) -> Result<Placement, CkptError> {
        let n = self.count(16)?;
        let mut xs = Vec::with_capacity(n);
        for _ in 0..n {
            xs.push(self.f64()?);
        }
        let mut ys = Vec::with_capacity(n);
        for _ in 0..n {
            ys.push(self.f64()?);
        }
        Ok(Placement::from_coords(xs, ys))
    }
    fn finish_section(&self) -> Result<(), CkptError> {
        if self.remaining() != 0 {
            return Err(CkptError::Malformed(format!(
                "{} trailing bytes in section",
                self.remaining()
            )));
        }
        Ok(())
    }
}

/// Parses and validates `complx-ckpt/v1` bytes.
pub fn decode(bytes: &[u8]) -> Result<CheckpointState, CkptError> {
    if bytes.len() < MAGIC.len() {
        return Err(CkptError::Truncated);
    }
    if &bytes[..MAGIC.len()] != MAGIC {
        return Err(CkptError::BadMagic);
    }
    if bytes.len() < MAGIC.len() + 4 + 8 {
        return Err(CkptError::Truncated);
    }
    let (body, crc_bytes) = bytes.split_at(bytes.len() - 8);
    let stored: [u8; 8] = crc_bytes
        .try_into()
        .map_err(|_| CkptError::Malformed("crc slice".into()))?;
    if fnv1a(body) != u64::from_le_bytes(stored) {
        return Err(CkptError::Checksum);
    }

    let mut dec = Dec::new(&body[MAGIC.len()..]);
    let count = dec.u32()?;
    if count != 7 {
        return Err(CkptError::Malformed(format!(
            "expected 7 sections, found {count}"
        )));
    }
    let mut sections: [Option<&[u8]>; 7] = [None; 7];
    for _ in 0..count {
        let tag = dec.u32()?;
        let len = dec.u64()?;
        let len = usize::try_from(len).map_err(|_| CkptError::Truncated)?;
        let payload = dec.take(len)?;
        let idx = match tag {
            TAG_META => 0,
            TAG_SCALARS => 1,
            TAG_LOWER => 2,
            TAG_UPPER => 3,
            TAG_BEST => 4,
            TAG_TRACE => 5,
            TAG_SOLVES => 6,
            other => {
                return Err(CkptError::Malformed(format!("unknown section tag {other}")));
            }
        };
        if sections[idx].replace(payload).is_some() {
            return Err(CkptError::Malformed(format!("duplicate section tag {tag}")));
        }
    }
    dec.finish_section()?;
    let section = |idx: usize, tag: u32| -> Result<&[u8], CkptError> {
        sections[idx].ok_or(CkptError::Malformed(format!("missing section tag {tag}")))
    };

    let mut meta = Dec::new(section(0, TAG_META)?);
    let design_hash = meta.u64()?;
    let config_hash = meta.u64()?;
    let generation = meta.u64()?;
    let iteration =
        usize::try_from(meta.u64()?).map_err(|_| CkptError::Malformed("iteration".into()))?;
    meta.finish_section()?;

    let mut sc = Dec::new(section(1, TAG_SCALARS)?);
    let lambda = sc.f64()?;
    let lambda_1 = sc.f64()?;
    let h = sc.f64()?;
    let pi_prev = sc.f64()?;
    let cg_tol = sc.f64()?;
    let best_phi_upper = sc.f64()?;
    let final_lambda = sc.f64()?;
    let recoveries =
        usize::try_from(sc.u64()?).map_err(|_| CkptError::Malformed("recoveries".into()))?;
    let stale = usize::try_from(sc.u64()?).map_err(|_| CkptError::Malformed("stale".into()))?;
    sc.finish_section()?;

    let read_placement = |idx: usize, tag: u32| -> Result<Placement, CkptError> {
        let mut d = Dec::new(section(idx, tag)?);
        let p = d.placement()?;
        d.finish_section()?;
        Ok(p)
    };
    let lower = read_placement(2, TAG_LOWER)?;
    let upper = read_placement(3, TAG_UPPER)?;
    let best_upper = read_placement(4, TAG_BEST)?;
    if lower.len() != upper.len() || lower.len() != best_upper.len() {
        return Err(CkptError::Malformed(format!(
            "placement lengths disagree: {} / {} / {}",
            lower.len(),
            upper.len(),
            best_upper.len()
        )));
    }

    let mut tr = Dec::new(section(5, TAG_TRACE)?);
    let n = tr.count(64)?;
    let mut trace = Trace::new();
    for _ in 0..n {
        let iteration =
            usize::try_from(tr.u64()?).map_err(|_| CkptError::Malformed("trace iter".into()))?;
        let lambda = tr.f64()?;
        let phi_lower = tr.f64()?;
        let phi_upper = tr.f64()?;
        let pi = tr.f64()?;
        let lagrangian = tr.f64()?;
        let overflow = tr.f64()?;
        let bins =
            usize::try_from(tr.u64()?).map_err(|_| CkptError::Malformed("trace bins".into()))?;
        trace.push(IterationRecord {
            iteration,
            lambda,
            phi_lower,
            phi_upper,
            pi,
            lagrangian,
            overflow,
            bins,
        });
    }
    tr.finish_section()?;

    let mut sv = Dec::new(section(6, TAG_SOLVES)?);
    let n = sv.count(42)?;
    let mut solves = Vec::with_capacity(n);
    for _ in 0..n {
        let iteration =
            usize::try_from(sv.u64()?).map_err(|_| CkptError::Malformed("solve iter".into()))?;
        let iterations_x =
            usize::try_from(sv.u64()?).map_err(|_| CkptError::Malformed("solve x".into()))?;
        let iterations_y =
            usize::try_from(sv.u64()?).map_err(|_| CkptError::Malformed("solve y".into()))?;
        let relative_residual = sv.f64()?;
        let clamped_diagonals =
            usize::try_from(sv.u64()?).map_err(|_| CkptError::Malformed("solve clamps".into()))?;
        let converged = sv.u8()? != 0;
        let breakdown = sv.u8()? != 0;
        solves.push(SolveRecord {
            iteration,
            iterations_x,
            iterations_y,
            relative_residual,
            clamped_diagonals,
            converged,
            breakdown,
        });
    }
    sv.finish_section()?;

    Ok(CheckpointState {
        design_hash,
        config_hash,
        generation,
        iteration,
        lambda,
        lambda_1,
        h,
        pi_prev,
        cg_tol,
        recoveries,
        stale,
        best_phi_upper,
        final_lambda,
        lower,
        upper,
        best_upper,
        trace,
        solves,
    })
}

// ---------------------------------------------------------------------------
// Durable write + load

/// `<path>.prev` — the previous checkpoint generation.
pub fn prev_path(path: &Path) -> PathBuf {
    let mut os = path.as_os_str().to_os_string();
    os.push(".prev");
    PathBuf::from(os)
}

fn tmp_path(path: &Path) -> PathBuf {
    let mut os = path.as_os_str().to_os_string();
    os.push(".tmp");
    PathBuf::from(os)
}

/// Writes checkpoint generations with the atomic tmp + rotate + rename
/// protocol described in the module docs. Owned by one placement run.
#[derive(Debug)]
pub(crate) struct CheckpointWriter {
    path: PathBuf,
    every: usize,
    generation: u64,
}

impl CheckpointWriter {
    /// A writer for `cfg`, continuing from `generation` (0 for a fresh
    /// run; a resumed run passes the loaded state's generation so the
    /// rotation sequence continues).
    pub(crate) fn new(cfg: &CheckpointConfig, generation: u64) -> Self {
        Self {
            path: cfg.path.clone(),
            every: cfg.every.max(1),
            generation,
        }
    }

    /// Whether iteration `k` is a checkpoint boundary.
    pub(crate) fn due(&self, k: usize) -> bool {
        k.is_multiple_of(self.every)
    }

    /// The generation number the next [`Self::write`] will commit as.
    pub(crate) fn next_generation(&self) -> u64 {
        self.generation + 1
    }

    /// Encodes and durably commits `state`, rotating the previous file to
    /// `<path>.prev`. `fault` injects a checkpoint-I/O failure (see
    /// [`FaultKind::is_checkpoint_fault`]). Returns the committed size.
    pub(crate) fn write(
        &mut self,
        state: &CheckpointState,
        fault: Option<FaultKind>,
    ) -> std::io::Result<u64> {
        let mut bytes = encode(state);
        match fault {
            Some(FaultKind::CkptShortWrite) => {
                // A torn write committed by a stray rename: half the file.
                bytes.truncate(bytes.len() / 2);
            }
            Some(FaultKind::CkptCorrupt) => {
                // Silent media corruption after the checksum was computed.
                if let Some(b) = bytes.get_mut(MAGIC.len() + 7) {
                    *b ^= 0x40;
                }
            }
            Some(FaultKind::CkptWriteError) => {
                return Err(std::io::Error::other(FaultKind::CkptWriteError.describe()));
            }
            _ => {}
        }
        let tmp = tmp_path(&self.path);
        {
            let mut f = fs::File::create(&tmp)?;
            f.write_all(&bytes)?;
            f.sync_all()?;
        }
        if self.path.exists() {
            fs::rename(&self.path, prev_path(&self.path))?;
        }
        fs::rename(&tmp, &self.path)?;
        // Durability of the renames themselves: fsync the directory. Best
        // effort — some filesystems refuse opening directories.
        if let Some(dir) = self.path.parent() {
            if let Ok(d) = fs::File::open(dir) {
                let _ = d.sync_all();
            }
        }
        self.generation += 1;
        Ok(bytes.len() as u64)
    }
}

/// Loads the checkpoint at `path`, falling back to `<path>.prev` when the
/// primary file is unreadable, truncated, or corrupt. The `bool` reports
/// whether the fallback generation was used. When both generations fail,
/// the *primary* file's error is returned (it is the actionable one).
pub fn load_checkpoint(path: &Path) -> Result<(CheckpointState, bool), CkptError> {
    let read = |p: &Path| -> Result<CheckpointState, CkptError> {
        let bytes = fs::read(p).map_err(CkptError::Io)?;
        decode(&bytes)
    };
    match read(path) {
        Ok(st) => Ok((st, false)),
        Err(primary) => match read(&prev_path(path)) {
            Ok(st) => Ok((st, true)),
            Err(_) => Err(primary),
        },
    }
}

// ---------------------------------------------------------------------------
// Hashing
//
// The canonical implementations live in [`crate::idhash`] (one FNV-1a-64
// shared by checkpoint validation and the serve result cache); these
// re-exports keep the historical `ckpt::` paths working.

pub use crate::idhash::{config_hash, design_hash, fnv1a};

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::PlacerConfig;
    use complx_netlist::generator::GeneratorConfig;

    fn sample_state() -> CheckpointState {
        let mut trace = Trace::new();
        trace.push(IterationRecord {
            iteration: 0,
            lambda: 0.0,
            phi_lower: 100.0,
            phi_upper: 120.0,
            pi: 30.0,
            lagrangian: 100.0,
            overflow: 0.8,
            bins: 4,
        });
        trace.push(IterationRecord {
            iteration: 1,
            lambda: 0.033,
            phi_lower: 101.5,
            phi_upper: 118.25,
            pi: 27.0,
            lagrangian: 102.4,
            overflow: 0.7,
            bins: 5,
        });
        CheckpointState {
            design_hash: 0xdead_beef_cafe_f00d,
            config_hash: 0x0123_4567_89ab_cdef,
            generation: 3,
            iteration: 5,
            lambda: 0.125,
            lambda_1: 0.033,
            h: 0.66,
            pi_prev: 27.0,
            cg_tol: 1e-5,
            recoveries: 1,
            stale: 2,
            best_phi_upper: 118.25,
            final_lambda: 0.1,
            lower: Placement::from_coords(vec![1.0, 2.5, -3.0], vec![0.5, f64::MIN_POSITIVE, 9.0]),
            upper: Placement::from_coords(vec![1.5, 2.0, -2.5], vec![1.0, 2.0, 8.5]),
            best_upper: Placement::from_coords(vec![1.25, 2.25, -2.75], vec![0.75, 1.5, 8.75]),
            trace,
            solves: vec![
                SolveRecord {
                    iteration: 0,
                    iterations_x: 12,
                    iterations_y: 14,
                    relative_residual: 3.2e-6,
                    clamped_diagonals: 0,
                    converged: true,
                    breakdown: false,
                },
                SolveRecord {
                    iteration: 5,
                    iterations_x: 50,
                    iterations_y: 48,
                    relative_residual: 8.8e-4,
                    clamped_diagonals: 2,
                    converged: false,
                    breakdown: false,
                },
            ],
        }
    }

    #[test]
    fn encode_decode_round_trips_exactly() {
        let st = sample_state();
        let bytes = encode(&st);
        assert!(bytes.starts_with(MAGIC));
        let back = decode(&bytes).expect("decode");
        assert_eq!(st, back);
        // Exact bit patterns for every float.
        assert_eq!(st.lower.xs()[1].to_bits(), back.lower.xs()[1].to_bits());
    }

    #[test]
    fn every_truncation_is_rejected() {
        let bytes = encode(&sample_state());
        for cut in 0..bytes.len() {
            assert!(
                decode(&bytes[..cut]).is_err(),
                "truncation to {cut} bytes must not decode"
            );
        }
    }

    #[test]
    fn every_single_bit_flip_is_rejected() {
        let bytes = encode(&sample_state());
        // Flip one bit per byte position; each must be caught by the magic
        // check or the checksum.
        for i in 0..bytes.len() {
            let mut b = bytes.clone();
            b[i] ^= 1 << (i % 8);
            assert!(decode(&b).is_err(), "bit flip at byte {i} must not decode");
        }
    }

    #[test]
    fn wrong_magic_is_bad_magic() {
        let mut bytes = encode(&sample_state());
        bytes[0] = b'X';
        assert!(matches!(decode(&bytes), Err(CkptError::BadMagic)));
    }

    #[test]
    fn writer_rotates_generations_and_loader_falls_back() {
        let dir = std::env::temp_dir().join(format!("complx-ckpt-rotate-{}", std::process::id()));
        fs::create_dir_all(&dir).expect("mkdir");
        let path = dir.join("state.ckpt");
        let cfg = CheckpointConfig::new(&path, 2);
        let mut w = CheckpointWriter::new(&cfg, 0);
        assert!(w.due(2) && w.due(4) && !w.due(3));

        let mut st = sample_state();
        st.generation = w.next_generation();
        st.iteration = 2;
        w.write(&st, None).expect("first write");
        st.generation = w.next_generation();
        st.iteration = 4;
        w.write(&st, None).expect("second write");

        let (loaded, fallback) = load_checkpoint(&path).expect("load");
        assert!(!fallback);
        assert_eq!(loaded.iteration, 4);
        assert_eq!(loaded.generation, 2);
        let (prev, _) = load_checkpoint(&prev_path(&path)).expect("load prev");
        assert_eq!(prev.iteration, 2);

        // Corrupt the primary: the loader must fall back to .prev.
        let mut bytes = fs::read(&path).expect("read");
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0xff;
        fs::write(&path, &bytes).expect("corrupt");
        let (loaded, fallback) = load_checkpoint(&path).expect("fallback load");
        assert!(fallback);
        assert_eq!(loaded.iteration, 2);

        // Corrupt .prev too: now loading fails with the primary's error.
        fs::write(prev_path(&path), b"garbage").expect("corrupt prev");
        assert!(matches!(load_checkpoint(&path), Err(CkptError::Checksum)));
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn injected_io_faults_behave_as_documented() {
        let dir = std::env::temp_dir().join(format!("complx-ckpt-faults-{}", std::process::id()));
        fs::create_dir_all(&dir).expect("mkdir");
        let path = dir.join("state.ckpt");
        let cfg = CheckpointConfig::new(&path, 1);
        let mut w = CheckpointWriter::new(&cfg, 0);
        let mut st = sample_state();

        // A good generation first.
        st.generation = w.next_generation();
        w.write(&st, None).expect("clean write");

        // Short write: commits a truncated file; load falls back.
        st.generation = w.next_generation();
        w.write(&st, Some(FaultKind::CkptShortWrite))
            .expect("short write still commits");
        let (_, fallback) = load_checkpoint(&path).expect("fallback");
        assert!(fallback, "short write must fail validation");

        // Write error: nothing committed, primary untouched.
        let before = fs::read(&path).expect("read");
        assert!(w.write(&st, Some(FaultKind::CkptWriteError)).is_err());
        assert_eq!(fs::read(&path).expect("read"), before);

        // Corrupt-on-write: commits a checksum-failing file.
        st.generation = w.next_generation();
        w.write(&st, Some(FaultKind::CkptCorrupt)).expect("commit");
        let bytes = fs::read(&path).expect("read");
        assert!(matches!(decode(&bytes), Err(CkptError::Checksum)));
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn design_hash_distinguishes_designs_and_is_stable() {
        let a = GeneratorConfig::small("ha", 1).generate();
        let a2 = GeneratorConfig::small("ha", 1).generate();
        let b = GeneratorConfig::small("hb", 2).generate();
        assert_eq!(design_hash(&a), design_hash(&a2));
        assert_ne!(design_hash(&a), design_hash(&b));
    }

    #[test]
    fn config_hash_ignores_run_management_fields() {
        let base = PlacerConfig::fast();
        let mut managed = base.clone();
        managed.time_budget = Some(30.0);
        managed.faults = Some(crate::faults::FaultPlan::new().inject(3, FaultKind::Kill));
        managed.checkpoint = Some(CheckpointConfig::new("/tmp/x.ckpt", 5));
        assert_eq!(config_hash(&base), config_hash(&managed));

        let mut different = base.clone();
        different.cg_tolerance *= 10.0;
        assert_ne!(config_hash(&base), config_hash(&different));
        assert_ne!(
            config_hash(&PlacerConfig::fast()),
            config_hash(&PlacerConfig::simpl())
        );
    }
}
