//! Per-iteration linear-solver statistics, aggregated into the
//! [`crate::PlacementOutcome`] instead of being discarded.

use complx_wirelength::MinimizeStats;

/// The solver report of one placement iteration's primal step (both axes).
///
/// Iteration `0` records the λ = 0 bootstrap solves (one record per
/// bootstrap pass); iteration `k ≥ 1` records the primal step of λ-loop
/// iteration `k`. Retried iterations (divergence recovery) contribute one
/// record per attempt.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SolveRecord {
    /// Placement iteration index (0 = bootstrap).
    pub iteration: usize,
    /// CG iterations spent on the x axis.
    pub iterations_x: usize,
    /// CG iterations spent on the y axis.
    pub iterations_y: usize,
    /// The worse of the two axes' final relative residuals.
    pub relative_residual: f64,
    /// Jacobi diagonal clamps across both axes (0 for an SPD system).
    pub clamped_diagonals: usize,
    /// Whether both axis solves converged to tolerance.
    pub converged: bool,
    /// Whether either axis solve broke down numerically.
    pub breakdown: bool,
}

impl SolveRecord {
    /// Tags a [`MinimizeStats`] with its placement iteration.
    pub fn from_stats(iteration: usize, stats: &MinimizeStats) -> Self {
        Self {
            iteration,
            iterations_x: stats.iterations_x,
            iterations_y: stats.iterations_y,
            relative_residual: stats.relative_residual,
            clamped_diagonals: stats.clamped_diagonals,
            converged: stats.converged,
            breakdown: stats.breakdown,
        }
    }
}

/// Run-level totals over a sequence of [`SolveRecord`]s.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct SolverTotals {
    /// Number of primal solves (each covers both axes).
    pub solves: usize,
    /// Total CG iterations across both axes.
    pub cg_iterations: usize,
    /// Total Jacobi diagonal clamps.
    pub clamped_diagonals: usize,
    /// Solves that suffered a numerical breakdown.
    pub breakdowns: usize,
    /// Solves that missed the CG tolerance.
    pub unconverged: usize,
    /// The worst (largest) final relative residual seen.
    pub worst_relative_residual: f64,
}

impl SolverTotals {
    /// Aggregates a record sequence.
    pub fn from_records(records: &[SolveRecord]) -> Self {
        let mut t = Self::default();
        for r in records {
            t.solves += 1;
            t.cg_iterations += r.iterations_x + r.iterations_y;
            t.clamped_diagonals += r.clamped_diagonals;
            t.breakdowns += usize::from(r.breakdown);
            t.unconverged += usize::from(!r.converged);
            if r.relative_residual.is_finite() {
                t.worst_relative_residual = t.worst_relative_residual.max(r.relative_residual);
            }
        }
        t
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(iteration: usize, it_x: usize, it_y: usize, res: f64, ok: bool) -> SolveRecord {
        SolveRecord {
            iteration,
            iterations_x: it_x,
            iterations_y: it_y,
            relative_residual: res,
            clamped_diagonals: 0,
            converged: ok,
            breakdown: false,
        }
    }

    #[test]
    fn totals_aggregate_records() {
        let records = vec![rec(0, 10, 12, 1e-7, true), rec(1, 8, 9, 1e-5, false)];
        let t = SolverTotals::from_records(&records);
        assert_eq!(t.solves, 2);
        assert_eq!(t.cg_iterations, 39);
        assert_eq!(t.unconverged, 1);
        assert_eq!(t.breakdowns, 0);
        assert_eq!(t.worst_relative_residual, 1e-5);
    }

    #[test]
    fn totals_skip_nonfinite_residuals() {
        let t = SolverTotals::from_records(&[rec(1, 1, 1, f64::INFINITY, false)]);
        assert_eq!(t.worst_relative_residual, 0.0);
        assert_eq!(t.unconverged, 1);
    }

    #[test]
    fn from_stats_copies_fields() {
        let stats = complx_wirelength::MinimizeStats {
            iterations_x: 3,
            iterations_y: 4,
            converged: true,
            breakdown: false,
            relative_residual: 2e-7,
            clamped_diagonals: 1,
        };
        let r = SolveRecord::from_stats(5, &stats);
        assert_eq!(r.iteration, 5);
        assert_eq!(r.iterations_x + r.iterations_y, 7);
        assert_eq!(r.clamped_diagonals, 1);
        assert!(r.converged && !r.breakdown);
    }
}
