//! Timing-driven placement (paper Section 5 "Extensions for timing- and
//! power-driven placement" and Section S6).
//!
//! Two mechanisms from the paper compose here:
//!
//! 1. **Net weighting in Φ** — critical nets get larger weights `w_e`
//!    (Formula 1 already carries weights; §S6 demonstrates 1× → 20× → 40×).
//! 2. **Criticality-weighted penalty** — Formula 13 replaces
//!    `λ‖(x,y) − (x°,y°)‖₁` by `λ(γ⃗·|(x,y) − (x°,y°)|)`, and when STA finds
//!    a cell on a violating path its criticality grows:
//!    `γ_i ← γ_i(1 + δ)`.

use complx_netlist::{Design, NetId};
use complx_timing::{DelayModel, TimingGraph};

use crate::config::PlacerConfig;
use crate::error::PlaceError;
use crate::placer::{ComplxPlacer, PlacementOutcome};

/// Timing-driven placement flow: place → STA → boost criticalities and net
/// weights → re-place, for a configured number of rounds.
#[derive(Debug, Clone, PartialEq)]
pub struct TimingDrivenPlacer {
    /// Base placer configuration.
    pub placer: PlacerConfig,
    /// Delay model for STA between placement rounds.
    pub delay: DelayModel,
    /// Number of STA/replace rounds after the initial placement.
    pub rounds: usize,
    /// Criticality increment δ (Formula 13's `γ_i ← γ_i(1+δ)`).
    pub delta: f64,
    /// Net-weight multiplier applied to critical-path nets each round.
    pub net_weight_boost: f64,
    /// Slack threshold (as a fraction of the critical delay) below which a
    /// cell counts as critical.
    pub critical_fraction: f64,
}

impl Default for TimingDrivenPlacer {
    fn default() -> Self {
        Self {
            placer: PlacerConfig::default(),
            delay: DelayModel::default(),
            rounds: 2,
            delta: 0.5,
            net_weight_boost: 2.0,
            critical_fraction: 0.1,
        }
    }
}

/// Result of a timing-driven flow.
#[derive(Debug, Clone)]
pub struct TimingDrivenOutcome {
    /// The best placement outcome over all rounds (by critical delay, ties
    /// broken toward lower HPWL). Net-weighting rounds explore — on small
    /// designs a round can regress — so the flow keeps the best snapshot.
    pub outcome: PlacementOutcome,
    /// Critical path delay after each round (index 0 = initial placement).
    pub critical_delays: Vec<f64>,
    /// The critical delay of the returned (best) outcome.
    pub best_delay: f64,
    /// The nets that were boosted in the final round.
    pub boosted_nets: Vec<NetId>,
}

impl TimingDrivenPlacer {
    /// Runs the full flow on a design.
    ///
    /// # Errors
    ///
    /// Propagates any [`PlaceError`] from the underlying placement rounds.
    pub fn place(&self, design: &Design) -> Result<TimingDrivenOutcome, PlaceError> {
        let mut working = design.clone();
        let mut criticality = vec![1.0f64; design.num_cells()];
        let mut outcome = ComplxPlacer::new(self.placer.clone()).place(&working)?;
        let mut delays = Vec::with_capacity(self.rounds + 1);
        let mut boosted: Vec<NetId> = Vec::new();

        let graph = TimingGraph::new(design);
        let d0 = graph
            .analyze(design, &outcome.legal, &self.delay)
            .critical_path_delay;
        delays.push(d0);
        let mut best = (d0, outcome.hpwl_legal, outcome.clone());

        for _ in 0..self.rounds {
            let report = graph.analyze(design, &outcome.legal, &self.delay);
            let crit = report.criticality();
            // Update per-cell criticality multipliers (Formula 13).
            let threshold = 1.0 - self.critical_fraction;
            for (i, &c) in crit.iter().enumerate() {
                if c >= threshold {
                    criticality[i] *= 1.0 + self.delta;
                }
            }
            // Slack-based net weighting over ALL near-critical nets (the
            // convergent-scheme style of Chan–Cong–Radke, which the paper
            // defers to): each net's weight grows with its criticality.
            // Boosting only the single worst path whack-a-moles between
            // paths and can diverge.
            let net_crit = complx_timing::net_criticality(design, &report);
            let factors: Vec<f64> = net_crit
                .iter()
                .map(|&c| {
                    if c >= threshold {
                        1.0 + (self.net_weight_boost - 1.0) * c
                    } else {
                        1.0
                    }
                })
                .collect();
            boosted = design
                .net_ids()
                .filter(|n| factors[n.index()] > 1.0)
                .collect();
            working = complx_timing::scale_net_weights(&working, &factors);
            outcome = ComplxPlacer::new(self.placer.clone())
                .place_with_criticality(&working, Some(&criticality))?;
            let delay = graph
                .analyze(design, &outcome.legal, &self.delay)
                .critical_path_delay;
            delays.push(delay);
            if delay < best.0 || (delay == best.0 && outcome.hpwl_legal < best.1) {
                best = (delay, outcome.hpwl_legal, outcome.clone());
            }
        }

        Ok(TimingDrivenOutcome {
            outcome: best.2,
            critical_delays: delays,
            best_delay: best.0,
            boosted_nets: boosted,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use complx_netlist::generator::GeneratorConfig;

    #[test]
    fn timing_flow_runs_and_tracks_delays() {
        let d = GeneratorConfig::small("td", 81).generate();
        let flow = TimingDrivenPlacer {
            placer: PlacerConfig::fast(),
            rounds: 1,
            ..TimingDrivenPlacer::default()
        };
        let res = flow.place(&d).unwrap();
        assert_eq!(res.critical_delays.len(), 2);
        assert!(res
            .critical_delays
            .iter()
            .all(|&t| t.is_finite() && t > 0.0));
        assert!(res.outcome.hpwl_legal > 0.0);
    }

    #[test]
    fn boosting_shortens_selected_path_without_hpwl_blowup() {
        // The §S6 claim: large weights on a few nets shrink those paths
        // while total HPWL stays put.
        let d = GeneratorConfig::small("td2", 82).generate();
        let base = ComplxPlacer::new(PlacerConfig::fast()).place(&d).unwrap();
        let graph = TimingGraph::new(&d);
        let model = DelayModel::default();
        let path = graph.critical_path(&d, &base.legal, &model);
        let nets = graph.path_nets(&path);
        if nets.is_empty() {
            return; // degenerate tiny design; nothing to boost
        }
        let path_len = |p: &complx_netlist::Placement| -> f64 {
            nets.iter()
                .map(|&n| complx_netlist::hpwl::net_hpwl(&d, p, n))
                .sum()
        };
        let before = path_len(&base.legal);
        let boosted_design = complx_timing::reweight_nets(&d, &nets, 20.0);
        let boosted = ComplxPlacer::new(PlacerConfig::fast())
            .place(&boosted_design)
            .unwrap();
        let after = path_len(&boosted.legal);
        assert!(
            after < before * 1.02,
            "boosted path length {after} vs original {before}"
        );
        // Total HPWL unaffected within a few percent (measure on d's
        // unit-weight HPWL in both cases).
        let h_before = complx_netlist::hpwl::hpwl(&d, &base.legal);
        let h_after = complx_netlist::hpwl::hpwl(&d, &boosted.legal);
        assert!(
            h_after < h_before * 1.1,
            "total HPWL blew up: {h_before} -> {h_after}"
        );
    }
}
