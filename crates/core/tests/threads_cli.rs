//! End-to-end determinism of the `complx` binary across thread counts:
//! `--threads 1` (exact sequential path) and `--threads 4` must produce
//! byte-identical solutions, traces and metrics, and the run report must
//! record the configured thread count.

use std::path::Path;
use std::process::Command;

use complx_netlist::{bookshelf, generator::GeneratorConfig};
use complx_obs::JsonValue;

fn complx_bin() -> &'static str {
    env!("CARGO_BIN_EXE_complx")
}

fn temp_dir(tag: &str) -> std::path::PathBuf {
    let d = std::env::temp_dir().join(format!("complx_threads_{tag}_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&d);
    std::fs::create_dir_all(&d).expect("temp dir");
    d
}

/// Runs the placer at a given thread count; returns (stdout, trace CSV,
/// solution .pl bytes, report JSON text).
fn run_at(aux: &Path, dir: &Path, threads: usize) -> (String, String, Vec<u8>, String) {
    let out_dir = dir.join(format!("sol_t{threads}"));
    let trace = dir.join(format!("trace_t{threads}.csv"));
    let report = dir.join(format!("report_t{threads}.json"));
    let output = Command::new(complx_bin())
        .arg(aux)
        .args(["--max-iterations", "20", "-q"])
        .args(["--threads", &threads.to_string()])
        .arg("-o")
        .arg(&out_dir)
        .arg("--trace")
        .arg(&trace)
        .arg("--report")
        .arg(&report)
        .env_remove("COMPLX_THREADS")
        .output()
        .expect("binary runs");
    assert!(
        output.status.success(),
        "--threads {threads} failed: {}",
        String::from_utf8_lossy(&output.stderr)
    );
    let stdout = String::from_utf8_lossy(&output.stdout).into_owned();
    let csv = std::fs::read_to_string(&trace).expect("trace written");
    let pl = std::fs::read(out_dir.join("tdet.pl")).expect("solution written");
    let report_text = std::fs::read_to_string(&report).expect("report written");
    (stdout, csv, pl, report_text)
}

#[test]
fn threads_1_and_4_produce_identical_results() {
    let dir = temp_dir("det");
    // Large enough to clear the B2B net-count gate so the parallel
    // stamping path actually runs at --threads 4.
    let design = GeneratorConfig::small("tdet", 21).generate();
    let aux = bookshelf::write_bundle(&design, &design.initial_placement(), &dir)
        .expect("bundle written");

    let (stdout1, trace1, pl1, _) = run_at(&aux, &dir, 1);
    let (stdout4, trace4, pl4, report4) = run_at(&aux, &dir, 4);

    assert!(stdout1.contains("HPWL"), "stdout: {stdout1}");
    assert_eq!(
        stdout1, stdout4,
        "final metrics differ across thread counts"
    );
    assert_eq!(
        trace1, trace4,
        "iteration traces differ across thread counts"
    );
    assert_eq!(pl1, pl4, "solution placements differ across thread counts");

    // The manifest records the configured thread count.
    let doc = complx_obs::parse(&report4).expect("report parses");
    let threads = doc
        .get("extra")
        .and_then(|e| e.get("parallel"))
        .and_then(|p| p.get("threads"))
        .and_then(JsonValue::as_i64);
    assert_eq!(threads, Some(4), "report should record --threads 4");

    std::fs::remove_dir_all(&dir).expect("cleanup");
}

#[test]
fn threads_flag_rejects_zero_and_garbage() {
    for bad in ["0", "zero", "-3"] {
        let output = Command::new(complx_bin())
            .args(["input.aux", "--threads", bad])
            .output()
            .expect("binary runs");
        assert!(!output.status.success(), "--threads {bad} should fail");
        let stderr = String::from_utf8_lossy(&output.stderr);
        assert!(stderr.contains("--threads"), "stderr: {stderr}");
    }
}

#[test]
fn complx_threads_env_var_is_honoured() {
    let dir = temp_dir("env");
    let design = GeneratorConfig::small("tenv", 22).generate();
    let aux = bookshelf::write_bundle(&design, &design.initial_placement(), &dir)
        .expect("bundle written");
    let report = dir.join("report.json");
    let output = Command::new(complx_bin())
        .arg(&aux)
        .args(["--max-iterations", "5", "-q"])
        .arg("--report")
        .arg(&report)
        .env("COMPLX_THREADS", "3")
        .output()
        .expect("binary runs");
    assert!(
        output.status.success(),
        "stderr: {}",
        String::from_utf8_lossy(&output.stderr)
    );
    let doc = complx_obs::parse(&std::fs::read_to_string(&report).expect("report"))
        .expect("report parses");
    let threads = doc
        .get("extra")
        .and_then(|e| e.get("parallel"))
        .and_then(|p| p.get("threads"))
        .and_then(JsonValue::as_i64);
    assert_eq!(
        threads,
        Some(3),
        "COMPLX_THREADS should set the thread count"
    );
    std::fs::remove_dir_all(&dir).expect("cleanup");
}
