//! Property test for the fault-tolerant solve pipeline: `place()` on
//! randomly generated tiny designs must never panic — every run either
//! converges to a placement with finite coordinates or reports a
//! structured [`PlaceError`].

use complx_netlist::{CellKind, Design, DesignBuilder, Point, Rect};
use complx_place::{ComplxPlacer, PlacerConfig};
use proptest::prelude::*;

/// A declarative description of a random tiny design, sampled by the
/// strategy below and turned into a [`Design`] by [`build_design`].
#[derive(Debug, Clone)]
struct TinyDesign {
    core_w: f64,
    core_h: f64,
    cell_widths: Vec<f64>,
    with_fixed: bool,
    net_picks: Vec<(usize, usize, usize)>,
}

fn tiny_design() -> impl Strategy<Value = TinyDesign> {
    (
        12.0f64..40.0,
        4.0f64..12.0,
        collection::vec(0.5f64..2.5, 2..=8),
        0u8..2,
        collection::vec((0usize..100, 0usize..100, 0usize..100), 1..=6),
    )
        .prop_map(
            |(core_w, core_h, cell_widths, fixed, net_picks)| TinyDesign {
                core_w,
                core_h,
                cell_widths,
                with_fixed: fixed == 1,
                net_picks,
            },
        )
}

fn build_design(t: &TinyDesign) -> Design {
    let core = Rect::new(0.0, 0.0, t.core_w, t.core_h);
    let mut b = DesignBuilder::new("prop", core, 1.0);
    let mut ids = Vec::new();
    for (i, &w) in t.cell_widths.iter().enumerate() {
        let id = b
            .add_cell(format!("c{i}"), w, 1.0, CellKind::Movable)
            .expect("movable cell");
        ids.push(id);
    }
    if t.with_fixed {
        let id = b
            .add_fixed_cell("pad", 1.0, 1.0, CellKind::Fixed, Point::new(0.5, 0.5))
            .expect("fixed cell");
        ids.push(id);
    }
    // Each pick selects two or three distinct cells for a net; picks that
    // collapse to fewer than two distinct cells are dropped (a one-pin net
    // is not constructible through the builder by design).
    let mut nets = 0usize;
    for (k, &(a, bi, c)) in t.net_picks.iter().enumerate() {
        let n = ids.len();
        let (a, bi, c) = (a % n, bi % n, c % n);
        let mut pins = vec![(ids[a], 0.0, 0.0)];
        if bi != a {
            pins.push((ids[bi], 0.0, 0.0));
        }
        if c != a && c != bi {
            pins.push((ids[c], 0.0, 0.0));
        }
        if pins.len() >= 2 {
            b.add_net(format!("n{k}"), 1.0, pins).expect("net");
            nets += 1;
        }
    }
    if nets == 0 {
        // Guarantee at least one net so the quadratic model is non-trivial.
        b.add_net(
            "n_fallback",
            1.0,
            vec![(ids[0], 0.0, 0.0), (ids[1], 0.0, 0.0)],
        )
        .expect("fallback net");
    }
    b.build().expect("design builds")
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]
    #[test]
    fn place_never_panics_and_yields_finite_coordinates(t in tiny_design()) {
        let design = build_design(&t);
        let mut cfg = PlacerConfig::fast();
        cfg.max_iterations = 8;
        match ComplxPlacer::new(cfg).place(&design) {
            Ok(out) => {
                for id in design.cell_ids() {
                    let legal = out.legal.position(id);
                    let upper = out.upper.position(id);
                    prop_assert!(legal.x.is_finite() && legal.y.is_finite(),
                        "non-finite legal position for cell {id:?}");
                    prop_assert!(upper.x.is_finite() && upper.y.is_finite(),
                        "non-finite upper-bound position for cell {id:?}");
                }
                prop_assert!(out.hpwl_legal.is_finite() && out.hpwl_legal >= 0.0);
            }
            Err(e) => {
                // A structured error is an acceptable outcome for a
                // degenerate random design; a panic is not. The message
                // must be one line (the CLI prints it verbatim).
                let msg = e.to_string();
                prop_assert!(!msg.is_empty() && !msg.contains('\n'), "{msg}");
            }
        }
    }
}
