//! Integration tests for the fault-injection harness: every fault class
//! must be detected, recovered, and reported — never panicked on — and the
//! run must still deliver a finite, legal placement.

use complx_netlist::generator::GeneratorConfig;
use complx_netlist::Design;
use complx_place::{ComplxPlacer, FaultKind, FaultPlan, PlaceError, PlacerConfig, StopReason};

fn small(seed: u64) -> Design {
    GeneratorConfig::small("flt", seed).generate()
}

fn placement_is_finite(design: &Design, p: &complx_netlist::Placement) -> bool {
    design.cell_ids().all(|id| {
        let pt = p.position(id);
        pt.x.is_finite() && pt.y.is_finite()
    })
}

fn run_with_plan(plan: FaultPlan, max_recoveries: usize) -> PlacerConfig {
    PlacerConfig {
        faults: Some(plan),
        max_recoveries,
        ..PlacerConfig::fast()
    }
}

#[test]
fn nan_gradient_fault_recovers_to_finite_placement() {
    let d = small(1);
    let cfg = run_with_plan(FaultPlan::new().inject(2, FaultKind::NanGradient), 3);
    let out = ComplxPlacer::new(cfg).place(&d).expect("must recover");
    assert_eq!(out.stop_reason, StopReason::Recovered);
    assert_eq!(out.recoveries, 1);
    assert!(
        placement_is_finite(&d, &out.legal),
        "legal placement finite"
    );
    assert!(placement_is_finite(&d, &out.upper));
    assert!(out.hpwl_legal.is_finite() && out.hpwl_legal > 0.0);
}

#[test]
fn cg_stall_fault_recovers_to_finite_placement() {
    let d = small(2);
    let cfg = run_with_plan(FaultPlan::new().inject(3, FaultKind::CgStall), 3);
    let out = ComplxPlacer::new(cfg).place(&d).expect("must recover");
    assert_eq!(out.stop_reason, StopReason::Recovered);
    assert_eq!(out.recoveries, 1);
    assert!(placement_is_finite(&d, &out.legal));
    assert!(out.hpwl_legal.is_finite() && out.hpwl_legal > 0.0);
}

#[test]
fn projection_stall_fault_recovers_to_finite_placement() {
    let d = small(3);
    let cfg = run_with_plan(FaultPlan::new().inject(2, FaultKind::ProjectionStall), 3);
    let out = ComplxPlacer::new(cfg).place(&d).expect("must recover");
    assert_eq!(out.stop_reason, StopReason::Recovered);
    assert_eq!(out.recoveries, 1);
    assert!(placement_is_finite(&d, &out.legal));
    assert!(out.hpwl_legal.is_finite() && out.hpwl_legal > 0.0);
}

#[test]
fn multiple_fault_classes_in_one_run_all_recover() {
    let d = small(4);
    let plan = FaultPlan::new()
        .inject(2, FaultKind::NanGradient)
        .inject(4, FaultKind::CgStall)
        .inject(6, FaultKind::ProjectionStall);
    let cfg = run_with_plan(plan, 5);
    let out = ComplxPlacer::new(cfg).place(&d).expect("must recover");
    assert_eq!(out.stop_reason, StopReason::Recovered);
    assert_eq!(out.recoveries, 3);
    assert!(placement_is_finite(&d, &out.legal));
}

#[test]
fn recovery_quality_stays_close_to_clean_run() {
    // A single injected fault must not wreck result quality: the recovery
    // restores the best feasible iterate and re-converges.
    let d = small(5);
    let clean = ComplxPlacer::new(PlacerConfig::fast())
        .place(&d)
        .expect("clean run");
    let cfg = run_with_plan(FaultPlan::new().inject(2, FaultKind::NanGradient), 3);
    let faulted = ComplxPlacer::new(cfg).place(&d).expect("must recover");
    assert!(
        faulted.hpwl_legal < clean.hpwl_legal * 1.25,
        "faulted {} vs clean {}",
        faulted.hpwl_legal,
        clean.hpwl_legal
    );
}

#[test]
fn exhausted_recovery_budget_reports_diverged_with_best_placement() {
    let d = small(6);
    // More faults than the recovery budget allows.
    let plan = FaultPlan::new()
        .inject(1, FaultKind::NanGradient)
        .inject(2, FaultKind::NanGradient)
        .inject(3, FaultKind::NanGradient);
    let cfg = run_with_plan(plan, 2);
    let err = ComplxPlacer::new(cfg).place(&d).expect_err("must diverge");
    match &err {
        PlaceError::Diverged {
            recoveries, best, ..
        } => {
            assert_eq!(*recoveries, 2);
            let best = best.as_deref().expect("best feasible iterate attached");
            assert!(placement_is_finite(&d, best));
        }
        other => panic!("expected Diverged, got {other:?}"),
    }
    assert_eq!(err.kind(), "diverged");
    assert_eq!(err.exit_code(), 5);
    assert!(err.best_placement().is_some());
    // One-line structured message, no panic, no backtrace.
    assert!(!err.to_string().contains('\n'));
}

#[test]
fn zero_recovery_budget_fails_on_first_fault() {
    let d = small(7);
    let cfg = run_with_plan(FaultPlan::new().inject(1, FaultKind::CgStall), 0);
    let err = ComplxPlacer::new(cfg).place(&d).expect_err("must diverge");
    assert!(matches!(err, PlaceError::Diverged { recoveries: 0, .. }));
}

#[test]
fn fault_free_plan_changes_nothing() {
    let d = small(8);
    let clean = ComplxPlacer::new(PlacerConfig::fast())
        .place(&d)
        .expect("clean");
    let with_empty_plan = ComplxPlacer::new(PlacerConfig {
        faults: Some(FaultPlan::new()),
        ..PlacerConfig::fast()
    })
    .place(&d)
    .expect("empty plan");
    assert_eq!(clean.legal, with_empty_plan.legal);
    assert_eq!(clean.recoveries, 0);
    assert_ne!(clean.stop_reason, StopReason::Recovered);
}

#[test]
fn time_budget_zero_times_out_with_structured_error() {
    let d = small(9);
    let cfg = PlacerConfig {
        time_budget: Some(0.0),
        ..PlacerConfig::fast()
    };
    let err = ComplxPlacer::new(cfg).place(&d).expect_err("must time out");
    assert!(matches!(err, PlaceError::TimedOut { .. }));
    assert_eq!(err.exit_code(), 6);
}

#[test]
fn generous_time_budget_does_not_interfere() {
    let d = small(10);
    let cfg = PlacerConfig {
        time_budget: Some(3600.0),
        ..PlacerConfig::fast()
    };
    let out = ComplxPlacer::new(cfg).place(&d).expect("plenty of time");
    assert_ne!(out.stop_reason, StopReason::TimeBudget);
    assert!(out.hpwl_legal > 0.0);
}

#[test]
fn criticality_length_mismatch_is_invalid_design_not_panic() {
    let d = small(11);
    let err = ComplxPlacer::new(PlacerConfig::fast())
        .place_with_criticality(&d, Some(&[1.0, 2.0]))
        .expect_err("wrong length");
    assert!(matches!(err, PlaceError::InvalidDesign { .. }));
    assert_eq!(err.exit_code(), 3);
}

#[test]
fn nan_criticality_is_invalid_design() {
    let d = small(12);
    let crit = vec![f64::NAN; d.num_cells()];
    let err = ComplxPlacer::new(PlacerConfig::fast())
        .place_with_criticality(&d, Some(&crit))
        .expect_err("NaN criticality");
    assert!(matches!(err, PlaceError::InvalidDesign { .. }));
}

#[test]
fn design_with_no_movable_cells_places_trivially_without_panic() {
    use complx_netlist::{CellKind, DesignBuilder, Point, Rect};
    let mut b = DesignBuilder::new("allfixed", Rect::new(0.0, 0.0, 10.0, 10.0), 1.0);
    let f1 = b
        .add_fixed_cell("a", 1.0, 1.0, CellKind::Fixed, Point::new(1.0, 1.0))
        .expect("fixed cell");
    let f2 = b
        .add_fixed_cell("b", 1.0, 1.0, CellKind::Fixed, Point::new(5.0, 5.0))
        .expect("fixed cell");
    b.add_net("n", 1.0, vec![(f1, 0.0, 0.0), (f2, 0.0, 0.0)])
        .expect("net");
    let d = b.build().expect("all-fixed design builds");
    // Nothing to move is not an error: the run converges immediately on the
    // fixed positions with a finite HPWL.
    let out = ComplxPlacer::new(PlacerConfig::fast())
        .place(&d)
        .expect("trivial placement");
    assert_eq!(out.iterations, 0);
    assert!(out.hpwl_legal.is_finite());
    assert!(placement_is_finite(&d, &out.legal));
}

#[test]
fn kill_fault_aborts_with_exit_code_10_before_iteration_work() {
    let d = small(13);
    let cfg = run_with_plan(FaultPlan::new().inject(3, FaultKind::Kill), 3);
    let err = ComplxPlacer::new(cfg)
        .place(&d)
        .expect_err("must be killed");
    assert!(matches!(err, PlaceError::Killed { iteration: 3 }), "{err}");
    assert_eq!(err.exit_code(), 10);
    assert_eq!(err.kind(), "killed");
}

#[test]
fn checkpoint_short_write_is_caught_at_load_and_prev_generation_survives() {
    use complx_place::{ckpt, CheckpointConfig};
    let dir = std::env::temp_dir().join(format!("complx-faults-short-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("scratch dir");
    let path = dir.join("c.ckpt");

    let d = small(14);
    let cfg = PlacerConfig {
        max_iterations: 20,
        checkpoint: Some(CheckpointConfig::new(&path, 2)),
        // The short write lands on the generation written at iteration 6,
        // leaving a truncated primary; the kill right after stops any later
        // good generation from papering over it, so the iteration-4
        // generation in `.prev` must carry the load.
        faults: Some(
            FaultPlan::new()
                .inject(6, FaultKind::CkptShortWrite)
                .inject(7, FaultKind::Kill),
        ),
        ..PlacerConfig::fast()
    };
    let err = ComplxPlacer::new(cfg)
        .place(&d)
        .expect_err("killed after the short write");
    assert!(matches!(err, PlaceError::Killed { iteration: 7 }), "{err}");

    assert!(ckpt::decode(&std::fs::read(&path).expect("primary exists")).is_err());
    let (state, used_prev) = complx_place::load_checkpoint(&path).expect(".prev fallback");
    assert!(
        used_prev,
        "loader must fall back to the previous generation"
    );
    assert_eq!(state.iteration, 4);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn checkpoint_write_error_only_counts_and_run_completes() {
    use complx_place::CheckpointConfig;
    let dir = std::env::temp_dir().join(format!("complx-faults-werr-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("scratch dir");
    let path = dir.join("c.ckpt");

    let d = small(15);
    let cfg = PlacerConfig {
        max_iterations: 20,
        checkpoint: Some(CheckpointConfig::new(&path, 2)),
        faults: Some(FaultPlan::new().inject(4, FaultKind::CkptWriteError)),
        ..PlacerConfig::fast()
    };
    let out = ComplxPlacer::new(cfg)
        .place(&d)
        .expect("write error must not abort the run");
    assert!(out.hpwl_legal.is_finite());
    // The failed generation was never committed; an earlier or later good
    // generation is still loadable.
    let (state, _) = complx_place::load_checkpoint(&path).expect("a good generation loads");
    assert!(state.iteration >= 2);
    let _ = std::fs::remove_dir_all(&dir);
}
