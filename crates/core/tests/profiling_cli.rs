//! Profiling must observe, never perturb: a full `complx` run with
//! `--profile` + `--profile-mem` produces byte-identical solution and
//! trace artifacts to an unprofiled run, at 1 and 4 threads, and the
//! profiled run's artifacts (folded stacks, `extra.memory`,
//! `extra.timeline`) are well-formed.

use std::path::Path;
use std::process::Command;

use complx_netlist::{bookshelf, generator::GeneratorConfig};
use complx_obs::JsonValue;

fn complx_bin() -> &'static str {
    env!("CARGO_BIN_EXE_complx")
}

fn temp_dir(tag: &str) -> std::path::PathBuf {
    let d = std::env::temp_dir().join(format!("complx_prof_{tag}_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&d);
    std::fs::create_dir_all(&d).expect("temp dir");
    d
}

struct RunArtifacts {
    trace: String,
    pl: Vec<u8>,
    report: JsonValue,
    folded: Option<String>,
}

fn run_at(aux: &Path, dir: &Path, threads: usize, profiled: bool) -> RunArtifacts {
    let tag = format!("t{threads}_{}", if profiled { "prof" } else { "plain" });
    let out_dir = dir.join(format!("sol_{tag}"));
    let trace = dir.join(format!("trace_{tag}.csv"));
    let report = dir.join(format!("report_{tag}.json"));
    let folded = dir.join(format!("prof_{tag}.folded"));
    let mut cmd = Command::new(complx_bin());
    cmd.arg(aux)
        .args(["--max-iterations", "20", "-q"])
        .args(["--threads", &threads.to_string()])
        .arg("-o")
        .arg(&out_dir)
        .arg("--trace")
        .arg(&trace)
        .arg("--report")
        .arg(&report)
        .env_remove("COMPLX_THREADS");
    if profiled {
        cmd.arg("--profile").arg(&folded).arg("--profile-mem");
    }
    let output = cmd.output().expect("binary runs");
    assert!(
        output.status.success(),
        "{tag} failed: {}",
        String::from_utf8_lossy(&output.stderr)
    );
    RunArtifacts {
        trace: std::fs::read_to_string(&trace).expect("trace written"),
        pl: std::fs::read(out_dir.join("pdet.pl")).expect("solution written"),
        report: complx_obs::parse(&std::fs::read_to_string(&report).expect("report written"))
            .expect("report parses"),
        folded: profiled.then(|| std::fs::read_to_string(&folded).expect("folded file written")),
    }
}

#[test]
fn profiling_on_vs_off_is_byte_identical_at_1_and_4_threads() {
    let dir = temp_dir("bitid");
    let design = GeneratorConfig::small("pdet", 21).generate();
    let aux = bookshelf::write_bundle(&design, &design.initial_placement(), &dir)
        .expect("bundle written");

    let plain_t1 = run_at(&aux, &dir, 1, false);
    let prof_t1 = run_at(&aux, &dir, 1, true);
    let plain_t4 = run_at(&aux, &dir, 4, false);
    let prof_t4 = run_at(&aux, &dir, 4, true);

    for (plain, prof, threads) in [(&plain_t1, &prof_t1, 1), (&plain_t4, &prof_t4, 4)] {
        assert_eq!(
            plain.trace, prof.trace,
            "--profile/--profile-mem perturbed the trace at {threads} threads"
        );
        assert_eq!(
            plain.pl, prof.pl,
            "--profile/--profile-mem perturbed the solution at {threads} threads"
        );
    }
    // And across thread counts, profiled or not.
    assert_eq!(prof_t1.pl, prof_t4.pl);
    assert_eq!(prof_t1.trace, plain_t4.trace);

    // The profiled run's artifacts are present and well-formed.
    for (prof, threads) in [(&prof_t1, 1), (&prof_t4, 4)] {
        let folded = prof.folded.as_deref().expect("folded output");
        assert!(
            folded.lines().any(|l| l.starts_with("place;iteration ")),
            "collapsed stacks at {threads} threads miss the iteration phase:\n{folded}"
        );
        for line in folded.lines() {
            let (stack, us) = line.rsplit_once(' ').expect("`stack us` shape");
            assert!(!stack.contains('/'));
            us.parse::<u64>().expect("integer microseconds");
        }
        let extra = prof.report.get("extra").expect("extra section");
        let mem = extra.get("memory").expect("extra.memory present");
        assert_eq!(
            mem.get("tracked").and_then(JsonValue::as_bool),
            Some(true),
            "the CLI installs the tracking allocator"
        );
        let tracked_allocs = mem
            .get("totals")
            .and_then(|t| t.get("allocs"))
            .and_then(JsonValue::as_i64)
            .expect("totals.allocs");
        assert!(tracked_allocs > 0, "allocations were counted");
        let buckets = extra
            .get("timeline")
            .and_then(|t| t.get("iterations"))
            .and_then(JsonValue::as_array)
            .expect("extra.timeline.iterations");
        assert!(
            !buckets.is_empty(),
            "timeline recorded iteration buckets at {threads} threads"
        );
        let first = &buckets[0];
        assert_eq!(
            first.get("iteration").and_then(JsonValue::as_i64),
            Some(1),
            "first bucket is iteration 1"
        );
        assert!(first
            .get("phases")
            .and_then(JsonValue::as_array)
            .is_some_and(|p| !p.is_empty()));
    }

    // The unprofiled run carries neither profiling section.
    let extra = plain_t1.report.get("extra").expect("extra section");
    assert!(extra.get("memory").is_none());
    assert!(extra.get("timeline").is_none());

    std::fs::remove_dir_all(&dir).expect("cleanup");
}

#[test]
fn profile_flag_requires_a_path() {
    let output = Command::new(complx_bin())
        .args(["input.aux", "--profile"])
        .output()
        .expect("binary runs");
    assert!(
        !output.status.success(),
        "--profile without a path must fail"
    );
    let stderr = String::from_utf8_lossy(&output.stderr);
    assert!(stderr.contains("--profile"), "stderr: {stderr}");
}
