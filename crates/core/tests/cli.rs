//! End-to-end tests of the `complx` command-line placer binary.

use std::process::Command;

use complx_netlist::{bookshelf, generator::GeneratorConfig, hpwl};

fn complx_bin() -> &'static str {
    env!("CARGO_BIN_EXE_complx")
}

fn temp_dir(tag: &str) -> std::path::PathBuf {
    let d = std::env::temp_dir().join(format!("complx_cli_{tag}_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&d);
    std::fs::create_dir_all(&d).expect("temp dir");
    d
}

#[test]
fn places_a_bookshelf_bundle_end_to_end() {
    let dir = temp_dir("e2e");
    let design = GeneratorConfig::small("cli", 7).generate();
    let aux = bookshelf::write_bundle(&design, &design.initial_placement(), &dir)
        .expect("bundle written");
    let out_dir = dir.join("solution");
    let trace = dir.join("trace.csv");

    let output = Command::new(complx_bin())
        .arg(&aux)
        .args(["--max-iterations", "25", "-q"])
        .arg("-o")
        .arg(&out_dir)
        .arg("--trace")
        .arg(&trace)
        .output()
        .expect("binary runs");
    assert!(
        output.status.success(),
        "stderr: {}",
        String::from_utf8_lossy(&output.stderr)
    );
    let stdout = String::from_utf8_lossy(&output.stdout);
    assert!(stdout.contains("HPWL"), "stdout: {stdout}");

    // The solution bundle re-reads with a sensible HPWL.
    let sol = bookshelf::read_aux(out_dir.join("cli.aux")).expect("solution parses");
    let h = hpwl::hpwl(&sol.design, &sol.placement);
    assert!(h > 0.0);

    // The trace CSV has a header and rows.
    let csv = std::fs::read_to_string(&trace).expect("trace written");
    assert!(csv.starts_with("iteration,lambda"));
    assert!(csv.lines().count() > 2);

    std::fs::remove_dir_all(&dir).expect("cleanup");
}

#[test]
fn missing_input_fails_with_nonzero_exit() {
    let output = Command::new(complx_bin())
        .arg("/nonexistent/never.aux")
        .output()
        .expect("binary runs");
    assert!(!output.status.success());
    let stderr = String::from_utf8_lossy(&output.stderr);
    assert!(stderr.contains("cannot read"), "stderr: {stderr}");
}

#[test]
fn unknown_flag_shows_usage() {
    let output = Command::new(complx_bin())
        .arg("--frobnicate")
        .output()
        .expect("binary runs");
    assert!(!output.status.success());
    let stderr = String::from_utf8_lossy(&output.stderr);
    assert!(stderr.contains("usage:"), "stderr: {stderr}");
}

#[test]
fn simpl_and_lse_modes_run() {
    let dir = temp_dir("modes");
    let design = GeneratorConfig::small("modes", 8).generate();
    let aux = bookshelf::write_bundle(&design, &design.initial_placement(), &dir)
        .expect("bundle written");
    for extra in [vec!["--simpl"], vec!["--lse", "4"], vec!["--no-detail"]] {
        let out_dir = dir.join(format!("out_{}", extra[0].trim_start_matches('-')));
        let output = Command::new(complx_bin())
            .arg(&aux)
            .args(["-q", "--max-iterations", "15"])
            .args(&extra)
            .arg("-o")
            .arg(&out_dir)
            .output()
            .expect("binary runs");
        assert!(
            output.status.success(),
            "mode {extra:?} failed: {}",
            String::from_utf8_lossy(&output.stderr)
        );
    }
    std::fs::remove_dir_all(&dir).expect("cleanup");
}
