//! End-to-end tests of the `complx` command-line placer binary.

use std::process::Command;

use complx_netlist::{bookshelf, generator::GeneratorConfig, hpwl};

fn complx_bin() -> &'static str {
    env!("CARGO_BIN_EXE_complx")
}

fn temp_dir(tag: &str) -> std::path::PathBuf {
    let d = std::env::temp_dir().join(format!("complx_cli_{tag}_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&d);
    std::fs::create_dir_all(&d).expect("temp dir");
    d
}

#[test]
fn places_a_bookshelf_bundle_end_to_end() {
    let dir = temp_dir("e2e");
    let design = GeneratorConfig::small("cli", 7).generate();
    let aux = bookshelf::write_bundle(&design, &design.initial_placement(), &dir)
        .expect("bundle written");
    let out_dir = dir.join("solution");
    let trace = dir.join("trace.csv");

    let output = Command::new(complx_bin())
        .arg(&aux)
        .args(["--max-iterations", "25", "-q"])
        .arg("-o")
        .arg(&out_dir)
        .arg("--trace")
        .arg(&trace)
        .output()
        .expect("binary runs");
    assert!(
        output.status.success(),
        "stderr: {}",
        String::from_utf8_lossy(&output.stderr)
    );
    let stdout = String::from_utf8_lossy(&output.stdout);
    assert!(stdout.contains("HPWL"), "stdout: {stdout}");

    // The solution bundle re-reads with a sensible HPWL.
    let sol = bookshelf::read_aux(out_dir.join("cli.aux")).expect("solution parses");
    let h = hpwl::hpwl(&sol.design, &sol.placement);
    assert!(h > 0.0);

    // The trace CSV has a header and rows.
    let csv = std::fs::read_to_string(&trace).expect("trace written");
    assert!(csv.starts_with("iteration,lambda"));
    assert!(csv.lines().count() > 2);

    std::fs::remove_dir_all(&dir).expect("cleanup");
}

#[test]
fn report_events_and_json_trace_are_written_and_parse() {
    let dir = temp_dir("obs");
    let design = GeneratorConfig::small("obs", 9).generate();
    let aux = bookshelf::write_bundle(&design, &design.initial_placement(), &dir)
        .expect("bundle written");
    let report_path = dir.join("report.json");
    let events_path = dir.join("events.jsonl");
    let trace_path = dir.join("trace.json");

    let output = Command::new(complx_bin())
        .arg(&aux)
        .args(["--max-iterations", "10"])
        .arg("-o")
        .arg(dir.join("solution"))
        .arg("--report")
        .arg(&report_path)
        .arg("--events")
        .arg(&events_path)
        .arg("--trace")
        .arg(&trace_path)
        .output()
        .expect("binary runs");
    assert!(
        output.status.success(),
        "stderr: {}",
        String::from_utf8_lossy(&output.stderr)
    );
    // A non-quiet instrumented run prints the phase-time breakdown.
    let stderr = String::from_utf8_lossy(&output.stderr);
    assert!(stderr.contains("phase time breakdown"), "stderr: {stderr}");
    assert!(stderr.contains("cg.solves"), "stderr: {stderr}");

    // The report manifest parses back through the schema.
    let text = std::fs::read_to_string(&report_path).expect("report written");
    let doc = complx_obs::parse(&text).expect("report is valid JSON");
    let report = complx_obs::RunReport::from_json(&doc).expect("schema matches");
    assert!(!report.phases.is_empty());
    assert!(report.phase_seconds("place") > 0.0);
    assert!(report.phase("place/iteration").is_some());
    assert!(report.counter("place.iterations") > 0);
    assert!(report.total_seconds > 0.0);
    // Instrumented root spans account for (at most) the whole wall clock.
    assert!(report.instrumented_seconds() <= report.total_seconds * 1.05);

    // Every event line is standalone JSON with a `type`; spans and
    // per-iteration events are both present.
    let events = std::fs::read_to_string(&events_path).expect("events written");
    let mut spans = 0usize;
    let mut iterations = 0usize;
    for line in events.lines() {
        let v = complx_obs::parse(line).expect("event line is valid JSON");
        match v.get("type").and_then(complx_obs::JsonValue::as_str) {
            Some("span") => spans += 1,
            Some("iteration") => iterations += 1,
            Some(_) => {}
            None => panic!("event line without type: {line}"),
        }
    }
    assert!(spans > 0, "no span lines in events stream");
    assert_eq!(
        iterations,
        report.counter("place.iterations") as usize,
        "one iteration event per placement iteration"
    );

    // `.json` trace extension selects the JSON serialization.
    let trace = std::fs::read_to_string(&trace_path).expect("trace written");
    let arr = complx_obs::parse(&trace).expect("trace is valid JSON");
    assert!(!arr.as_array().expect("array").is_empty());

    std::fs::remove_dir_all(&dir).expect("cleanup");
}

#[test]
fn missing_input_fails_with_nonzero_exit() {
    let output = Command::new(complx_bin())
        .arg("/nonexistent/never.aux")
        .output()
        .expect("binary runs");
    assert!(!output.status.success());
    let stderr = String::from_utf8_lossy(&output.stderr);
    assert!(stderr.contains("cannot read"), "stderr: {stderr}");
}

#[test]
fn unknown_flag_shows_usage() {
    let output = Command::new(complx_bin())
        .arg("--frobnicate")
        .output()
        .expect("binary runs");
    assert!(!output.status.success());
    let stderr = String::from_utf8_lossy(&output.stderr);
    assert!(stderr.contains("usage:"), "stderr: {stderr}");
}

#[test]
fn simpl_and_lse_modes_run() {
    let dir = temp_dir("modes");
    let design = GeneratorConfig::small("modes", 8).generate();
    let aux = bookshelf::write_bundle(&design, &design.initial_placement(), &dir)
        .expect("bundle written");
    for extra in [vec!["--simpl"], vec!["--lse", "4"], vec!["--no-detail"]] {
        let out_dir = dir.join(format!("out_{}", extra[0].trim_start_matches('-')));
        let output = Command::new(complx_bin())
            .arg(&aux)
            .args(["-q", "--max-iterations", "15"])
            .args(&extra)
            .arg("-o")
            .arg(&out_dir)
            .output()
            .expect("binary runs");
        assert!(
            output.status.success(),
            "mode {extra:?} failed: {}",
            String::from_utf8_lossy(&output.stderr)
        );
    }
    std::fs::remove_dir_all(&dir).expect("cleanup");
}

#[test]
fn exhausted_time_budget_is_a_structured_one_line_error() {
    let dir = temp_dir("budget");
    let design = GeneratorConfig::small("cli_tb", 8).generate();
    let aux = bookshelf::write_bundle(&design, &design.initial_placement(), &dir)
        .expect("bundle written");
    // A microsecond budget expires during bootstrap, before any feasible
    // iterate exists, so the run must fail with the timed-out error.
    let output = Command::new(complx_bin())
        .arg(&aux)
        .args(["--max-seconds", "0.000001", "-q"])
        .output()
        .expect("binary runs");
    assert_eq!(output.status.code(), Some(6), "timed-out exit code");
    let stderr = String::from_utf8_lossy(&output.stderr);
    let line = stderr
        .lines()
        .find(|l| l.starts_with("complx: error["))
        .unwrap_or_else(|| panic!("no structured error line in: {stderr}"));
    assert!(line.contains("error[timed-out]"), "{line}");
    // Structured line, not a panic backtrace.
    assert!(!stderr.contains("panicked"), "{stderr}");
    std::fs::remove_dir_all(&dir).expect("cleanup");
}

#[test]
fn invalid_design_is_a_structured_error_with_exit_code_3() {
    let dir = temp_dir("invalid");
    // Parses fine, but the movable cell is larger than the whole core, so
    // design validation must reject it before any numerics run.
    std::fs::write(
        dir.join("x.aux"),
        "RowBasedPlacement : x.nodes x.nets x.pl x.scl\n",
    )
    .expect("aux");
    std::fs::write(
        dir.join("x.nodes"),
        "UCLA nodes 1.0\nNumNodes : 2\nNumTerminals : 0\na 100 100\nb 2 1\n",
    )
    .expect("nodes");
    std::fs::write(
        dir.join("x.nets"),
        "UCLA nets 1.0\nNumNets : 1\nNumPins : 2\nNetDegree : 2 n0\na B\nb I\n",
    )
    .expect("nets");
    std::fs::write(dir.join("x.pl"), "UCLA pl 1.0\na 0 0 : N\nb 5 0 : N\n").expect("pl");
    std::fs::write(
        dir.join("x.scl"),
        "UCLA scl 1.0\nNumRows : 1\nCoreRow Horizontal\n Coordinate : 0\n Height : 1\n Sitewidth : 1\n SubrowOrigin : 0 NumSites : 10\nEnd\n",
    )
    .expect("scl");

    let output = Command::new(complx_bin())
        .arg(dir.join("x.aux"))
        .arg("-q")
        .output()
        .expect("binary runs");
    assert_eq!(output.status.code(), Some(3), "invalid-design exit code");
    let stderr = String::from_utf8_lossy(&output.stderr);
    assert!(stderr.contains("error[invalid-design]"), "{stderr}");
    assert!(!stderr.contains("panicked"), "{stderr}");
    std::fs::remove_dir_all(&dir).expect("cleanup");
}

#[test]
fn nonpositive_max_seconds_is_a_usage_error() {
    let output = Command::new(complx_bin())
        .args(["in.aux", "--max-seconds", "-5"])
        .output()
        .expect("binary runs");
    assert_eq!(output.status.code(), Some(1));
    let stderr = String::from_utf8_lossy(&output.stderr);
    assert!(stderr.contains("--max-seconds"), "{stderr}");
}

#[test]
fn lse_rejects_nonpositive_and_nonfinite_gamma() {
    for bad in ["-3", "0", "nan", "inf"] {
        let output = Command::new(complx_bin())
            .args(["in.aux", "--lse", bad])
            .output()
            .expect("binary runs");
        assert_eq!(
            output.status.code(),
            Some(1),
            "--lse {bad} must be rejected"
        );
        let stderr = String::from_utf8_lossy(&output.stderr);
        assert!(stderr.contains("finite positive"), "--lse {bad}: {stderr}");
    }
}

#[test]
fn lse_followed_by_flag_uses_default_gamma() {
    // `--lse --simpl` must not claim `--simpl` as the γ argument: parsing
    // succeeds with the default and the run proceeds to input loading.
    let output = Command::new(complx_bin())
        .args(["missing.aux", "--lse", "--simpl"])
        .output()
        .expect("binary runs");
    let stderr = String::from_utf8_lossy(&output.stderr);
    assert!(stderr.contains("cannot read"), "stderr: {stderr}");
}

#[test]
fn checkpoint_every_requires_checkpoint() {
    let output = Command::new(complx_bin())
        .args(["in.aux", "--checkpoint-every", "3"])
        .output()
        .expect("binary runs");
    assert_eq!(output.status.code(), Some(1));
    let stderr = String::from_utf8_lossy(&output.stderr);
    assert!(stderr.contains("requires --checkpoint"), "{stderr}");
}

#[test]
fn kill_resume_workflow_end_to_end() {
    let dir = temp_dir("resume");
    let design = GeneratorConfig::small("cli_rsm", 21).generate();
    let aux = bookshelf::write_bundle(&design, &design.initial_placement(), &dir)
        .expect("bundle written");
    let ckpt = dir.join("run.ckpt");

    // Reference: uninterrupted run with the same checkpoint cadence.
    let ref_dir = dir.join("ref");
    let output = Command::new(complx_bin())
        .arg(&aux)
        .args(["-q", "--max-iterations", "15", "--threads", "2"])
        .arg("--checkpoint")
        .arg(dir.join("ref.ckpt"))
        .args(["--checkpoint-every", "2"])
        .arg("-o")
        .arg(&ref_dir)
        .output()
        .expect("binary runs");
    assert_eq!(
        output.status.code(),
        Some(0),
        "{}",
        String::from_utf8_lossy(&output.stderr)
    );

    // Crash at iteration 5 → exit 10, checkpoint left on disk.
    let output = Command::new(complx_bin())
        .arg(&aux)
        .args(["-q", "--max-iterations", "15", "--threads", "2"])
        .arg("--checkpoint")
        .arg(&ckpt)
        .args(["--checkpoint-every", "2", "--fault-kill-at", "5"])
        .arg("-o")
        .arg(dir.join("kill"))
        .output()
        .expect("binary runs");
    assert_eq!(output.status.code(), Some(10), "killed exit code");
    let stderr = String::from_utf8_lossy(&output.stderr);
    assert!(stderr.contains("error[killed]"), "{stderr}");
    assert!(ckpt.exists(), "killed run must leave its checkpoint behind");

    // Resume under a different configuration → exit 9.
    let output = Command::new(complx_bin())
        .arg(&aux)
        .args(["-q", "--max-iterations", "30", "--threads", "2"])
        .arg("--resume")
        .arg(&ckpt)
        .arg("-o")
        .arg(dir.join("mm"))
        .output()
        .expect("binary runs");
    assert_eq!(output.status.code(), Some(9), "mismatch exit code");
    let stderr = String::from_utf8_lossy(&output.stderr);
    assert!(stderr.contains("error[checkpoint-mismatch]"), "{stderr}");

    // Resume under the original configuration → byte-identical solution.
    let res_dir = dir.join("res");
    let output = Command::new(complx_bin())
        .arg(&aux)
        .args(["-q", "--max-iterations", "15", "--threads", "2"])
        .arg("--resume")
        .arg(&ckpt)
        .arg("-o")
        .arg(&res_dir)
        .output()
        .expect("binary runs");
    assert_eq!(
        output.status.code(),
        Some(0),
        "{}",
        String::from_utf8_lossy(&output.stderr)
    );
    let ref_pl = std::fs::read(ref_dir.join("cli_rsm.pl")).expect("reference .pl");
    let res_pl = std::fs::read(res_dir.join("cli_rsm.pl")).expect("resumed .pl");
    assert_eq!(ref_pl, res_pl, "resumed solution must be byte-identical");

    std::fs::remove_dir_all(&dir).expect("cleanup");
}

#[test]
fn resume_from_missing_checkpoint_is_an_io_error() {
    let dir = temp_dir("nockpt");
    let design = GeneratorConfig::small("cli_nc", 22).generate();
    let aux = bookshelf::write_bundle(&design, &design.initial_placement(), &dir)
        .expect("bundle written");
    let output = Command::new(complx_bin())
        .arg(&aux)
        .arg("-q")
        .arg("--resume")
        .arg(dir.join("absent.ckpt"))
        .output()
        .expect("binary runs");
    assert_eq!(output.status.code(), Some(7), "io exit code");
    let stderr = String::from_utf8_lossy(&output.stderr);
    assert!(stderr.contains("error[io]"), "{stderr}");
    std::fs::remove_dir_all(&dir).expect("cleanup");
}
