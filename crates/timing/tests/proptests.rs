//! Property-based tests for static timing analysis.

use complx_netlist::{CellKind, Design, DesignBuilder, Placement, Point, Rect};
use complx_timing::{reweight_nets, DelayModel, TimingGraph};
use proptest::prelude::*;

/// Builds a random layered DAG design: `layers × width` cells, nets from
/// each cell to 1–3 cells in the next layer. Returns the design and a
/// placement on a grid.
fn layered_design(
    layers: usize,
    width: usize,
    edges: &[(usize, usize, usize)],
) -> (Design, Placement) {
    let w = (layers * 10) as f64;
    let h = (width * 10) as f64;
    let mut b = DesignBuilder::new("dag", Rect::new(0.0, 0.0, w.max(20.0), h.max(20.0)), 1.0);
    let mut ids = Vec::new();
    for l in 0..layers {
        for k in 0..width {
            ids.push(
                b.add_cell(format!("c{l}_{k}"), 1.0, 1.0, CellKind::Movable)
                    .expect("valid cell"),
            );
        }
    }
    let mut net_no = 0;
    for &(l, from, to) in edges {
        if l + 1 >= layers {
            continue;
        }
        let a = ids[l * width + (from % width)];
        let c = ids[(l + 1) * width + (to % width)];
        if a == c {
            continue;
        }
        b.add_net(
            format!("n{net_no}"),
            1.0,
            vec![(a, 0.0, 0.0), (c, 0.0, 0.0)],
        )
        .expect("valid net");
        net_no += 1;
    }
    // Guarantee at least one net so the design builds meaningfully.
    if net_no == 0 && ids.len() >= 2 {
        b.add_net(
            "n_fallback",
            1.0,
            vec![(ids[0], 0.0, 0.0), (ids[1], 0.0, 0.0)],
        )
        .expect("valid net");
    }
    let d = b.build().expect("valid design");
    let mut p = Placement::zeros(d.num_cells());
    for l in 0..layers {
        for k in 0..width {
            p.set_position(
                ids[l * width + k],
                Point::new(l as f64 * 10.0 + 5.0, k as f64 * 10.0 + 5.0),
            );
        }
    }
    (d, p)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(40))]

    /// Arrival times are consistent along every edge and slacks are
    /// non-negative when required times anchor at the critical delay.
    #[test]
    fn sta_invariants_on_random_dags(
        layers in 2usize..6,
        width in 1usize..5,
        edges in proptest::collection::vec((0usize..6, 0usize..5, 0usize..5), 1..40),
    ) {
        let (d, p) = layered_design(layers, width, &edges);
        let graph = TimingGraph::new(&d);
        let model = DelayModel::default();
        let report = graph.analyze(&d, &p, &model);

        // Edge consistency: arrival[to] ≥ arrival[from] + delay(edge).
        for e in graph.edges() {
            let pf = p.position(e.from);
            let pt = p.position(e.to);
            let delay = model.cell_delay
                + model.wire_delay_per_unit
                    * ((pf.x - pt.x).abs() + (pf.y - pt.y).abs());
            prop_assert!(
                report.arrival[e.to.index()] >= report.arrival[e.from.index()] + delay - 1e-9
            );
        }
        // Slacks non-negative; criticality within [0, 1].
        for (i, &s) in report.slack.iter().enumerate() {
            prop_assert!(s >= -1e-9, "cell {i} slack {s}");
        }
        for c in report.criticality() {
            prop_assert!((0.0..=1.0).contains(&c));
        }
        // Someone achieves (near-)zero slack: the critical path endpoint.
        let min_slack = report.slack.iter().cloned().fold(f64::INFINITY, f64::min);
        prop_assert!(min_slack < 1e-9);
    }

    /// The extracted critical path is connected and its cells all carry
    /// (near-)critical criticality.
    #[test]
    fn critical_path_is_connected(
        layers in 3usize..6,
        edges in proptest::collection::vec((0usize..6, 0usize..4, 0usize..4), 5..40),
    ) {
        let (d, p) = layered_design(layers, 4, &edges);
        let graph = TimingGraph::new(&d);
        let model = DelayModel::default();
        let path = graph.critical_path(&d, &p, &model);
        prop_assert!(!path.is_empty());
        // Consecutive cells must share a net.
        for w in path.windows(2) {
            let nets_a: Vec<_> = d.cell_nets(w[0]).to_vec();
            let shares = d.cell_nets(w[1]).iter().any(|n| nets_a.contains(n));
            prop_assert!(shares, "path cells {:?} share no net", w);
        }
    }

    /// Reweighting preserves structure and scales exactly the chosen nets.
    #[test]
    fn reweight_preserves_structure(
        layers in 2usize..5,
        edges in proptest::collection::vec((0usize..5, 0usize..4, 0usize..4), 2..25),
        factor in 1.5f64..20.0,
    ) {
        let (d, _) = layered_design(layers, 4, &edges);
        let some_nets: Vec<_> = d.net_ids().step_by(2).collect();
        let d2 = reweight_nets(&d, &some_nets, factor);
        prop_assert_eq!(d2.num_cells(), d.num_cells());
        prop_assert_eq!(d2.num_nets(), d.num_nets());
        prop_assert_eq!(d2.num_pins(), d.num_pins());
        for nid in d.net_ids() {
            let expect = if some_nets.contains(&nid) {
                d.net(nid).weight() * factor
            } else {
                d.net(nid).weight()
            };
            prop_assert!((d2.net(nid).weight() - expect).abs() < 1e-12);
        }
    }

    /// Delay scales monotonically with the wire-delay coefficient.
    #[test]
    fn delay_monotone_in_wire_coefficient(
        layers in 2usize..5,
        edges in proptest::collection::vec((0usize..5, 0usize..4, 0usize..4), 3..30),
    ) {
        let (d, p) = layered_design(layers, 4, &edges);
        let graph = TimingGraph::new(&d);
        let slow = graph.analyze(&d, &p, &DelayModel { cell_delay: 1.0, wire_delay_per_unit: 0.2 });
        let fast = graph.analyze(&d, &p, &DelayModel { cell_delay: 1.0, wire_delay_per_unit: 0.01 });
        prop_assert!(slow.critical_path_delay >= fast.critical_path_delay - 1e-9);
    }
}
