//! Lightweight static timing analysis for timing-driven placement
//! (paper Section 5, "Extensions for timing- and power-driven placement",
//! and Section S6).
//!
//! ComPLx's timing extension needs three ingredients, all provided here:
//!
//! 1. a **timing graph** over the netlist (each net's first pin drives the
//!    others — the Bookshelf format carries no directions, so this is the
//!    conventional assumption),
//! 2. **arrival/required/slack** propagation with a simple linear delay
//!    model (unit cell delay + distance-proportional wire delay), and
//! 3. per-cell **criticality** factors `γ_i` feeding the weighted penalty
//!    term of Formula 13, plus net-weight updates for `Φ`.
//!
//! The delay model is deliberately simple — the paper's own §S6 experiment
//! manipulates net weights rather than running a signoff STA — but the
//! plumbing (levelization, slack, criticality, path extraction) is the real
//! thing.
//!
//! # Example
//!
//! ```
//! use complx_netlist::generator::GeneratorConfig;
//! use complx_timing::{DelayModel, TimingGraph};
//!
//! let design = GeneratorConfig::small("t", 5).generate();
//! let placement = design.initial_placement();
//! let graph = TimingGraph::new(&design);
//! let report = graph.analyze(&design, &placement, &DelayModel::default());
//! assert!(report.critical_path_delay > 0.0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use complx_netlist::{CellId, Design, NetId, Placement};

/// Delay model parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DelayModel {
    /// Fixed delay through a cell.
    pub cell_delay: f64,
    /// Wire delay per unit Manhattan distance (driver pin → sink pin).
    pub wire_delay_per_unit: f64,
}

impl Default for DelayModel {
    fn default() -> Self {
        Self {
            cell_delay: 1.0,
            wire_delay_per_unit: 0.01,
        }
    }
}

/// One directed timing edge: driver cell → sink cell through a net.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TimingEdge {
    /// Driving cell.
    pub from: CellId,
    /// Receiving cell.
    pub to: CellId,
    /// The net carrying the edge.
    pub net: NetId,
}

/// The levelized timing graph of a design.
///
/// Edges run from each net's first pin (the driver) to its remaining pins.
/// Cycles — possible in synthetic or incomplete netlists — are broken by
/// processing cells in Kahn order and dropping back edges from the residual
/// strongly-connected remainder.
#[derive(Debug, Clone)]
pub struct TimingGraph {
    edges: Vec<TimingEdge>,
    /// Outgoing edge index per cell.
    out_edges: Vec<Vec<u32>>,
    /// Incoming edge index per cell.
    in_edges: Vec<Vec<u32>>,
    /// Topological order of cells (cycle-broken).
    topo: Vec<CellId>,
}

impl TimingGraph {
    /// Builds the graph for a design.
    pub fn new(design: &Design) -> Self {
        let n = design.num_cells();
        let mut edges = Vec::new();
        let mut out_edges = vec![Vec::new(); n];
        let mut in_edges = vec![Vec::new(); n];
        for nid in design.net_ids() {
            let pins = design.net_pins(nid);
            let driver = pins[0].cell;
            for pin in &pins[1..] {
                if pin.cell == driver {
                    continue;
                }
                let e = edges.len() as u32;
                edges.push(TimingEdge {
                    from: driver,
                    to: pin.cell,
                    net: nid,
                });
                out_edges[driver.index()].push(e);
                in_edges[pin.cell.index()].push(e);
            }
        }

        // Kahn levelization with cycle breaking: any remaining cells (inside
        // cycles) are appended in id order; their unresolved incoming edges
        // act as zero-arrival.
        let mut indeg: Vec<usize> = in_edges.iter().map(Vec::len).collect();
        let mut queue: std::collections::VecDeque<usize> =
            (0..n).filter(|&i| indeg[i] == 0).collect();
        let mut topo = Vec::with_capacity(n);
        let mut done = vec![false; n];
        while let Some(i) = queue.pop_front() {
            done[i] = true;
            topo.push(CellId::from_index(i));
            for &e in &out_edges[i] {
                let t = edges[e as usize].to.index();
                indeg[t] -= 1;
                if indeg[t] == 0 && !done[t] {
                    queue.push_back(t);
                }
            }
        }
        for (i, &d) in done.iter().enumerate() {
            if !d {
                topo.push(CellId::from_index(i));
            }
        }

        Self {
            edges,
            out_edges,
            in_edges,
            topo,
        }
    }

    /// All timing edges.
    pub fn edges(&self) -> &[TimingEdge] {
        &self.edges
    }

    /// Runs arrival/required/slack propagation at a placement.
    pub fn analyze(
        &self,
        design: &Design,
        placement: &Placement,
        model: &DelayModel,
    ) -> TimingReport {
        let n = design.num_cells();
        let edge_delay = |e: &TimingEdge| -> f64 {
            let pf = placement.position(e.from);
            let pt = placement.position(e.to);
            model.cell_delay
                + model.wire_delay_per_unit * ((pf.x - pt.x).abs() + (pf.y - pt.y).abs())
        };

        // Forward: arrival times.
        let mut arrival = vec![0.0f64; n];
        for &c in &self.topo {
            for &e in &self.out_edges[c.index()] {
                let edge = &self.edges[e as usize];
                let a = arrival[c.index()] + edge_delay(edge);
                let t = edge.to.index();
                if a > arrival[t] {
                    arrival[t] = a;
                }
            }
        }
        let critical_path_delay = arrival.iter().cloned().fold(0.0f64, f64::max);

        // Backward: required times, anchored at the critical delay (zero
        // worst slack) unless a clock period is imposed by the caller later.
        let mut required = vec![critical_path_delay; n];
        for &c in self.topo.iter().rev() {
            for &e in &self.out_edges[c.index()] {
                let edge = &self.edges[e as usize];
                let r = required[edge.to.index()] - edge_delay(edge);
                let f = c.index();
                if r < required[f] {
                    required[f] = r;
                }
            }
        }

        let slack: Vec<f64> = arrival.iter().zip(&required).map(|(a, r)| r - a).collect();

        TimingReport {
            arrival,
            required,
            slack,
            critical_path_delay,
        }
    }

    /// Extracts the single most critical path (cells from start to end) at
    /// a placement: backtrack from the max-arrival endpoint through the
    /// predecessors that realize its arrival time.
    pub fn critical_path(
        &self,
        design: &Design,
        placement: &Placement,
        model: &DelayModel,
    ) -> Vec<CellId> {
        let report = self.analyze(design, placement, model);
        let Some((end, _)) = report
            .arrival
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.total_cmp(b.1))
        else {
            return Vec::new();
        };
        let edge_delay = |e: &TimingEdge| -> f64 {
            let pf = placement.position(e.from);
            let pt = placement.position(e.to);
            model.cell_delay
                + model.wire_delay_per_unit * ((pf.x - pt.x).abs() + (pf.y - pt.y).abs())
        };
        let mut path = vec![CellId::from_index(end)];
        let mut cur = end;
        let mut guard = design.num_cells() + 1;
        while guard > 0 {
            guard -= 1;
            let mut best: Option<(f64, usize)> = None;
            for &e in &self.in_edges[cur] {
                let edge = &self.edges[e as usize];
                let a = report.arrival[edge.from.index()] + edge_delay(edge);
                if (a - report.arrival[cur]).abs() < 1e-9 && best.is_none_or(|(ba, _)| a > ba) {
                    best = Some((a, edge.from.index()));
                }
            }
            match best {
                Some((_, prev))
                    if report.arrival[prev] > 0.0 || !self.in_edges[prev].is_empty() =>
                {
                    path.push(CellId::from_index(prev));
                    cur = prev;
                    // lint:allow(no-float-eq): arrivals start at exactly 0.0
                    // and only grow by positive delays; exact zero identifies
                    // a path source.
                    if report.arrival[cur] == 0.0 {
                        break;
                    }
                }
                Some((_, prev)) => {
                    path.push(CellId::from_index(prev));
                    break;
                }
                None => break,
            }
        }
        path.reverse();
        path
    }

    /// The nets along a cell path (consecutive-pair connecting nets).
    pub fn path_nets(&self, path: &[CellId]) -> Vec<NetId> {
        let mut nets = Vec::new();
        for w in path.windows(2) {
            if let Some(e) = self.out_edges[w[0].index()]
                .iter()
                .find(|&&e| self.edges[e as usize].to == w[1])
            {
                nets.push(self.edges[*e as usize].net);
            }
        }
        nets.dedup();
        nets
    }
}

/// STA results, indexed by cell id.
#[derive(Debug, Clone, PartialEq)]
pub struct TimingReport {
    /// Latest signal arrival time per cell.
    pub arrival: Vec<f64>,
    /// Required time per cell (anchored at zero worst slack).
    pub required: Vec<f64>,
    /// Slack per cell (`required − arrival`; 0 on the critical path).
    pub slack: Vec<f64>,
    /// The critical path delay.
    pub critical_path_delay: f64,
}

impl TimingReport {
    /// Per-cell criticality `γ_i ∈ [0, 1]`: 1 on the critical path, falling
    /// linearly with slack.
    pub fn criticality(&self) -> Vec<f64> {
        let t = self.critical_path_delay.max(f64::MIN_POSITIVE);
        self.slack
            .iter()
            .map(|s| (1.0 - s / t).clamp(0.0, 1.0))
            .collect()
    }
}

/// Per-net criticality: the maximum criticality over the cells on each net
/// (a cheap, standard proxy for the worst edge slack through the net).
pub fn net_criticality(design: &Design, report: &TimingReport) -> Vec<f64> {
    let crit = report.criticality();
    design
        .net_ids()
        .map(|nid| {
            design
                .net_pins(nid)
                .iter()
                .map(|p| crit[p.cell.index()])
                .fold(0.0f64, f64::max)
        })
        .collect()
}

/// Rebuilds `design` verbatim except that each net's weight is replaced by
/// `weight_of(net)`. Cell ids are preserved (cells are re-added in id order).
fn rebuild_with_weights(design: &Design, weight_of: impl Fn(NetId) -> f64) -> Design {
    use complx_netlist::{DesignBuilder, DesignError, RegionConstraint};
    let rebuild = || -> Result<Design, DesignError> {
        let mut b = DesignBuilder::new(
            design.name().to_string(),
            design.core(),
            design.row_height(),
        );
        b.set_target_density(design.target_density())?;
        for id in design.cell_ids() {
            let c = design.cell(id);
            if c.is_movable() {
                b.add_cell(c.name(), c.width(), c.height(), c.kind())?;
            } else {
                b.add_fixed_cell(
                    c.name(),
                    c.width(),
                    c.height(),
                    c.kind(),
                    design.fixed_positions().position(id),
                )?;
            }
        }
        for nid in design.net_ids() {
            b.add_net(
                design.net(nid).name(),
                weight_of(nid),
                design
                    .net_pins(nid)
                    .iter()
                    .map(|p| (p.cell, p.dx, p.dy))
                    .collect(),
            )?;
        }
        for r in design.regions() {
            b.add_region(RegionConstraint::new(
                r.name(),
                r.rect(),
                r.cells().to_vec(),
            ));
        }
        b.build()
    };
    // lint:allow(no-expect): every name, dimension, and pin is copied verbatim
    // from a design that already passed builder validation once.
    rebuild().expect("rebuilding a validated design cannot fail")
}

/// Rebuilds the design with per-net weight multipliers (indexed by net id).
/// This is the slack-based net-weighting of timing-driven placement
/// (paper Section 5, citing Chan, Cong & Radke's convergent schemes).
///
/// # Panics
///
/// Panics if `factors` has the wrong length or contains a non-positive
/// factor.
pub fn scale_net_weights(design: &Design, factors: &[f64]) -> Design {
    assert_eq!(factors.len(), design.num_nets(), "one factor per net");
    assert!(
        factors.iter().all(|&f| f > 0.0),
        "weight factors must be positive"
    );
    rebuild_with_weights(design, |nid| {
        design.net(nid).weight() * factors[nid.index()]
    })
}

/// Scales the weights of the given nets by `factor` — the net-weighting
/// mechanism of §S6 ("subsequent ComPLx runs are performed with
/// progressively larger net weights on those paths"). Returns a new design
/// sharing everything else.
pub fn reweight_nets(design: &Design, nets: &[NetId], factor: f64) -> Design {
    let boost: std::collections::BTreeSet<usize> = nets.iter().map(|n| n.index()).collect();
    rebuild_with_weights(design, |nid| {
        let w = design.net(nid).weight();
        if boost.contains(&nid.index()) {
            w * factor
        } else {
            w
        }
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use complx_netlist::{generator::GeneratorConfig, CellKind, DesignBuilder, Point, Rect};

    /// A 3-stage chain: pad → a → b → c.
    fn chain() -> (Design, Vec<CellId>) {
        let mut b = DesignBuilder::new("ch", Rect::new(0.0, 0.0, 100.0, 10.0), 1.0);
        let pad = b
            .add_fixed_cell("pad", 1.0, 1.0, CellKind::Terminal, Point::new(0.0, 5.0))
            .unwrap();
        let ca = b.add_cell("a", 1.0, 1.0, CellKind::Movable).unwrap();
        let cb = b.add_cell("b", 1.0, 1.0, CellKind::Movable).unwrap();
        let cc = b.add_cell("c", 1.0, 1.0, CellKind::Movable).unwrap();
        b.add_net("n0", 1.0, vec![(pad, 0.0, 0.0), (ca, 0.0, 0.0)])
            .unwrap();
        b.add_net("n1", 1.0, vec![(ca, 0.0, 0.0), (cb, 0.0, 0.0)])
            .unwrap();
        b.add_net("n2", 1.0, vec![(cb, 0.0, 0.0), (cc, 0.0, 0.0)])
            .unwrap();
        (b.build().unwrap(), vec![pad, ca, cb, cc])
    }

    #[test]
    fn chain_arrival_times_accumulate() {
        let (d, ids) = chain();
        let mut p = d.initial_placement();
        for (k, &id) in ids.iter().enumerate().skip(1) {
            p.set_position(id, Point::new(10.0 * k as f64, 5.0));
        }
        let g = TimingGraph::new(&d);
        let model = DelayModel {
            cell_delay: 1.0,
            wire_delay_per_unit: 0.1,
        };
        let rep = g.analyze(&d, &p, &model);
        // pad→a: 1 + 0.1·10 = 2; a→b: +2; b→c: +2 → arrival(c) = 6.
        assert!((rep.arrival[ids[3].index()] - 6.0).abs() < 1e-9);
        assert!((rep.critical_path_delay - 6.0).abs() < 1e-9);
    }

    #[test]
    fn critical_path_has_zero_slack() {
        let (d, ids) = chain();
        let mut p = d.initial_placement();
        for (k, &id) in ids.iter().enumerate().skip(1) {
            p.set_position(id, Point::new(10.0 * k as f64, 5.0));
        }
        let g = TimingGraph::new(&d);
        let rep = g.analyze(&d, &p, &DelayModel::default());
        for &id in &ids {
            assert!(rep.slack[id.index()].abs() < 1e-9, "chain is the only path");
        }
        let crit = rep.criticality();
        assert!(crit.iter().all(|&c| (c - 1.0).abs() < 1e-9 || c == 1.0));
    }

    #[test]
    fn critical_path_extraction_follows_chain() {
        let (d, ids) = chain();
        let mut p = d.initial_placement();
        for (k, &id) in ids.iter().enumerate().skip(1) {
            p.set_position(id, Point::new(10.0 * k as f64, 5.0));
        }
        let g = TimingGraph::new(&d);
        let path = g.critical_path(&d, &p, &DelayModel::default());
        assert_eq!(*path.last().unwrap(), ids[3]);
        assert!(path.len() >= 3);
        let nets = g.path_nets(&path);
        assert!(!nets.is_empty());
    }

    #[test]
    fn moving_cells_apart_increases_delay() {
        let (d, ids) = chain();
        let mut near = d.initial_placement();
        let mut far = d.initial_placement();
        for (k, &id) in ids.iter().enumerate().skip(1) {
            near.set_position(id, Point::new(k as f64, 5.0));
            far.set_position(id, Point::new(30.0 * k as f64, 5.0));
        }
        let g = TimingGraph::new(&d);
        let m = DelayModel::default();
        assert!(
            g.analyze(&d, &far, &m).critical_path_delay
                > g.analyze(&d, &near, &m).critical_path_delay
        );
    }

    #[test]
    fn cycles_are_tolerated() {
        let mut b = DesignBuilder::new("cyc", Rect::new(0.0, 0.0, 10.0, 10.0), 1.0);
        let a = b.add_cell("a", 1.0, 1.0, CellKind::Movable).unwrap();
        let c = b.add_cell("b", 1.0, 1.0, CellKind::Movable).unwrap();
        // a drives b and b drives a — a combinational loop.
        b.add_net("n0", 1.0, vec![(a, 0.0, 0.0), (c, 0.0, 0.0)])
            .unwrap();
        b.add_net("n1", 1.0, vec![(c, 0.0, 0.0), (a, 0.0, 0.0)])
            .unwrap();
        let d = b.build().unwrap();
        let g = TimingGraph::new(&d);
        let rep = g.analyze(&d, &d.initial_placement(), &DelayModel::default());
        assert!(rep.critical_path_delay.is_finite());
    }

    #[test]
    fn reweight_scales_only_selected_nets() {
        let d = GeneratorConfig::small("rw", 3).generate();
        let target = d.net_ids().next().unwrap();
        let d2 = reweight_nets(&d, &[target], 10.0);
        assert_eq!(d2.net(target).weight(), d.net(target).weight() * 10.0);
        let other = d.net_ids().nth(1).unwrap();
        assert_eq!(d2.net(other).weight(), d.net(other).weight());
        assert_eq!(d2.num_pins(), d.num_pins());
    }

    #[test]
    fn criticality_in_unit_range() {
        let d = GeneratorConfig::small("cr", 4).generate();
        let g = TimingGraph::new(&d);
        let rep = g.analyze(&d, &d.initial_placement(), &DelayModel::default());
        for c in rep.criticality() {
            assert!((0.0..=1.0).contains(&c));
        }
    }
}
