//! Load generator for `complx-serve`: replays a phased job mix against a
//! running daemon and emits a `complx-bench/v1` snapshot of the run.
//!
//! Usage: `complx-loadgen --port P [--jobs N] [--designs D] [--cancels C]
//! [--duplicates K] [--max-iterations M] [--fetch-dir DIR]
//! [--snapshot FILE] [--expect-cache-hits] [--shutdown]`
//!
//! Three phases, deterministic by construction:
//!
//! 1. **unique** — N jobs over D generated designs with cycled priorities
//!    and per-job iteration caps, so every `(design, config)` key is
//!    distinct; waits for all of them to finish.
//! 2. **duplicate** — resubmits K unique keys once each, chosen from the
//!    tail of the scheduler's pop order (priority rank, then submission
//!    sequence) — the most recently completed and therefore most recently
//!    cached, so an LRU cache smaller than the unique job count still
//!    holds them; because phase 1 has fully drained, each resubmission
//!    must be answered from the result cache (`cached: true`, born
//!    `done`).
//! 3. **cancel** — C `preset=stress` jobs (no convergence criterion, huge
//!    iteration cap), cancelled mid-solve once observed `running`; each
//!    must end `cancelled` and the daemon must stay healthy.
//!
//! `--fetch-dir` downloads job 1's result frame and unpacks it for
//! byte-identity comparison against a direct CLI run of the same bundle.

use std::io::Write as _;
use std::net::{Ipv4Addr, SocketAddr, SocketAddrV4};
use std::path::{Path, PathBuf};
use std::process::ExitCode;
use std::time::{Duration, Instant};

use complx_bench::snapshot::{BenchCase, BenchSnapshot};
use complx_netlist::generator::GeneratorConfig;
use complx_netlist::{bookshelf, Design};
use complx_obs::JsonValue;
use complx_serve::client::{request, wait_terminal};
use complx_serve::framing::{encode, Entry};

fn usage() -> ! {
    eprintln!(
        "usage: complx-loadgen --port P [--jobs N] [--designs D] [--cancels C] \
         [--duplicates K] [--max-iterations M] [--fetch-dir DIR] \
         [--snapshot FILE] [--expect-cache-hits] [--shutdown]"
    );
    std::process::exit(2);
}

fn parse_num(flag: &str, value: Option<String>) -> usize {
    match value.and_then(|v| v.parse().ok()) {
        Some(n) => n,
        None => {
            eprintln!("complx-loadgen: {flag} needs a numeric value");
            usage();
        }
    }
}

/// Frames a design as a submission body by writing its Bookshelf bundle
/// to a scratch directory and reading the members back.
fn frame_design(design: &Design, scratch: &Path) -> std::io::Result<Vec<u8>> {
    let dir = scratch.join(design.name());
    std::fs::create_dir_all(&dir)?;
    let placement = design.initial_placement();
    let aux = bookshelf::write_bundle(design, &placement, &dir)
        .map_err(|e| std::io::Error::other(e.to_string()))?;
    let mut entries = Vec::new();
    let mut names: Vec<String> = std::fs::read_dir(&dir)?
        .filter_map(|e| e.ok())
        .filter_map(|e| e.file_name().into_string().ok())
        .collect();
    names.sort();
    for name in names {
        entries.push(Entry {
            data: std::fs::read(dir.join(&name))?,
            name,
        });
    }
    debug_assert!(aux.is_file());
    Ok(encode(&entries))
}

fn submit(addr: SocketAddr, body: &[u8], query: &str) -> Result<(u16, JsonValue), std::io::Error> {
    let resp = request(addr, "POST", &format!("/jobs{query}"), body)?;
    let json = resp.json().map_err(std::io::Error::other)?;
    Ok((resp.status, json))
}

fn job_id(status: &JsonValue) -> Option<u64> {
    status.get("id").and_then(|v| v.as_i64()).map(|v| v as u64)
}

fn fail(message: String) -> ExitCode {
    eprintln!("complx-loadgen: FAIL: {message}");
    ExitCode::FAILURE
}

fn main() -> ExitCode {
    let mut args = std::env::args().skip(1);
    let mut port: Option<u16> = None;
    let mut jobs = 50usize;
    let mut designs = 4usize;
    let mut cancels = 2usize;
    let mut duplicates: Option<usize> = None;
    let mut max_iterations = 8usize;
    let mut fetch_dir: Option<PathBuf> = None;
    let mut snapshot_path: Option<PathBuf> = None;
    let mut expect_cache_hits = false;
    let mut shutdown = false;
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--port" => port = Some(parse_num("--port", args.next()) as u16),
            "--jobs" => jobs = parse_num("--jobs", args.next()),
            "--designs" => designs = parse_num("--designs", args.next()).max(1),
            "--cancels" => cancels = parse_num("--cancels", args.next()),
            "--duplicates" => duplicates = Some(parse_num("--duplicates", args.next())),
            "--max-iterations" => {
                max_iterations = parse_num("--max-iterations", args.next()).max(1)
            }
            "--fetch-dir" => fetch_dir = args.next().map(PathBuf::from),
            "--snapshot" => snapshot_path = args.next().map(PathBuf::from),
            "--expect-cache-hits" => expect_cache_hits = true,
            "--shutdown" => shutdown = true,
            "--help" | "-h" => usage(),
            other => {
                eprintln!("complx-loadgen: unknown flag `{other}`");
                usage();
            }
        }
    }
    let Some(port) = port else {
        eprintln!("complx-loadgen: --port is required");
        usage();
    };
    let addr = SocketAddr::V4(SocketAddrV4::new(Ipv4Addr::LOCALHOST, port));
    let scratch = std::env::temp_dir().join(format!("complx-loadgen-{}", std::process::id()));

    let started = Instant::now();
    let designs: Vec<Design> = (0..designs)
        .map(|i| GeneratorConfig::small(&format!("lg{i}"), 9000 + i as u64).generate())
        .collect();
    let frames: Vec<Vec<u8>> = match designs
        .iter()
        .map(|d| frame_design(d, &scratch))
        .collect::<Result<_, _>>()
    {
        Ok(f) => f,
        Err(e) => return fail(format!("framing designs: {e}")),
    };

    // Phase 1: unique submissions. Distinct (design, max_iterations) pairs
    // make distinct cache keys; priorities cycle high/normal/low.
    let priorities = ["high", "normal", "low"];
    let mut unique: Vec<(u64, String)> = Vec::new(); // (job id, resubmit query)
    for i in 0..jobs {
        let frame = &frames[i % frames.len()];
        let iters = max_iterations + i / frames.len();
        let query = format!(
            "?priority={}&max_iterations={iters}",
            priorities[i % priorities.len()]
        );
        match submit(addr, frame, &query) {
            Ok((202, status)) => match job_id(&status) {
                Some(id) => unique.push((id, query)),
                None => return fail(format!("submit {i}: no id in {status:?}")),
            },
            Ok((429, _)) => {
                // Shed by admission control: back off and retry the slot.
                std::thread::sleep(Duration::from_millis(100));
                let retry = submit(addr, frame, &query);
                match retry {
                    Ok((202, status)) => match job_id(&status) {
                        Some(id) => unique.push((id, query)),
                        None => return fail(format!("retry {i}: no id")),
                    },
                    Ok((code, body)) => return fail(format!("retry {i}: HTTP {code} {body:?}")),
                    Err(e) => return fail(format!("retry {i}: {e}")),
                }
            }
            Ok((200, status)) => {
                // Duplicate key within the unique phase (possible when the
                // iteration spread collides) — still a valid terminal job.
                match job_id(&status) {
                    Some(id) => unique.push((id, query)),
                    None => return fail(format!("submit {i}: no id")),
                }
            }
            Ok((code, body)) => return fail(format!("submit {i}: HTTP {code} {body:?}")),
            Err(e) => return fail(format!("submit {i}: {e}")),
        }
    }
    let mut done = 0u64;
    for (id, _) in &unique {
        match wait_terminal(addr, *id, Duration::from_secs(600)) {
            Ok(status) => {
                let state = status.get("state").and_then(|s| s.as_str()).unwrap_or("");
                if state != "done" {
                    return fail(format!("job {id} ended `{state}`: {status:?}"));
                }
                done += 1;
            }
            Err(e) => return fail(format!("waiting for job {id}: {e}")),
        }
    }
    eprintln!(
        "complx-loadgen: phase unique: {done}/{} done in {:.2}s",
        unique.len(),
        started.elapsed().as_secs_f64()
    );

    // Phase 2: duplicates. Everything has drained; the cache holds the
    // most recently *completed* keys, and completion order follows the
    // queue's deterministic pop order (priority rank, then submission
    // sequence) up to worker-count jitter. Resubmitting the tail of that
    // order hits even when the LRU capacity is below the unique count.
    let dup_started = Instant::now();
    let dup_count = duplicates.unwrap_or(unique.len()).min(unique.len());
    let mut pop_order: Vec<usize> = (0..unique.len()).collect();
    pop_order.sort_by_key(|&i| (i % priorities.len(), i)); // rank, then seq
    let mut cache_hits = 0u64;
    for &i in &pop_order[unique.len() - dup_count..] {
        let query = &unique[i].1;
        let frame = &frames[i % frames.len()];
        match submit(addr, frame, query) {
            Ok((200, status)) => {
                let cached = status.get("cached").and_then(|v| v.as_bool());
                let state = status.get("state").and_then(|s| s.as_str());
                if cached != Some(true) || state != Some("done") {
                    return fail(format!("duplicate {i} not served from cache: {status:?}"));
                }
                cache_hits += 1;
            }
            Ok((code, body)) => {
                return fail(format!(
                    "duplicate {i}: HTTP {code} {body:?} (expected 200)"
                ))
            }
            Err(e) => return fail(format!("duplicate {i}: {e}")),
        }
    }
    eprintln!(
        "complx-loadgen: phase duplicate: {cache_hits} cache hits in {:.2}s",
        dup_started.elapsed().as_secs_f64()
    );

    // Phase 3: mid-flight cancels against stress solves.
    let cancel_started = Instant::now();
    let mut cancelled = 0u64;
    for i in 0..cancels {
        let frame = &frames[i % frames.len()];
        let query = "?preset=stress&max_iterations=100000&priority=high";
        let id = match submit(addr, frame, query) {
            Ok((202, status)) => match job_id(&status) {
                Some(id) => id,
                None => return fail(format!("cancel target {i}: no id")),
            },
            Ok((code, body)) => return fail(format!("cancel target {i}: HTTP {code} {body:?}")),
            Err(e) => return fail(format!("cancel target {i}: {e}")),
        };
        // Wait until it holds a scheduler slot, then cancel mid-solve.
        let deadline = Instant::now() + Duration::from_secs(120);
        loop {
            let state = match request(addr, "GET", &format!("/jobs/{id}"), &[]) {
                Ok(resp) => resp
                    .json()
                    .ok()
                    .and_then(|s| s.get("state").and_then(|v| v.as_str().map(String::from)))
                    .unwrap_or_default(),
                Err(e) => return fail(format!("polling cancel target {id}: {e}")),
            };
            if state == "running" {
                break;
            }
            if state != "queued" {
                return fail(format!(
                    "cancel target {id} reached `{state}` before cancel"
                ));
            }
            if Instant::now() >= deadline {
                return fail(format!("cancel target {id} never started running"));
            }
            std::thread::sleep(Duration::from_millis(20));
        }
        if let Err(e) = request(addr, "DELETE", &format!("/jobs/{id}"), &[]) {
            return fail(format!("cancelling job {id}: {e}"));
        }
        match wait_terminal(addr, id, Duration::from_secs(120)) {
            Ok(status) => {
                let state = status.get("state").and_then(|s| s.as_str()).unwrap_or("");
                if state != "cancelled" {
                    return fail(format!("cancel target {id} ended `{state}`"));
                }
                cancelled += 1;
            }
            Err(e) => return fail(format!("waiting for cancelled job {id}: {e}")),
        }
    }
    eprintln!(
        "complx-loadgen: phase cancel: {cancelled} cancelled in {:.2}s",
        cancel_started.elapsed().as_secs_f64()
    );

    // Health probe: the daemon must still answer after the churn.
    let stats = match request(addr, "GET", "/stats", &[]).map(|r| r.json()) {
        Ok(Ok(stats)) => stats,
        Ok(Err(e)) => return fail(format!("stats parse: {e}")),
        Err(e) => return fail(format!("stats after load: {e}")),
    };
    let server_hits = stats
        .get("cache")
        .and_then(|c| c.get("hits"))
        .and_then(|v| v.as_i64())
        .unwrap_or(0);
    eprintln!("complx-loadgen: server stats: {}", stats.to_json_string());
    if expect_cache_hits && server_hits == 0 {
        return fail("expected cache hits but the server reports none".to_string());
    }

    // Byte-identity artifact: unpack job 1's served result frame.
    if let Some(dir) = &fetch_dir {
        let first = match unique.first() {
            Some((id, _)) => *id,
            None => return fail("--fetch-dir needs at least one unique job".to_string()),
        };
        let resp = match request(addr, "GET", &format!("/jobs/{first}/result"), &[]) {
            Ok(r) if r.status == 200 => r,
            Ok(r) => return fail(format!("result fetch: HTTP {}", r.status)),
            Err(e) => return fail(format!("result fetch: {e}")),
        };
        let entries = match complx_serve::framing::decode(&resp.body) {
            Ok(e) => e,
            Err(e) => return fail(format!("result frame: {e}")),
        };
        for entry in &entries {
            let path = dir.join(&entry.name);
            if let Some(parent) = path.parent() {
                if let Err(e) = std::fs::create_dir_all(parent) {
                    return fail(format!("unpack {}: {e}", path.display()));
                }
            }
            if let Err(e) = std::fs::write(&path, &entry.data) {
                return fail(format!("unpack {}: {e}", path.display()));
            }
        }
        // Also unpack the input bundle the job solved, so a caller can
        // replay it through the CLI and byte-compare the solutions.
        let input = match complx_serve::framing::decode(&frames[0]) {
            Ok(e) => e,
            Err(e) => return fail(format!("input frame: {e}")),
        };
        for entry in &input {
            let path = dir.join("input").join(&entry.name);
            if let Some(parent) = path.parent() {
                if let Err(e) = std::fs::create_dir_all(parent) {
                    return fail(format!("unpack {}: {e}", path.display()));
                }
            }
            if let Err(e) = std::fs::write(&path, &entry.data) {
                return fail(format!("unpack {}: {e}", path.display()));
            }
        }
        eprintln!(
            "complx-loadgen: unpacked {} result members and the input bundle to {}",
            entries.len(),
            dir.display()
        );
    }

    if shutdown {
        match request(addr, "POST", "/shutdown", &[]) {
            Ok(r) if r.status == 200 => eprintln!("complx-loadgen: shutdown requested"),
            Ok(r) => return fail(format!("shutdown: HTTP {}", r.status)),
            Err(e) => return fail(format!("shutdown: {e}")),
        }
    }

    if let Some(path) = snapshot_path {
        let snapshot = BenchSnapshot {
            suite: "serve".to_string(),
            cases: vec![BenchCase {
                name: "loadgen".to_string(),
                threads: 1,
                wall_seconds: started.elapsed().as_secs_f64(),
                iterations: None,
                metrics: vec![
                    ("jobs_done".to_string(), done as f64),
                    ("cache_hits".to_string(), cache_hits as f64),
                    ("cancelled".to_string(), cancelled as f64),
                ],
                memory: None,
                kernels: Vec::new(),
                extra: JsonValue::object(vec![
                    ("designs", frames.len().into()),
                    ("server_cache_hits", server_hits.into()),
                ]),
            }],
        };
        let doc = snapshot.to_json().to_json_pretty();
        let write = std::fs::File::create(&path)
            .and_then(|mut f| f.write_all(doc.as_bytes()).and_then(|()| f.flush()));
        if let Err(e) = write {
            return fail(format!("writing snapshot {}: {e}", path.display()));
        }
        eprintln!("complx-loadgen: snapshot written to {}", path.display());
    }

    let _ = std::fs::remove_dir_all(&scratch);
    eprintln!(
        "complx-loadgen: OK ({done} solved, {cache_hits} cache hits, {cancelled} cancelled, {:.2}s total)",
        started.elapsed().as_secs_f64()
    );
    ExitCode::SUCCESS
}
