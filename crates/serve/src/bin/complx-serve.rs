//! The placement-as-a-service daemon.
//!
//! Usage: `complx-serve --spool DIR [--port P] [--port-file FILE]
//! [--jobs K] [--threads-per-job N] [--queue-capacity Q]
//! [--cache-entries C]`
//!
//! Binds `127.0.0.1:PORT` (`--port 0`, the default, picks an ephemeral
//! port), optionally writes the resolved port to `--port-file` (how
//! scripts rendezvous with an ephemeral port), and serves until a client
//! POSTs `/shutdown` or the process receives SIGTERM the hard way.

use std::process::ExitCode;

use complx_serve::{ServeConfig, Server};

fn usage() -> ! {
    eprintln!(
        "usage: complx-serve --spool DIR [--port P] [--port-file FILE] [--jobs K] \
         [--threads-per-job N] [--queue-capacity Q] [--cache-entries C]"
    );
    std::process::exit(2);
}

fn parse_num(flag: &str, value: Option<String>) -> usize {
    match value.and_then(|v| v.parse().ok()) {
        Some(n) => n,
        None => {
            eprintln!("complx-serve: {flag} needs a numeric value");
            usage();
        }
    }
}

fn main() -> ExitCode {
    let mut args = std::env::args().skip(1);
    let mut port: u16 = 0;
    let mut port_file: Option<String> = None;
    let mut spool: Option<String> = None;
    let mut jobs = 2usize;
    let mut threads_per_job = 2usize;
    let mut queue_capacity = 64usize;
    let mut cache_entries = 128usize;
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--port" => port = parse_num("--port", args.next()) as u16,
            "--port-file" => port_file = args.next(),
            "--spool" => spool = args.next(),
            "--jobs" => jobs = parse_num("--jobs", args.next()),
            "--threads-per-job" => threads_per_job = parse_num("--threads-per-job", args.next()),
            "--queue-capacity" => queue_capacity = parse_num("--queue-capacity", args.next()),
            "--cache-entries" => cache_entries = parse_num("--cache-entries", args.next()),
            "--help" | "-h" => usage(),
            other => {
                eprintln!("complx-serve: unknown flag `{other}`");
                usage();
            }
        }
    }
    let Some(spool) = spool else {
        eprintln!("complx-serve: --spool is required");
        usage();
    };

    let mut cfg = ServeConfig::new(spool);
    cfg.bind = format!("127.0.0.1:{port}");
    cfg.jobs = jobs.max(1);
    cfg.threads_per_job = threads_per_job.max(1);
    cfg.queue_capacity = queue_capacity.max(1);
    cfg.cache_entries = cache_entries;

    let server = match Server::start(cfg) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("complx-serve: failed to start: {e}");
            return ExitCode::FAILURE;
        }
    };
    let addr = server.addr();
    if let Some(path) = port_file {
        if let Err(e) = complx_obs::write_atomic(
            std::path::Path::new(&path),
            format!("{}\n", addr.port()).as_bytes(),
        ) {
            eprintln!("complx-serve: cannot write port file {path}: {e}");
            server.request_shutdown();
            server.join();
            return ExitCode::FAILURE;
        }
    }
    eprintln!("complx-serve: listening on {addr} (jobs={jobs} threads/job={threads_per_job})");
    server.join();
    eprintln!("complx-serve: drained, exiting");
    ExitCode::SUCCESS
}
