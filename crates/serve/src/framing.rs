//! `complx-bundle/v1` — length-prefixed file framing for job bodies.
//!
//! A submitted job is a whole Bookshelf bundle (`.aux` plus the component
//! files it names); a served result is a report manifest plus a solution
//! bundle. Both travel as one byte string in this framing — hand-rolled,
//! little-endian, and checksummed by construction via strict decoding
//! (truncation, duplicate names, and trailing bytes are all rejected):
//!
//! ```text
//! magic   b"complx-bundle/v1\n"                    (17 bytes)
//! count   u32    number of entries
//! entry   name_len:u32  name:[u8]  data_len:u64  data:[u8]   (repeated)
//! ```
//!
//! Entry names are relative file names (`smoke.aux`, `solution/smoke.pl`);
//! decoding rejects absolute names and `..` components so a spooled bundle
//! can never escape its job directory.

/// The version-bearing frame magic.
pub const MAGIC: &[u8] = b"complx-bundle/v1\n";

/// Per-entry name length cap (sanity bound, not a protocol constant).
const MAX_NAME: usize = 4096;
/// Entry-count cap: a Bookshelf bundle has 6 files and a result bundle
/// adds a report; 64 leaves headroom without letting a hostile count
/// drive allocation.
const MAX_ENTRIES: u32 = 64;

/// One named file in a frame.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Entry {
    /// Relative file name.
    pub name: String,
    /// Raw file bytes.
    pub data: Vec<u8>,
}

/// Why a frame failed to decode.
#[derive(Debug, PartialEq, Eq)]
pub enum FrameError {
    /// Missing or wrong magic (not a `complx-bundle/v1` frame).
    BadMagic,
    /// The frame ends before its declared structure does.
    Truncated,
    /// Structurally invalid (bad name, duplicate entry, trailing bytes).
    Malformed(String),
}

impl std::fmt::Display for FrameError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FrameError::BadMagic => f.write_str("not a complx-bundle/v1 frame"),
            FrameError::Truncated => f.write_str("frame is truncated"),
            FrameError::Malformed(why) => write!(f, "malformed frame: {why}"),
        }
    }
}

/// Serializes entries into a frame.
pub fn encode(entries: &[Entry]) -> Vec<u8> {
    let mut out = Vec::with_capacity(
        MAGIC.len()
            + 4
            + entries
                .iter()
                .map(|e| 12 + e.name.len() + e.data.len())
                .sum::<usize>(),
    );
    out.extend_from_slice(MAGIC);
    out.extend_from_slice(&(entries.len() as u32).to_le_bytes());
    for e in entries {
        out.extend_from_slice(&(e.name.len() as u32).to_le_bytes());
        out.extend_from_slice(e.name.as_bytes());
        out.extend_from_slice(&(e.data.len() as u64).to_le_bytes());
        out.extend_from_slice(&e.data);
    }
    out
}

fn safe_name(name: &str) -> Result<(), FrameError> {
    if name.is_empty() || name.len() > MAX_NAME {
        return Err(FrameError::Malformed("entry name empty or too long".into()));
    }
    if name.starts_with('/') || name.contains('\\') || name.contains('\0') {
        return Err(FrameError::Malformed(format!("unsafe entry name `{name}`")));
    }
    if name
        .split('/')
        .any(|part| part.is_empty() || part == "." || part == "..")
    {
        return Err(FrameError::Malformed(format!("unsafe entry name `{name}`")));
    }
    Ok(())
}

/// Parses a frame, strictly: unknown magic, truncation, oversized counts,
/// unsafe or duplicate names, and trailing bytes are all errors.
pub fn decode(bytes: &[u8]) -> Result<Vec<Entry>, FrameError> {
    let rest = bytes.strip_prefix(MAGIC).ok_or(FrameError::BadMagic)?;
    let mut pos = 0usize;
    let take = |pos: &mut usize, n: usize| -> Result<&[u8], FrameError> {
        let end = pos.checked_add(n).ok_or(FrameError::Truncated)?;
        let slice = rest.get(*pos..end).ok_or(FrameError::Truncated)?;
        *pos = end;
        Ok(slice)
    };
    let count_bytes: [u8; 4] = take(&mut pos, 4)?
        .try_into()
        .map_err(|_| FrameError::Truncated)?;
    let count = u32::from_le_bytes(count_bytes);
    if count > MAX_ENTRIES {
        return Err(FrameError::Malformed(format!(
            "{count} entries (cap {MAX_ENTRIES})"
        )));
    }
    let mut entries = Vec::with_capacity(count as usize);
    let mut seen: Vec<&str> = Vec::new();
    for _ in 0..count {
        let name_len_bytes: [u8; 4] = take(&mut pos, 4)?
            .try_into()
            .map_err(|_| FrameError::Truncated)?;
        let name_len = u32::from_le_bytes(name_len_bytes) as usize;
        if name_len > MAX_NAME {
            return Err(FrameError::Malformed("entry name too long".into()));
        }
        let name = std::str::from_utf8(take(&mut pos, name_len)?)
            .map_err(|_| FrameError::Malformed("entry name is not utf-8".into()))?
            .to_string();
        safe_name(&name)?;
        let data_len_bytes: [u8; 8] = take(&mut pos, 8)?
            .try_into()
            .map_err(|_| FrameError::Truncated)?;
        let data_len = u64::from_le_bytes(data_len_bytes);
        let data_len = usize::try_from(data_len).map_err(|_| FrameError::Truncated)?;
        let data = take(&mut pos, data_len)?.to_vec();
        entries.push(Entry { name, data });
    }
    for e in &entries {
        if seen.contains(&e.name.as_str()) {
            return Err(FrameError::Malformed(format!(
                "duplicate entry `{}`",
                e.name
            )));
        }
        seen.push(&e.name);
    }
    if pos != rest.len() {
        return Err(FrameError::Malformed(format!(
            "{} trailing bytes after the last entry",
            rest.len() - pos
        )));
    }
    Ok(entries)
}

/// The entry whose name ends in `.aux` (a submitted Bookshelf bundle must
/// hold exactly one).
pub fn aux_entry(entries: &[Entry]) -> Result<&Entry, FrameError> {
    let mut auxes = entries.iter().filter(|e| e.name.ends_with(".aux"));
    let first = auxes
        .next()
        .ok_or_else(|| FrameError::Malformed("bundle holds no .aux entry".into()))?;
    if auxes.next().is_some() {
        return Err(FrameError::Malformed(
            "bundle holds more than one .aux entry".into(),
        ));
    }
    Ok(first)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Vec<Entry> {
        vec![
            Entry {
                name: "smoke.aux".into(),
                data: b"RowBasedPlacement : smoke.nodes".to_vec(),
            },
            Entry {
                name: "smoke.nodes".into(),
                data: vec![0, 1, 2, 255],
            },
        ]
    }

    #[test]
    fn roundtrip() {
        let entries = sample();
        assert_eq!(decode(&encode(&entries)).expect("decode"), entries);
    }

    #[test]
    fn rejects_bad_magic_truncation_and_trailing() {
        assert_eq!(decode(b"nope"), Err(FrameError::BadMagic));
        let full = encode(&sample());
        for cut in [MAGIC.len(), full.len() - 1, MAGIC.len() + 2] {
            assert!(
                matches!(decode(&full[..cut]), Err(FrameError::Truncated)),
                "cut at {cut} must be Truncated"
            );
        }
        let mut trailing = full.clone();
        trailing.push(0);
        assert!(matches!(decode(&trailing), Err(FrameError::Malformed(_))));
    }

    #[test]
    fn rejects_unsafe_and_duplicate_names() {
        for name in ["/etc/passwd", "../up", "a/../b", "a//b", ""] {
            let e = vec![Entry {
                name: name.into(),
                data: Vec::new(),
            }];
            assert!(
                matches!(decode(&encode(&e)), Err(FrameError::Malformed(_))),
                "name `{name}` must be rejected"
            );
        }
        let dup = vec![
            Entry {
                name: "x".into(),
                data: vec![1],
            },
            Entry {
                name: "x".into(),
                data: vec![2],
            },
        ];
        assert!(matches!(
            decode(&encode(&dup)),
            Err(FrameError::Malformed(_))
        ));
    }

    #[test]
    fn aux_entry_must_be_unique() {
        let entries = sample();
        assert_eq!(aux_entry(&entries).expect("one aux").name, "smoke.aux");
        assert!(aux_entry(&entries[1..]).is_err(), "no aux");
        let two = vec![
            Entry {
                name: "a.aux".into(),
                data: Vec::new(),
            },
            Entry {
                name: "b.aux".into(),
                data: Vec::new(),
            },
        ];
        assert!(aux_entry(&two).is_err(), "two auxes");
    }
}
