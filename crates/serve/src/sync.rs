//! Shared locking primitives for the daemon.
//!
//! Every mutex acquisition in `complx-serve` goes through
//! [`lock_or_recover`] — never a raw `.lock()`. Two reasons:
//!
//! 1. **Poison recovery.** A panicking holder only means one update was
//!    interrupted; the protected state (job table, queue, cache, stats,
//!    event buffers) is either structurally intact or about to be
//!    overwritten by a terminal transition, so serving it beats taking
//!    the whole daemon down.
//! 2. **A single choke point for static analysis.** `complx-lint`'s
//!    lock-order analysis (DESIGN.md §17) recognizes
//!    `lock_or_recover(&<path>.<name>)` call sites, names the lock after
//!    the final path segment, and propagates held-lock sets through the
//!    workspace call graph to reject acquisition-order cycles. A raw
//!    `.lock()` inside this crate is itself a lint finding, so the
//!    analysis cannot silently go blind.

use std::sync::{Mutex, MutexGuard};

/// Acquires `m`, recovering the guard when the mutex is poisoned.
pub fn lock_or_recover<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    match m.lock() {
        Ok(g) => g,
        Err(poisoned) => poisoned.into_inner(),
    }
}
