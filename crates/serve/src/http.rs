//! Hand-rolled HTTP/1.1, just enough for the job API.
//!
//! Zero-dependency by workspace policy: requests are parsed straight off
//! a [`TcpStream`]-shaped reader (request line, headers, `Content-Length`
//! body), responses are written with explicit lengths, and long-lived
//! progress streams use `Transfer-Encoding: chunked`. Every connection is
//! single-request (`Connection: close`) — the clients this serves submit
//! hundreds of short exchanges, not pipelines.

use std::io::{self, BufRead, Write};

/// Upper bound on one header line (request line included).
const MAX_LINE: usize = 16 * 1024;
/// Upper bound on the header count.
const MAX_HEADERS: usize = 64;
/// Default upper bound on a request body (a submitted Bookshelf bundle).
pub const MAX_BODY: usize = 256 * 1024 * 1024;

/// A parsed request: method, decoded path + query, headers, body.
#[derive(Debug)]
pub struct Request {
    /// `GET` / `POST` / `DELETE` (uppercase).
    pub method: String,
    /// Path without the query string (`/jobs/12/events`).
    pub path: String,
    /// Query parameters in request order (`?a=1&b=2`).
    pub query: Vec<(String, String)>,
    /// Headers with lower-cased names, in request order.
    pub headers: Vec<(String, String)>,
    /// The body (empty unless `Content-Length` said otherwise).
    pub body: Vec<u8>,
}

impl Request {
    /// The first query parameter with this name.
    pub fn query_param(&self, name: &str) -> Option<&str> {
        self.query
            .iter()
            .find(|(k, _)| k == name)
            .map(|(_, v)| v.as_str())
    }

    /// The first header with this (case-insensitive) name.
    pub fn header(&self, name: &str) -> Option<&str> {
        let lower = name.to_ascii_lowercase();
        self.headers
            .iter()
            .find(|(k, _)| *k == lower)
            .map(|(_, v)| v.as_str())
    }
}

/// Why a request could not be parsed; maps onto a 4xx response.
#[derive(Debug)]
pub enum HttpError {
    /// The peer closed before sending a full request.
    Io(io::Error),
    /// Malformed request line, header, or framing.
    Bad(String),
    /// The declared body exceeds the limit (413).
    TooLarge(usize),
}

impl std::fmt::Display for HttpError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            HttpError::Io(e) => write!(f, "i/o: {e}"),
            HttpError::Bad(why) => write!(f, "bad request: {why}"),
            HttpError::TooLarge(n) => write!(f, "body too large ({n} bytes)"),
        }
    }
}

impl From<io::Error> for HttpError {
    fn from(e: io::Error) -> Self {
        HttpError::Io(e)
    }
}

fn read_line(reader: &mut impl BufRead) -> Result<String, HttpError> {
    let mut line = Vec::new();
    loop {
        let mut byte = [0u8; 1];
        match reader.read(&mut byte)? {
            0 => break,
            _ => {
                if byte[0] == b'\n' {
                    break;
                }
                line.push(byte[0]);
                if line.len() > MAX_LINE {
                    return Err(HttpError::Bad("header line too long".into()));
                }
            }
        }
    }
    if line.last() == Some(&b'\r') {
        line.pop();
    }
    String::from_utf8(line).map_err(|_| HttpError::Bad("non-utf8 header".into()))
}

/// Reads one request off the wire. `Ok(None)` means the peer closed
/// cleanly before sending anything (an idle keep-alive probe).
pub fn read_request(
    reader: &mut impl BufRead,
    max_body: usize,
) -> Result<Option<Request>, HttpError> {
    let request_line = read_line(reader)?;
    if request_line.is_empty() {
        return Ok(None);
    }
    let mut parts = request_line.split_whitespace();
    let method = parts
        .next()
        .ok_or_else(|| HttpError::Bad("missing method".into()))?
        .to_ascii_uppercase();
    let target = parts
        .next()
        .ok_or_else(|| HttpError::Bad("missing request target".into()))?;
    let version = parts.next().unwrap_or("HTTP/1.1");
    if !version.starts_with("HTTP/1.") {
        return Err(HttpError::Bad(format!("unsupported version {version}")));
    }
    let (path, query_str) = match target.split_once('?') {
        Some((p, q)) => (p.to_string(), q),
        None => (target.to_string(), ""),
    };
    let query = query_str
        .split('&')
        .filter(|kv| !kv.is_empty())
        .map(|kv| match kv.split_once('=') {
            Some((k, v)) => (k.to_string(), v.to_string()),
            None => (kv.to_string(), String::new()),
        })
        .collect();

    let mut headers = Vec::new();
    loop {
        let line = read_line(reader)?;
        if line.is_empty() {
            break;
        }
        if headers.len() >= MAX_HEADERS {
            return Err(HttpError::Bad("too many headers".into()));
        }
        let (name, value) = line
            .split_once(':')
            .ok_or_else(|| HttpError::Bad(format!("malformed header `{line}`")))?;
        headers.push((name.trim().to_ascii_lowercase(), value.trim().to_string()));
    }

    let content_length = headers
        .iter()
        .find(|(k, _)| k == "content-length")
        .map(|(_, v)| {
            v.parse::<usize>()
                .map_err(|_| HttpError::Bad(format!("bad content-length `{v}`")))
        })
        .transpose()?
        .unwrap_or(0);
    if content_length > max_body {
        return Err(HttpError::TooLarge(content_length));
    }
    let mut body = vec![0u8; content_length];
    reader.read_exact(&mut body)?;
    Ok(Some(Request {
        method,
        path,
        query,
        headers,
        body,
    }))
}

/// The reason phrase for the status codes this server emits.
pub fn reason(status: u16) -> &'static str {
    match status {
        200 => "OK",
        202 => "Accepted",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        409 => "Conflict",
        413 => "Payload Too Large",
        429 => "Too Many Requests",
        500 => "Internal Server Error",
        503 => "Service Unavailable",
        _ => "",
    }
}

/// Writes a complete fixed-length response and flushes it.
pub fn write_response(
    w: &mut impl Write,
    status: u16,
    content_type: &str,
    body: &[u8],
) -> io::Result<()> {
    write!(
        w,
        "HTTP/1.1 {} {}\r\nContent-Type: {}\r\nContent-Length: {}\r\nConnection: close\r\n\r\n",
        status,
        reason(status),
        content_type,
        body.len()
    )?;
    w.write_all(body)?;
    w.flush()
}

/// Starts a chunked response; follow with [`write_chunk`] calls and a
/// final [`finish_chunked`].
pub fn start_chunked(w: &mut impl Write, status: u16, content_type: &str) -> io::Result<()> {
    write!(
        w,
        "HTTP/1.1 {} {}\r\nContent-Type: {}\r\nTransfer-Encoding: chunked\r\nConnection: close\r\n\r\n",
        status,
        reason(status),
        content_type,
    )?;
    w.flush()
}

/// Writes one chunk (no-op for empty data — an empty chunk would
/// terminate the stream).
pub fn write_chunk(w: &mut impl Write, data: &[u8]) -> io::Result<()> {
    if data.is_empty() {
        return Ok(());
    }
    write!(w, "{:x}\r\n", data.len())?;
    w.write_all(data)?;
    w.write_all(b"\r\n")?;
    w.flush()
}

/// Terminates a chunked response.
pub fn finish_chunked(w: &mut impl Write) -> io::Result<()> {
    w.write_all(b"0\r\n\r\n")?;
    w.flush()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::BufReader;

    #[test]
    fn parses_request_with_query_headers_and_body() {
        let raw = b"POST /jobs?priority=high&max_iterations=9 HTTP/1.1\r\n\
                    Host: x\r\nContent-Length: 5\r\nX-Custom: v\r\n\r\nhello";
        let req = read_request(&mut BufReader::new(&raw[..]), MAX_BODY)
            .expect("parse")
            .expect("non-empty");
        assert_eq!(req.method, "POST");
        assert_eq!(req.path, "/jobs");
        assert_eq!(req.query_param("priority"), Some("high"));
        assert_eq!(req.query_param("max_iterations"), Some("9"));
        assert_eq!(req.header("x-custom"), Some("v"));
        assert_eq!(req.body, b"hello");
    }

    #[test]
    fn empty_connection_yields_none() {
        let raw: &[u8] = b"";
        assert!(read_request(&mut BufReader::new(raw), MAX_BODY)
            .expect("parse")
            .is_none());
    }

    #[test]
    fn oversized_body_is_rejected() {
        let raw = b"POST /jobs HTTP/1.1\r\nContent-Length: 100\r\n\r\n";
        match read_request(&mut BufReader::new(&raw[..]), 10) {
            Err(HttpError::TooLarge(100)) => {}
            other => panic!("expected TooLarge, got {other:?}"),
        }
    }

    #[test]
    fn response_has_length_and_close() {
        let mut out = Vec::new();
        write_response(&mut out, 200, "application/json", b"{}").expect("write");
        let text = String::from_utf8(out).expect("utf8");
        assert!(text.starts_with("HTTP/1.1 200 OK\r\n"));
        assert!(text.contains("Content-Length: 2\r\n"));
        assert!(text.contains("Connection: close\r\n"));
        assert!(text.ends_with("\r\n\r\n{}"));
    }

    #[test]
    fn chunked_stream_roundtrip_shape() {
        let mut out = Vec::new();
        start_chunked(&mut out, 200, "application/x-ndjson").expect("start");
        write_chunk(&mut out, b"abc\n").expect("chunk");
        write_chunk(&mut out, b"").expect("empty chunk is a no-op");
        finish_chunked(&mut out).expect("finish");
        let text = String::from_utf8(out).expect("utf8");
        assert!(text.contains("Transfer-Encoding: chunked"));
        assert!(text.ends_with("4\r\nabc\n\r\n0\r\n\r\n"));
    }
}
