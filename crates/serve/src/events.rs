//! Live per-job event streams: an append-only byte buffer with blocking
//! tail reads.
//!
//! The solve's JSONL sink writes here (one flush per event — see the obs
//! crate's line-buffered contract), and any number of
//! `GET /jobs/{id}/events` streamers tail it concurrently. Readers block
//! on a condvar until more bytes arrive or the job closes the buffer, so
//! progress reaches the socket the moment the placer emits it.

use std::io::{self, Write};
use std::sync::{Arc, Condvar, Mutex};
use std::time::Duration;

use crate::sync::lock_or_recover;

#[derive(Debug, Default)]
struct BufState {
    bytes: Vec<u8>,
    closed: bool,
}

/// An append-only event buffer, closed exactly once when its job reaches a
/// terminal state.
#[derive(Debug, Default)]
pub struct EventBuf {
    state: Mutex<BufState>,
    grew: Condvar,
}

impl EventBuf {
    /// A fresh, open buffer.
    pub fn new() -> Arc<Self> {
        Arc::new(Self::default())
    }

    /// Appends bytes and wakes tailing readers.
    pub fn append(&self, data: &[u8]) {
        let mut st = lock_or_recover(&self.state);
        st.bytes.extend_from_slice(data);
        drop(st);
        self.grew.notify_all();
    }

    /// Marks the stream complete and wakes tailing readers one last time.
    pub fn close(&self) {
        lock_or_recover(&self.state).closed = true;
        self.grew.notify_all();
    }

    /// Whether [`Self::close`] has run.
    pub fn is_closed(&self) -> bool {
        lock_or_recover(&self.state).closed
    }

    /// A snapshot of everything appended so far.
    pub fn snapshot(&self) -> Vec<u8> {
        lock_or_recover(&self.state).bytes.clone()
    }

    /// Blocks until bytes beyond `from` exist (returning them) or the
    /// buffer is closed with nothing further (returning `None`). The
    /// `patience` bound keeps a streamer responsive to its own socket
    /// errors even if a job stays silent for minutes.
    pub fn read_past(&self, from: usize, patience: Duration) -> Option<Vec<u8>> {
        let mut st = lock_or_recover(&self.state);
        loop {
            if st.bytes.len() > from {
                return Some(st.bytes[from..].to_vec());
            }
            if st.closed {
                return None;
            }
            match self.grew.wait_timeout(st, patience) {
                Ok((next, timeout)) => {
                    st = next;
                    if timeout.timed_out() {
                        // Let the caller decide whether to keep waiting (an
                        // empty slice distinguishes "still open, nothing
                        // new" from EOF).
                        return Some(Vec::new());
                    }
                }
                // Treat poison like a timeout: surface an empty tick and
                // let the caller re-enter through the recovering lock.
                Err(_poisoned) => return Some(Vec::new()),
            }
        }
    }
}

/// `Write` adapter the JSONL sink plugs into: every write appends to the
/// buffer, every flush wakes readers (flush is implicit in `append`).
#[derive(Debug, Clone)]
pub struct EventBufWriter(pub Arc<EventBuf>);

impl Write for EventBufWriter {
    fn write(&mut self, data: &[u8]) -> io::Result<usize> {
        self.0.append(data);
        Ok(data.len())
    }
    fn flush(&mut self) -> io::Result<()> {
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    #[test]
    fn tail_sees_appends_then_eof() {
        let buf = EventBuf::new();
        buf.append(b"line1\n");
        let got = buf
            .read_past(0, Duration::from_millis(50))
            .expect("bytes available");
        assert_eq!(got, b"line1\n");
        // Nothing new and still open → empty progress tick.
        let tick = buf
            .read_past(6, Duration::from_millis(10))
            .expect("open stream ticks");
        assert!(tick.is_empty());
        buf.close();
        assert!(buf.read_past(6, Duration::from_millis(10)).is_none());
    }

    #[test]
    fn concurrent_reader_wakes_on_append() {
        let buf = EventBuf::new();
        let reader = {
            let buf = Arc::clone(&buf);
            std::thread::spawn(move || buf.read_past(0, Duration::from_secs(5)))
        };
        std::thread::sleep(Duration::from_millis(20));
        buf.append(b"x");
        let got = reader.join().expect("reader thread").expect("bytes");
        assert_eq!(got, b"x");
    }
}
