//! Job model: identifiers, priorities, the state machine, and the table.
//!
//! ```text
//!            ┌──────────┐   scheduler pops   ┌─────────┐
//!  submit →  │  queued  │ ─────────────────→ │ running │ ──→ done
//!            └──────────┘                    └─────────┘ ──→ failed
//!                 │  DELETE (dequeue)             │  DELETE (token trips)
//!                 └──────────→ cancelled ←────────┘
//! ```
//!
//! A duplicate submission whose `(design_hash, config_hash)` key is in the
//! result cache skips the queue entirely and is born `done` with
//! `cached = true`. Terminal states (`done`, `failed`, `cancelled`) never
//! transition again.

use std::collections::BTreeMap;
use std::path::PathBuf;
use std::sync::Arc;

use complx_netlist::Design;
use complx_obs::JsonValue;
use complx_par::CancelToken;
use complx_place::PlacerConfig;

use crate::events::EventBuf;

/// Scheduling priority; higher drains first, FIFO within a class.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Priority {
    /// Drains before everything else.
    High,
    /// The default.
    Normal,
    /// Drains last.
    Low,
}

impl Priority {
    /// Scheduler rank: lower drains first.
    pub fn rank(self) -> u8 {
        match self {
            Priority::High => 0,
            Priority::Normal => 1,
            Priority::Low => 2,
        }
    }

    /// Parses a query-parameter value.
    pub fn parse(s: &str) -> Result<Self, String> {
        match s {
            "high" => Ok(Priority::High),
            "normal" => Ok(Priority::Normal),
            "low" => Ok(Priority::Low),
            other => Err(format!("unknown priority `{other}` (high|normal|low)")),
        }
    }
}

impl std::fmt::Display for Priority {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            Priority::High => "high",
            Priority::Normal => "normal",
            Priority::Low => "low",
        })
    }
}

/// The job state machine (see the module diagram).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum JobState {
    /// Admitted, waiting for a scheduler slot.
    Queued,
    /// A scheduler worker is solving it.
    Running,
    /// Finished; the result bundle is spooled and servable.
    Done,
    /// The solve failed (the error string says why).
    Failed,
    /// Cancelled while queued or mid-solve.
    Cancelled,
}

impl JobState {
    /// Whether the state can never change again.
    pub fn is_terminal(self) -> bool {
        matches!(
            self,
            JobState::Done | JobState::Failed | JobState::Cancelled
        )
    }
}

impl std::fmt::Display for JobState {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            JobState::Queued => "queued",
            JobState::Running => "running",
            JobState::Done => "done",
            JobState::Failed => "failed",
            JobState::Cancelled => "cancelled",
        })
    }
}

/// One submitted job and everything the scheduler needs to run it.
#[derive(Debug)]
pub struct Job {
    /// Monotonic identifier (also the spool directory name).
    pub id: u64,
    /// Scheduling priority.
    pub priority: Priority,
    /// Current state.
    pub state: JobState,
    /// Design name from the submitted bundle.
    pub design_name: String,
    /// Canonical design fingerprint (`core::idhash::design_hash`).
    pub design_hash: u64,
    /// Canonical configuration fingerprint (`core::idhash::config_hash`).
    pub config_hash: u64,
    /// Whether the result came from the cache (born `done`).
    pub cached: bool,
    /// The parsed design, kept until the solve runs.
    pub design: Option<Arc<Design>>,
    /// The placer configuration resolved from the submit parameters.
    pub config: PlacerConfig,
    /// Cooperative cancellation for this job's solve.
    pub cancel: CancelToken,
    /// Live JSONL progress stream (written by the solve's sink, read by
    /// `GET /jobs/{id}/events`).
    pub events: Arc<EventBuf>,
    /// This job's own spool directory (input bundle, status manifest).
    pub spool_dir: PathBuf,
    /// Directory holding the servable result artifacts — the job's own
    /// directory, or the *producing* job's directory for cache hits.
    pub result_dir: PathBuf,
    /// Error message for `failed` jobs.
    pub error: Option<String>,
    /// Result summary (metrics subset), present once `done`.
    pub result: Option<JsonValue>,
}

impl Job {
    /// Renders the status JSON served by `GET /jobs/{id}`.
    pub fn status_json(&self) -> JsonValue {
        let mut fields = vec![
            ("id", JsonValue::from(self.id as i64)),
            ("state", self.state.to_string().into()),
            ("priority", self.priority.to_string().into()),
            ("design", self.design_name.clone().into()),
            ("design_hash", format!("{:016x}", self.design_hash).into()),
            ("config_hash", format!("{:016x}", self.config_hash).into()),
            ("cached", self.cached.into()),
        ];
        if let Some(err) = &self.error {
            fields.push(("error", err.clone().into()));
        }
        if let Some(result) = &self.result {
            fields.push(("result", result.clone()));
        }
        JsonValue::object(fields)
    }
}

/// The id-ordered job table (a `BTreeMap` so listings are deterministic).
#[derive(Debug, Default)]
pub struct JobTable {
    jobs: BTreeMap<u64, Job>,
}

impl JobTable {
    /// Inserts a new job.
    pub fn insert(&mut self, job: Job) {
        self.jobs.insert(job.id, job);
    }

    /// Removes a job (admission rollback after a full queue).
    pub fn remove(&mut self, id: u64) -> Option<Job> {
        self.jobs.remove(&id)
    }

    /// Immutable job lookup.
    pub fn get(&self, id: u64) -> Option<&Job> {
        self.jobs.get(&id)
    }

    /// Mutable job lookup.
    pub fn get_mut(&mut self, id: u64) -> Option<&mut Job> {
        self.jobs.get_mut(&id)
    }

    /// Number of jobs currently in `state`.
    pub fn count_in(&self, state: JobState) -> usize {
        self.jobs.values().filter(|j| j.state == state).count()
    }

    /// Iterates all jobs in id order.
    pub fn values(&self) -> impl Iterator<Item = &Job> {
        self.jobs.values()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn priority_ranks_and_parses() {
        assert!(Priority::High.rank() < Priority::Normal.rank());
        assert!(Priority::Normal.rank() < Priority::Low.rank());
        assert_eq!(Priority::parse("high"), Ok(Priority::High));
        assert!(Priority::parse("urgent").is_err());
    }

    #[test]
    fn terminal_states() {
        assert!(!JobState::Queued.is_terminal());
        assert!(!JobState::Running.is_terminal());
        assert!(JobState::Done.is_terminal());
        assert!(JobState::Failed.is_terminal());
        assert!(JobState::Cancelled.is_terminal());
    }
}
