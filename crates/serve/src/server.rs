//! The daemon: accept loop, scheduler workers, and endpoint handlers.
//!
//! Endpoints (all bodies JSON unless noted):
//!
//! | method | path                | semantics                                    |
//! |--------|---------------------|----------------------------------------------|
//! | POST   | `/jobs`             | submit a framed bundle → 202/200/400/429/503 |
//! | GET    | `/jobs/{id}`        | status JSON                                  |
//! | GET    | `/jobs/{id}/events` | chunked live JSONL progress stream           |
//! | GET    | `/jobs/{id}/result` | framed result bundle (report + solution)     |
//! | DELETE | `/jobs/{id}`        | cancel (dequeue, or trip the solve's token)  |
//! | GET    | `/stats`            | queue/cache/job counters                     |
//! | GET    | `/healthz`          | liveness probe                               |
//! | POST   | `/shutdown`         | graceful drain and exit                      |
//!
//! Submit query parameters: `priority=high|normal|low`,
//! `preset=default|fast|simpl|finest-grid|detail|stress`,
//! `projection=geometric|electro` (which `P_C` backend the solve uses),
//! and `max_iterations=N`. The `stress` preset disables every convergence
//! criterion so the solve runs to its iteration cap — the deterministic
//! way to keep a job busy for cancellation and overload tests.
//!
//! Concurrency model: one accept thread, one detached thread per
//! connection (requests are `Connection: close`), and `jobs` scheduler
//! workers that pop the priority queue and run solves through
//! [`complx_place::solve`] with a per-job thread budget. The determinism
//! contract (bit-identical results at any thread count) is what makes a
//! served result byte-identical to a CLI run of the same bundle.

use std::io::{self, BufReader, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::path::Path;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex, OnceLock};
use std::thread::JoinHandle;
use std::time::Duration;

use complx_netlist::bookshelf;
use complx_obs::{JsonValue, JsonlSink, Sink};
use complx_par::CancelToken;
use complx_place::{config_hash, design_hash, solve, PlaceError, PlacerConfig, SolveRequest};

use crate::cache::{self, ResultCache};
use crate::events::{EventBuf, EventBufWriter};
use crate::framing;
use crate::http::{self, HttpError, Request};
use crate::job::{Job, JobState, JobTable, Priority};
use crate::queue::JobQueue;
use crate::spool;
use crate::sync::lock_or_recover;

/// How long a silent events streamer waits between liveness ticks.
const STREAM_PATIENCE: Duration = Duration::from_millis(200);
/// Socket read/write deadline — a stuck peer cannot pin a handler thread.
const SOCKET_DEADLINE: Duration = Duration::from_secs(30);

/// Server construction parameters (the `complx-serve` CLI maps onto this).
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Bind address; port `0` picks an ephemeral port (see
    /// [`Server::addr`]).
    pub bind: String,
    /// Number of scheduler workers — jobs solving concurrently.
    pub jobs: usize,
    /// Thread budget each solve runs under (`complx_par::with_threads`).
    pub threads_per_job: usize,
    /// Queue depth beyond which submissions are shed with 429.
    pub queue_capacity: usize,
    /// Result-cache capacity in entries (`0` disables caching).
    pub cache_entries: usize,
    /// Largest accepted request body in bytes.
    pub max_body: usize,
    /// Spool root; one subdirectory per job id.
    pub spool: std::path::PathBuf,
}

impl ServeConfig {
    /// Sensible defaults around a spool root: ephemeral port, 2 workers ×
    /// 2 threads, queue of 64, cache of 128.
    pub fn new(spool: impl Into<std::path::PathBuf>) -> Self {
        Self {
            bind: "127.0.0.1:0".to_string(),
            jobs: 2,
            threads_per_job: 2,
            queue_capacity: 64,
            cache_entries: 128,
            max_body: http::MAX_BODY,
            spool: spool.into(),
        }
    }
}

/// Monotonic job-outcome counters served by `GET /stats`.
#[derive(Debug, Default, Clone, Copy)]
struct Stats {
    submitted: u64,
    completed: u64,
    failed: u64,
    cancelled: u64,
    rejected: u64,
    cache_served: u64,
}

/// State shared by the accept loop, connection handlers, and workers.
struct Shared {
    cfg: ServeConfig,
    jobs: Mutex<JobTable>,
    queue: Mutex<JobQueue>,
    wake: Condvar,
    cache: Mutex<ResultCache>,
    stats: Mutex<Stats>,
    shutdown: AtomicBool,
    next_id: AtomicU64,
    addr: OnceLock<SocketAddr>,
}

/// A running daemon; dropping it does *not* stop the threads — call
/// [`Server::request_shutdown`] then [`Server::join`], or let a client
/// `POST /shutdown`.
pub struct Server {
    shared: Arc<Shared>,
    addr: SocketAddr,
    accept: JoinHandle<()>,
    workers: Vec<JoinHandle<()>>,
}

impl Server {
    /// Binds, spawns the workers and the accept loop, and returns.
    pub fn start(cfg: ServeConfig) -> io::Result<Server> {
        std::fs::create_dir_all(&cfg.spool)?;
        let listener = TcpListener::bind(&cfg.bind)?;
        let addr = listener.local_addr()?;
        complx_par::prewarm(cfg.jobs.max(1) * cfg.threads_per_job.max(1));
        let worker_count = cfg.jobs.max(1);
        let shared = Arc::new(Shared {
            jobs: Mutex::new(JobTable::default()),
            queue: Mutex::new(JobQueue::new(cfg.queue_capacity)),
            wake: Condvar::new(),
            cache: Mutex::new(ResultCache::new(cfg.cache_entries)),
            stats: Mutex::new(Stats::default()),
            shutdown: AtomicBool::new(false),
            next_id: AtomicU64::new(1),
            addr: OnceLock::new(),
            cfg,
        });
        let _ = shared.addr.set(addr);
        let mut workers = Vec::with_capacity(worker_count);
        for i in 0..worker_count {
            let s = Arc::clone(&shared);
            workers.push(
                std::thread::Builder::new()
                    .name(format!("serve-worker-{i}"))
                    .spawn(move || worker_loop(&s))?,
            );
        }
        let accept = {
            let s = Arc::clone(&shared);
            std::thread::Builder::new()
                .name("serve-accept".to_string())
                .spawn(move || accept_loop(&s, &listener))?
        };
        Ok(Server {
            shared,
            addr,
            accept,
            workers,
        })
    }

    /// The bound address (resolves port `0` to the actual ephemeral port).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Initiates the same graceful drain as `POST /shutdown`.
    pub fn request_shutdown(&self) {
        initiate_shutdown(&self.shared);
    }

    /// Blocks until the accept loop and every worker have exited.
    pub fn join(self) {
        let Server {
            accept, workers, ..
        } = self;
        let _ = accept.join();
        for w in workers {
            let _ = w.join();
        }
    }
}

/// Graceful drain: refuse new work, cancel the queued backlog, trip every
/// running solve's token, and wake the accept loop so it can exit.
fn initiate_shutdown(shared: &Arc<Shared>) {
    if shared.shutdown.swap(true, Ordering::SeqCst) {
        return; // already draining
    }
    let drained = lock_or_recover(&shared.queue).drain();
    for id in drained {
        let mut jobs = lock_or_recover(&shared.jobs);
        let Some(job) = jobs.get_mut(id) else {
            continue;
        };
        if job.state != JobState::Queued {
            continue;
        }
        job.state = JobState::Cancelled;
        job.error = Some("server shutdown".to_string());
        job.events.close();
        let status = job.status_json();
        let dir = job.spool_dir.clone();
        drop(jobs);
        lock_or_recover(&shared.stats).cancelled += 1;
        commit_manifest(&dir, &status);
    }
    for job in lock_or_recover(&shared.jobs).values() {
        if job.state == JobState::Running {
            job.cancel.cancel();
        }
    }
    shared.wake.notify_all();
    if let Some(addr) = shared.addr.get() {
        // Unblock the accept loop: it re-checks the flag per connection.
        let _ = TcpStream::connect_timeout(addr, Duration::from_secs(1));
    }
}

fn accept_loop(shared: &Arc<Shared>, listener: &TcpListener) {
    for conn in listener.incoming() {
        if shared.shutdown.load(Ordering::SeqCst) {
            break;
        }
        let Ok(stream) = conn else { continue };
        let s = Arc::clone(shared);
        let spawned = std::thread::Builder::new()
            .name("serve-conn".to_string())
            .spawn(move || handle_connection(&s, stream));
        if spawned.is_err() {
            // Out of threads: shed the connection rather than the server.
            continue;
        }
    }
}

fn respond_json(stream: &mut TcpStream, status: u16, body: &JsonValue) {
    let _ = http::write_response(
        stream,
        status,
        "application/json",
        body.to_json_string().as_bytes(),
    );
}

fn error_json(message: impl Into<String>) -> JsonValue {
    JsonValue::object(vec![("error", message.into().into())])
}

fn handle_connection(shared: &Arc<Shared>, mut stream: TcpStream) {
    let _ = stream.set_read_timeout(Some(SOCKET_DEADLINE));
    let _ = stream.set_write_timeout(Some(SOCKET_DEADLINE));
    let Ok(read_half) = stream.try_clone() else {
        return;
    };
    let mut reader = BufReader::new(read_half);
    let req = match http::read_request(&mut reader, shared.cfg.max_body) {
        Ok(Some(req)) => req,
        Ok(None) => return,
        Err(HttpError::TooLarge(n)) => {
            respond_json(
                &mut stream,
                413,
                &error_json(format!("body too large ({n} bytes)")),
            );
            return;
        }
        Err(HttpError::Bad(why)) => {
            respond_json(&mut stream, 400, &error_json(why));
            return;
        }
        Err(HttpError::Io(_)) => return,
    };
    dispatch(shared, &req, &mut stream);
    let _ = stream.flush();
}

fn dispatch(shared: &Arc<Shared>, req: &Request, stream: &mut TcpStream) {
    let segments: Vec<&str> = req.path.split('/').filter(|s| !s.is_empty()).collect();
    match (req.method.as_str(), segments.as_slice()) {
        ("GET", ["healthz"]) => {
            respond_json(stream, 200, &JsonValue::object(vec![("ok", true.into())]));
        }
        ("GET", ["stats"]) => {
            let body = stats_json(shared);
            respond_json(stream, 200, &body);
        }
        ("POST", ["jobs"]) => {
            let (status, body) = handle_submit(shared, req);
            respond_json(stream, status, &body);
        }
        ("GET", ["jobs", id]) => match parse_id(id) {
            Some(id) => match lock_or_recover(&shared.jobs).get(id) {
                Some(job) => respond_json(stream, 200, &job.status_json()),
                None => respond_json(stream, 404, &error_json(format!("no job {id}"))),
            },
            None => respond_json(stream, 400, &error_json("bad job id")),
        },
        ("DELETE", ["jobs", id]) => match parse_id(id) {
            Some(id) => {
                let (status, body) = handle_cancel(shared, id);
                respond_json(stream, status, &body);
            }
            None => respond_json(stream, 400, &error_json("bad job id")),
        },
        ("GET", ["jobs", id, "events"]) => match parse_id(id) {
            Some(id) => handle_events(shared, id, stream),
            None => respond_json(stream, 400, &error_json("bad job id")),
        },
        ("GET", ["jobs", id, "result"]) => match parse_id(id) {
            Some(id) => handle_result(shared, id, stream),
            None => respond_json(stream, 400, &error_json("bad job id")),
        },
        ("POST", ["shutdown"]) => {
            respond_json(
                stream,
                200,
                &JsonValue::object(vec![("shutting_down", true.into())]),
            );
            initiate_shutdown(shared);
        }
        _ => {
            respond_json(
                stream,
                404,
                &error_json(format!("no route {} {}", req.method, req.path)),
            );
        }
    }
}

fn parse_id(s: &str) -> Option<u64> {
    s.parse::<u64>().ok()
}

/// Maps the submit query parameters onto a placer configuration.
fn resolve_config(req: &Request) -> Result<PlacerConfig, String> {
    let preset = req.query_param("preset").unwrap_or("default");
    let mut config = match preset {
        "default" => PlacerConfig::default(),
        "fast" => PlacerConfig::fast(),
        "simpl" => PlacerConfig::simpl(),
        "finest-grid" => PlacerConfig::finest_grid(),
        "detail" => PlacerConfig::projection_with_detail(),
        "stress" => {
            // No convergence criterion can fire: the solve runs to its
            // iteration cap (or its cancel token). Load tests use this to
            // hold scheduler slots for a deterministic amount of work.
            PlacerConfig {
                gap_tolerance: f64::NEG_INFINITY,
                overflow_tolerance: f64::NEG_INFINITY,
                stagnation_window: usize::MAX,
                ..PlacerConfig::default()
            }
        }
        other => {
            return Err(format!(
                "unknown preset `{other}` (default|fast|simpl|finest-grid|detail|stress)"
            ))
        }
    };
    if let Some(n) = req.query_param("max_iterations") {
        let n: usize = n.parse().map_err(|_| format!("bad max_iterations `{n}`"))?;
        if n == 0 {
            return Err("max_iterations must be at least 1".to_string());
        }
        config.max_iterations = n;
    }
    if let Some(b) = req.query_param("projection") {
        config.projection = b
            .parse()
            .map_err(|_| format!("bad projection `{b}` (geometric|electro)"))?;
    }
    Ok(config)
}

fn handle_submit(shared: &Arc<Shared>, req: &Request) -> (u16, JsonValue) {
    if shared.shutdown.load(Ordering::SeqCst) {
        return (503, error_json("shutting down"));
    }
    let priority = match req.query_param("priority").map(Priority::parse) {
        None => Priority::Normal,
        Some(Ok(p)) => p,
        Some(Err(why)) => return (400, error_json(why)),
    };
    let config = match resolve_config(req) {
        Ok(c) => c,
        Err(why) => return (400, error_json(why)),
    };
    let entries = match framing::decode(&req.body) {
        Ok(e) => e,
        Err(e) => return (400, error_json(format!("bad bundle frame: {e}"))),
    };
    let aux_name = match framing::aux_entry(&entries) {
        Ok(e) => e.name.clone(),
        Err(e) => return (400, error_json(format!("bad bundle frame: {e}"))),
    };

    let id = shared.next_id.fetch_add(1, Ordering::SeqCst);
    let dir = spool::job_dir(&shared.cfg.spool, id);
    let aux_path = match spool::write_input(&dir, &entries, &aux_name) {
        Ok(p) => p,
        Err(e) => return (500, error_json(format!("spool: {e}"))),
    };
    let bundle = match bookshelf::read_aux(&aux_path) {
        Ok(b) => b,
        Err(e) => return (400, error_json(format!("bad bundle: {e}"))),
    };
    let dh = design_hash(&bundle.design);
    let ch = config_hash(&config);
    let design_name = bundle.design.name().to_string();

    // Bind the lookup result so the cache guard (a scrutinee temporary)
    // drops at this statement instead of living across the whole hit path.
    let cache_hit = lock_or_recover(&shared.cache).lookup(dh, ch);
    if let Some(entry) = cache_hit {
        // Born done: the determinism contract makes the producer's spooled
        // artifacts this submission's result, byte for byte.
        let events = EventBuf::new();
        events.close();
        let job = Job {
            id,
            priority,
            state: JobState::Done,
            design_name,
            design_hash: dh,
            config_hash: ch,
            cached: true,
            design: None,
            config,
            cancel: CancelToken::new(),
            events,
            spool_dir: dir.clone(),
            result_dir: entry.spool_dir.clone(),
            error: None,
            result: Some(entry.result.clone()),
        };
        let status = job.status_json();
        lock_or_recover(&shared.jobs).insert(job);
        {
            let mut stats = lock_or_recover(&shared.stats);
            stats.submitted += 1;
            stats.completed += 1;
            stats.cache_served += 1;
        }
        commit_manifest(&dir, &status);
        return (200, status);
    }

    let job = Job {
        id,
        priority,
        state: JobState::Queued,
        design_name,
        design_hash: dh,
        config_hash: ch,
        cached: false,
        design: Some(Arc::new(bundle.design)),
        config,
        cancel: CancelToken::new(),
        events: EventBuf::new(),
        spool_dir: dir.clone(),
        result_dir: dir,
        error: None,
        result: None,
    };
    let status = job.status_json();
    {
        // Table insert and queue admission commit together so a pop or a
        // DELETE can never observe one without the other.
        let mut jobs = lock_or_recover(&shared.jobs);
        let mut queue = lock_or_recover(&shared.queue);
        if let Err(full) = queue.push(priority, id) {
            drop(queue);
            drop(jobs);
            lock_or_recover(&shared.stats).rejected += 1;
            return (
                429,
                JsonValue::object(vec![
                    ("error", "queue full".into()),
                    ("capacity", full.capacity.into()),
                ]),
            );
        }
        jobs.insert(job);
    }
    lock_or_recover(&shared.stats).submitted += 1;
    shared.wake.notify_one();
    (202, status)
}

fn handle_cancel(shared: &Arc<Shared>, id: u64) -> (u16, JsonValue) {
    let mut jobs = lock_or_recover(&shared.jobs);
    let Some(job) = jobs.get_mut(id) else {
        return (404, error_json(format!("no job {id}")));
    };
    match job.state {
        JobState::Queued => {
            lock_or_recover(&shared.queue).remove(id);
            job.state = JobState::Cancelled;
            job.error = Some("cancelled while queued".to_string());
            job.events.close();
            let status = job.status_json();
            let dir = job.spool_dir.clone();
            drop(jobs);
            lock_or_recover(&shared.stats).cancelled += 1;
            commit_manifest(&dir, &status);
            (200, status)
        }
        JobState::Running => {
            // Cooperative: the token trips, the solve unwinds at its next
            // cancellation point, and the worker records the terminal state.
            job.cancel.cancel();
            (
                202,
                JsonValue::object(vec![
                    ("id", (id as i64).into()),
                    ("state", "running".into()),
                    ("cancel_requested", true.into()),
                ]),
            )
        }
        state => (
            409,
            JsonValue::object(vec![
                ("error", "already terminal".into()),
                ("state", state.to_string().into()),
            ]),
        ),
    }
}

fn handle_events(shared: &Arc<Shared>, id: u64, stream: &mut TcpStream) {
    let looked_up = {
        let jobs = lock_or_recover(&shared.jobs);
        jobs.get(id)
            .map(|job| (Arc::clone(&job.events), job.cached, job.result_dir.clone()))
    };
    let Some((events, cached, result_dir)) = looked_up else {
        respond_json(stream, 404, &error_json(format!("no job {id}")));
        return;
    };
    if http::start_chunked(stream, 200, "application/x-ndjson").is_err() {
        return;
    }
    if cached {
        // A cache-hit job never ran; replay the producer's recorded stream.
        if let Ok(data) = std::fs::read(result_dir.join("events.jsonl")) {
            if http::write_chunk(stream, &data).is_err() {
                return;
            }
        }
        let _ = http::finish_chunked(stream);
        return;
    }
    let mut pos = 0usize;
    loop {
        match events.read_past(pos, STREAM_PATIENCE) {
            None => break, // closed with nothing further: end of stream
            Some(data) if data.is_empty() => continue, // liveness tick
            Some(data) => {
                pos += data.len();
                if http::write_chunk(stream, &data).is_err() {
                    return; // peer went away; the buffer is unaffected
                }
            }
        }
    }
    let _ = http::finish_chunked(stream);
}

fn handle_result(shared: &Arc<Shared>, id: u64, stream: &mut TcpStream) {
    let looked_up = {
        let jobs = lock_or_recover(&shared.jobs);
        jobs.get(id).map(|job| (job.state, job.result_dir.clone()))
    };
    match looked_up {
        None => respond_json(stream, 404, &error_json(format!("no job {id}"))),
        Some((JobState::Done, result_dir)) => match spool::read_result_frame(&result_dir) {
            Ok(entries) => {
                let bytes = framing::encode(&entries);
                let _ = http::write_response(stream, 200, "application/x-complx-bundle", &bytes);
            }
            Err(e) => respond_json(stream, 500, &error_json(format!("spool: {e}"))),
        },
        Some((state, _)) => respond_json(
            stream,
            409,
            &JsonValue::object(vec![
                ("error", "no result for this job".into()),
                ("state", state.to_string().into()),
            ]),
        ),
    }
}

fn stats_json(shared: &Arc<Shared>) -> JsonValue {
    let stats = *lock_or_recover(&shared.stats);
    let (queued, running) = {
        let jobs = lock_or_recover(&shared.jobs);
        (
            jobs.count_in(JobState::Queued),
            jobs.count_in(JobState::Running),
        )
    };
    let (depth, queue_capacity) = {
        let q = lock_or_recover(&shared.queue);
        (q.len(), q.capacity())
    };
    let (hits, misses, evictions, cache_capacity, cache_len) = {
        let c = lock_or_recover(&shared.cache);
        let (h, m, e, cap) = c.counters();
        (h, m, e, cap, c.len())
    };
    JsonValue::object(vec![
        (
            "jobs",
            JsonValue::object(vec![
                ("submitted", stats.submitted.into()),
                ("completed", stats.completed.into()),
                ("failed", stats.failed.into()),
                ("cancelled", stats.cancelled.into()),
                ("rejected", stats.rejected.into()),
                ("cache_served", stats.cache_served.into()),
                ("queued", queued.into()),
                ("running", running.into()),
            ]),
        ),
        (
            "queue",
            JsonValue::object(vec![
                ("depth", depth.into()),
                ("capacity", queue_capacity.into()),
            ]),
        ),
        (
            "cache",
            JsonValue::object(vec![
                ("hits", hits.into()),
                ("misses", misses.into()),
                ("evictions", evictions.into()),
                ("entries", cache_len.into()),
                ("capacity", cache_capacity.into()),
            ]),
        ),
        (
            "server",
            JsonValue::object(vec![
                ("workers", shared.cfg.jobs.into()),
                ("threads_per_job", shared.cfg.threads_per_job.into()),
                (
                    "shutting_down",
                    shared.shutdown.load(Ordering::SeqCst).into(),
                ),
            ]),
        ),
    ])
}

// ---------------------------------------------------------------------------
// Scheduler workers
// ---------------------------------------------------------------------------

fn worker_loop(shared: &Arc<Shared>) {
    loop {
        let id = {
            let mut queue = lock_or_recover(&shared.queue);
            loop {
                if let Some(id) = queue.pop() {
                    break id;
                }
                if shared.shutdown.load(Ordering::SeqCst) {
                    return;
                }
                queue = match shared.wake.wait(queue) {
                    Ok(g) => g,
                    Err(poisoned) => poisoned.into_inner(),
                };
            }
        };
        run_job(shared, id);
    }
}

/// Runs one job start to finish: solve, spool, cache, commit manifest.
fn run_job(shared: &Arc<Shared>, id: u64) {
    let popped = {
        let mut jobs = lock_or_recover(&shared.jobs);
        let Some(job) = jobs.get_mut(id) else { return };
        if job.state != JobState::Queued {
            return; // cancelled between pop and claim
        }
        job.state = JobState::Running;
        job.design.take().map(|design| {
            (
                design,
                job.config.clone(),
                job.cancel.clone(),
                Arc::clone(&job.events),
                job.spool_dir.clone(),
            )
        })
    };
    let Some((design, config, cancel, events, dir)) = popped else {
        finish_job(shared, id, &dir_of(shared, id), |job| {
            job.state = JobState::Failed;
            job.error = Some("internal: queued job without a design".to_string());
        });
        lock_or_recover(&shared.stats).failed += 1;
        return;
    };

    let sink: Box<dyn Sink> = Box::new(JsonlSink::new(Box::new(EventBufWriter(Arc::clone(
        &events,
    )))));
    let request = SolveRequest {
        config: config.clone(),
        threads: Some(shared.cfg.threads_per_job.max(1)),
        cancel: Some(cancel),
        sinks: vec![sink],
    };
    let solved = solve(&design, request);
    events.close();

    match solved {
        Ok(arts) => {
            let report_json = arts.report.to_json_string();
            let spooled = spool::write_result(
                &dir,
                &design,
                &arts.outcome.legal,
                &report_json,
                &events.snapshot(),
            );
            match spooled {
                Ok(_) => {
                    let result = JsonValue::object(vec![
                        ("hpwl", arts.outcome.hpwl_legal.into()),
                        ("iterations", arts.outcome.iterations.into()),
                        ("converged", arts.outcome.converged.into()),
                        ("stop_reason", arts.report.stop_reason.clone().into()),
                        ("total_seconds", arts.report.total_seconds.into()),
                    ]);
                    let (dh, ch) = finish_job(shared, id, &dir, |job| {
                        job.state = JobState::Done;
                        job.result = Some(result.clone());
                    });
                    lock_or_recover(&shared.cache).insert(
                        dh,
                        ch,
                        cache::entry(id, dir.clone(), result),
                    );
                    lock_or_recover(&shared.stats).completed += 1;
                }
                Err(e) => {
                    finish_job(shared, id, &dir, |job| {
                        job.state = JobState::Failed;
                        job.error = Some(format!("spool: {e}"));
                    });
                    lock_or_recover(&shared.stats).failed += 1;
                }
            }
        }
        Err(PlaceError::Cancelled) => {
            finish_job(shared, id, &dir, |job| {
                job.state = JobState::Cancelled;
                job.error = Some("cancelled mid-solve".to_string());
            });
            lock_or_recover(&shared.stats).cancelled += 1;
        }
        Err(e) => {
            finish_job(shared, id, &dir, |job| {
                job.state = JobState::Failed;
                job.error = Some(e.to_string());
            });
            lock_or_recover(&shared.stats).failed += 1;
        }
    }
}

fn dir_of(shared: &Arc<Shared>, id: u64) -> std::path::PathBuf {
    spool::job_dir(&shared.cfg.spool, id)
}

/// Applies a terminal transition under the table lock, then commits the
/// status manifest (the job's last spool write). Returns the job's hashes
/// for cache insertion.
fn finish_job(
    shared: &Arc<Shared>,
    id: u64,
    dir: &Path,
    apply: impl FnOnce(&mut Job),
) -> (u64, u64) {
    let mut jobs = lock_or_recover(&shared.jobs);
    let Some(job) = jobs.get_mut(id) else {
        return (0, 0);
    };
    apply(job);
    let hashes = (job.design_hash, job.config_hash);
    let status = job.status_json();
    drop(jobs);
    commit_manifest(dir, &status);
    hashes
}

fn commit_manifest(dir: &Path, status: &JsonValue) {
    if let Err(e) = spool::write_manifest(dir, status) {
        // The in-memory table stays authoritative; losing the on-disk
        // manifest only degrades crash forensics.
        eprintln!(
            "complx-serve: manifest write failed for {}: {e}",
            dir.display()
        );
    }
}
