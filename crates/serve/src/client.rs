//! A minimal HTTP/1.1 client for the daemon's own protocol.
//!
//! Exists so `complx-loadgen` and the end-to-end tests exercise the
//! server over a real socket without pulling in an HTTP dependency. Only
//! what the protocol needs: one request per connection
//! (`Connection: close`), `Content-Length` bodies, and chunked
//! transfer decoding for the live events stream.

use std::io::{self, BufRead, BufReader, Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::time::Duration;

use complx_obs::{json, JsonValue};

/// A decoded response: status code plus the fully-read body.
#[derive(Debug)]
pub struct Response {
    /// HTTP status code.
    pub status: u16,
    /// The body, de-chunked when the server streamed it.
    pub body: Vec<u8>,
}

impl Response {
    /// Parses the body as JSON (most endpoints speak it).
    pub fn json(&self) -> Result<JsonValue, String> {
        let text = std::str::from_utf8(&self.body).map_err(|e| e.to_string())?;
        json::parse(text).map_err(|e| format!("{e:?}"))
    }
}

fn read_line(reader: &mut impl BufRead) -> io::Result<String> {
    let mut line = String::new();
    reader.read_line(&mut line)?;
    while line.ends_with('\n') || line.ends_with('\r') {
        line.pop();
    }
    Ok(line)
}

/// Sends one request and reads the full response. `body` may be empty
/// (GET/DELETE). The connection closes afterwards, matching the server's
/// `Connection: close` policy.
pub fn request(
    addr: SocketAddr,
    method: &str,
    path_and_query: &str,
    body: &[u8],
) -> io::Result<Response> {
    let mut stream = TcpStream::connect_timeout(&addr, Duration::from_secs(10))?;
    stream.set_read_timeout(Some(Duration::from_secs(600)))?;
    stream.set_write_timeout(Some(Duration::from_secs(60)))?;
    write!(
        stream,
        "{method} {path_and_query} HTTP/1.1\r\nHost: complx\r\nContent-Length: {}\r\nConnection: close\r\n\r\n",
        body.len()
    )?;
    stream.write_all(body)?;
    stream.flush()?;

    let mut reader = BufReader::new(stream);
    let status_line = read_line(&mut reader)?;
    let status: u16 = status_line
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .ok_or_else(|| io::Error::other(format!("bad status line `{status_line}`")))?;

    let mut content_length: Option<usize> = None;
    let mut chunked = false;
    loop {
        let line = read_line(&mut reader)?;
        if line.is_empty() {
            break;
        }
        let Some((name, value)) = line.split_once(':') else {
            continue;
        };
        let name = name.trim().to_ascii_lowercase();
        let value = value.trim();
        if name == "content-length" {
            content_length = value.parse().ok();
        } else if name == "transfer-encoding" && value.eq_ignore_ascii_case("chunked") {
            chunked = true;
        }
    }

    let mut body = Vec::new();
    if chunked {
        loop {
            let size_line = read_line(&mut reader)?;
            let size = usize::from_str_radix(size_line.trim(), 16)
                .map_err(|_| io::Error::other(format!("bad chunk size `{size_line}`")))?;
            if size == 0 {
                let _ = read_line(&mut reader); // trailing CRLF after last chunk
                break;
            }
            let mut chunk = vec![0u8; size];
            reader.read_exact(&mut chunk)?;
            body.extend_from_slice(&chunk);
            let mut crlf = [0u8; 2];
            reader.read_exact(&mut crlf)?;
        }
    } else if let Some(n) = content_length {
        body.resize(n, 0);
        reader.read_exact(&mut body)?;
    } else {
        reader.read_to_end(&mut body)?;
    }
    Ok(Response { status, body })
}

/// Polls `GET /jobs/{id}` until the job reaches a terminal state, then
/// returns the final status JSON. `patience` bounds the total wait.
pub fn wait_terminal(addr: SocketAddr, job_id: u64, patience: Duration) -> io::Result<JsonValue> {
    let deadline = std::time::Instant::now() + patience;
    loop {
        let resp = request(addr, "GET", &format!("/jobs/{job_id}"), &[])?;
        let status = resp.json().map_err(io::Error::other)?;
        let state = status.get("state").and_then(|s| s.as_str()).unwrap_or("");
        if matches!(state, "done" | "failed" | "cancelled") {
            return Ok(status);
        }
        if std::time::Instant::now() >= deadline {
            return Err(io::Error::other(format!(
                "job {job_id} still `{state}` after {patience:?}"
            )));
        }
        std::thread::sleep(Duration::from_millis(20));
    }
}
