//! Result cache keyed on `(design_hash, config_hash)`.
//!
//! The determinism contract makes results interchangeable: two
//! submissions with equal canonical hashes (see `core::idhash`) produce
//! byte-identical artifacts, so the second can be answered from the
//! first's spool directory without running at all. Suboptimality sweeps
//! and RL-style parameter searches resubmit near-identical bundles by the
//! thousand — this cache is what turns that traffic into constant work.
//!
//! Eviction is deterministic least-recently-used: every hit or insert
//! advances a logical tick, and overflow evicts the entry with the
//! smallest last-used tick (ticks are unique, so there are no ties).
//! Evicting an entry only forgets the dedup mapping — the producing job's
//! spooled artifacts stay fetchable by job id.

use std::collections::BTreeMap;
use std::path::PathBuf;

use complx_obs::JsonValue;

/// A cached result: where the artifacts live and the status summary to
/// stamp onto cache-hit jobs.
#[derive(Debug, Clone)]
pub struct CacheEntry {
    /// The job that produced the result.
    pub producer_job: u64,
    /// Spool directory holding `report.json`, `solution/`, `events.jsonl`.
    pub spool_dir: PathBuf,
    /// Result summary (the `result` section of the status JSON).
    pub result: JsonValue,
    last_used: u64,
}

/// Bounded LRU map from `(design_hash, config_hash)` to spooled results.
#[derive(Debug)]
pub struct ResultCache {
    entries: BTreeMap<(u64, u64), CacheEntry>,
    capacity: usize,
    tick: u64,
    hits: u64,
    misses: u64,
    evictions: u64,
}

impl ResultCache {
    /// An empty cache holding at most `capacity` entries (`0` disables
    /// caching entirely — every lookup misses).
    pub fn new(capacity: usize) -> Self {
        Self {
            entries: BTreeMap::new(),
            capacity,
            tick: 0,
            hits: 0,
            misses: 0,
            evictions: 0,
        }
    }

    /// Looks up a key, refreshing its recency on a hit.
    pub fn lookup(&mut self, design_hash: u64, config_hash: u64) -> Option<CacheEntry> {
        self.tick += 1;
        match self.entries.get_mut(&(design_hash, config_hash)) {
            Some(entry) => {
                entry.last_used = self.tick;
                self.hits += 1;
                Some(entry.clone())
            }
            None => {
                self.misses += 1;
                None
            }
        }
    }

    /// Inserts (or replaces) a result, evicting the least-recently-used
    /// entry on overflow.
    pub fn insert(&mut self, design_hash: u64, config_hash: u64, mut entry: CacheEntry) {
        if self.capacity == 0 {
            return;
        }
        self.tick += 1;
        entry.last_used = self.tick;
        self.entries.insert((design_hash, config_hash), entry);
        while self.entries.len() > self.capacity {
            let oldest = self
                .entries
                .iter()
                .min_by_key(|(_, e)| e.last_used)
                .map(|(&k, _)| k);
            match oldest {
                Some(k) => {
                    self.entries.remove(&k);
                    self.evictions += 1;
                }
                None => break,
            }
        }
    }

    /// Entries currently held.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the cache holds nothing.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// `(hits, misses, evictions, capacity)` counters for `/stats`.
    pub fn counters(&self) -> (u64, u64, u64, usize) {
        (self.hits, self.misses, self.evictions, self.capacity)
    }
}

/// Builds the entry-construction helper used by the scheduler.
pub fn entry(producer_job: u64, spool_dir: PathBuf, result: JsonValue) -> CacheEntry {
    CacheEntry {
        producer_job,
        spool_dir,
        result,
        last_used: 0,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn e(job: u64) -> CacheEntry {
        entry(job, PathBuf::from(format!("/spool/{job}")), JsonValue::Null)
    }

    #[test]
    fn hit_miss_and_counters() {
        let mut c = ResultCache::new(4);
        assert!(c.lookup(1, 1).is_none());
        c.insert(1, 1, e(10));
        let hit = c.lookup(1, 1).expect("hit");
        assert_eq!(hit.producer_job, 10);
        let (hits, misses, evictions, capacity) = c.counters();
        assert_eq!((hits, misses, evictions, capacity), (1, 1, 0, 4));
    }

    #[test]
    fn lru_eviction_is_deterministic() {
        let mut c = ResultCache::new(2);
        c.insert(1, 0, e(1));
        c.insert(2, 0, e(2));
        c.lookup(1, 0); // refresh 1 → 2 is now least recent
        c.insert(3, 0, e(3)); // evicts 2
        assert!(c.lookup(2, 0).is_none(), "2 was evicted");
        assert!(c.lookup(1, 0).is_some());
        assert!(c.lookup(3, 0).is_some());
        assert_eq!(c.counters().2, 1, "one eviction");
    }

    #[test]
    fn zero_capacity_disables_caching() {
        let mut c = ResultCache::new(0);
        c.insert(1, 1, e(9));
        assert!(c.is_empty());
        assert!(c.lookup(1, 1).is_none());
    }
}
