//! Crash-safe on-disk spooling of job artifacts.
//!
//! Layout, one directory per job id under the server's `--spool` root:
//!
//! ```text
//! <spool>/<id>/input/<name>.{aux,nodes,nets,pl,scl,wts}   submitted bundle
//! <spool>/<id>/solution/<name>.{aux,pl,...}               solved bundle
//! <spool>/<id>/report.json                                complx-run-report/v1
//! <spool>/<id>/events.jsonl                               full progress stream
//! <spool>/<id>/job.json                                   status manifest (last)
//! ```
//!
//! Every file commits through `obs::atomicio` (tmp + fsync + rename), and
//! `job.json` is written *last* — its presence is the signal that every
//! other artifact in the directory is complete, exactly like the `.aux`
//! file in a written Bookshelf bundle. A crash mid-spool leaves a
//! directory without `job.json`, never a torn result.

use std::io;
use std::path::{Path, PathBuf};

use complx_netlist::{bookshelf, Design, Placement};
use complx_obs::{write_atomic, JsonValue};

use crate::framing::Entry;

/// The spool directory for a job id.
pub fn job_dir(spool: &Path, id: u64) -> PathBuf {
    spool.join(id.to_string())
}

/// Writes the submitted bundle under `<dir>/input/` and returns the path
/// of its `.aux` member (the bundle is parsed back from disk — the
/// Bookshelf reader is path-based, and the spooled input doubles as the
/// crash-forensics record of what the job was asked to place).
pub fn write_input(dir: &Path, entries: &[Entry], aux_name: &str) -> io::Result<PathBuf> {
    let input = dir.join("input");
    std::fs::create_dir_all(&input)?;
    for e in entries {
        let path = input.join(&e.name);
        if let Some(parent) = path.parent() {
            std::fs::create_dir_all(parent)?;
        }
        write_atomic(&path, &e.data)?;
    }
    Ok(input.join(aux_name))
}

/// Spools a completed solve: solution bundle, report manifest, and the
/// full event stream. `job.json` is *not* written here — the scheduler
/// commits it last, after the job record reflects the final state.
pub fn write_result(
    dir: &Path,
    design: &Design,
    legal: &Placement,
    report_json: &str,
    events: &[u8],
) -> io::Result<PathBuf> {
    let solution_dir = dir.join("solution");
    let aux = bookshelf::write_bundle(design, legal, &solution_dir)
        .map_err(|e| io::Error::other(e.to_string()))?;
    write_atomic(&dir.join("report.json"), report_json.as_bytes())?;
    write_atomic(&dir.join("events.jsonl"), events)?;
    Ok(aux)
}

/// Commits the status manifest — the last write of a job's lifecycle.
pub fn write_manifest(dir: &Path, status: &JsonValue) -> io::Result<()> {
    std::fs::create_dir_all(dir)?;
    write_atomic(&dir.join("job.json"), status.to_json_string().as_bytes())
}

/// Reads a spooled result back as a served frame: `report.json` plus
/// every `solution/` member, names relative to the job directory.
pub fn read_result_frame(dir: &Path) -> io::Result<Vec<Entry>> {
    let mut entries = Vec::new();
    entries.push(Entry {
        name: "report.json".to_string(),
        data: std::fs::read(dir.join("report.json"))?,
    });
    let solution_dir = dir.join("solution");
    let mut names: Vec<String> = std::fs::read_dir(&solution_dir)?
        .filter_map(|e| e.ok())
        .filter(|e| e.file_type().map(|t| t.is_file()).unwrap_or(false))
        .filter_map(|e| e.file_name().into_string().ok())
        .collect();
    names.sort(); // deterministic frame order regardless of readdir order
    for name in names {
        entries.push(Entry {
            data: std::fs::read(solution_dir.join(&name))?,
            name: format!("solution/{name}"),
        });
    }
    Ok(entries)
}

#[cfg(test)]
mod tests {
    use super::*;
    use complx_netlist::generator::GeneratorConfig;

    #[test]
    fn spool_roundtrip() {
        let dir = std::env::temp_dir().join(format!("complx_spool_test_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let design = GeneratorConfig::small("sp", 1).generate();
        let placement = design.initial_placement();

        let job = job_dir(&dir, 7);
        std::fs::create_dir_all(&job).expect("mkdir");
        let aux = write_result(
            &job,
            &design,
            &placement,
            "{\"ok\":true}",
            b"{\"type\":\"x\"}\n",
        )
        .expect("spool result");
        assert!(aux.ends_with("sp.aux"));
        write_manifest(&job, &JsonValue::object(vec![("state", "done".into())])).expect("manifest");

        let frame = read_result_frame(&job).expect("read back");
        assert_eq!(frame[0].name, "report.json");
        assert_eq!(frame[0].data, b"{\"ok\":true}");
        assert!(frame.iter().any(|e| e.name == "solution/sp.pl"));
        assert!(frame.iter().any(|e| e.name == "solution/sp.aux"));
        assert!(job.join("job.json").is_file());
        std::fs::remove_dir_all(&dir).expect("cleanup");
    }
}
