//! Bounded priority job queue with admission control.
//!
//! Deterministic by construction: entries are keyed on
//! `(priority rank, submission sequence)` in a `BTreeMap`, so the pop
//! order is a pure function of the submission history — high before
//! normal before low, FIFO within a class. When the queue is full,
//! [`JobQueue::push`] refuses and the server answers `429 Too Many
//! Requests`; shedding at admission keeps every accepted job's latency
//! bounded instead of letting the backlog grow without limit.

use std::collections::BTreeMap;

use crate::job::Priority;

/// Refusal reason: the queue is at capacity.
#[derive(Debug, PartialEq, Eq)]
pub struct QueueFull {
    /// The configured capacity the push would have exceeded.
    pub capacity: usize,
}

/// The scheduler's bounded priority queue of job ids.
#[derive(Debug)]
pub struct JobQueue {
    entries: BTreeMap<(u8, u64), u64>,
    capacity: usize,
    seq: u64,
}

impl JobQueue {
    /// An empty queue admitting at most `capacity` jobs.
    pub fn new(capacity: usize) -> Self {
        Self {
            entries: BTreeMap::new(),
            capacity,
            seq: 0,
        }
    }

    /// Jobs currently queued.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether nothing is queued.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// The configured capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Admits a job, or refuses when full.
    pub fn push(&mut self, priority: Priority, job_id: u64) -> Result<(), QueueFull> {
        if self.entries.len() >= self.capacity {
            return Err(QueueFull {
                capacity: self.capacity,
            });
        }
        self.seq += 1;
        self.entries.insert((priority.rank(), self.seq), job_id);
        Ok(())
    }

    /// Pops the next job: highest priority first, FIFO within a class.
    pub fn pop(&mut self) -> Option<u64> {
        let key = *self.entries.keys().next()?;
        self.entries.remove(&key)
    }

    /// Removes a specific queued job (cancellation while queued).
    /// Returns whether it was present.
    pub fn remove(&mut self, job_id: u64) -> bool {
        let key = self
            .entries
            .iter()
            .find(|(_, &id)| id == job_id)
            .map(|(&k, _)| k);
        match key {
            Some(k) => {
                self.entries.remove(&k);
                true
            }
            None => false,
        }
    }

    /// Drains every queued job id in pop order (shutdown).
    pub fn drain(&mut self) -> Vec<u64> {
        let ids = self.entries.values().copied().collect();
        self.entries.clear();
        ids
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn priority_then_fifo_order() {
        let mut q = JobQueue::new(10);
        q.push(Priority::Low, 1).expect("admit");
        q.push(Priority::Normal, 2).expect("admit");
        q.push(Priority::High, 3).expect("admit");
        q.push(Priority::Normal, 4).expect("admit");
        q.push(Priority::High, 5).expect("admit");
        let order: Vec<u64> = std::iter::from_fn(|| q.pop()).collect();
        assert_eq!(order, vec![3, 5, 2, 4, 1]);
    }

    #[test]
    fn admission_control_refuses_at_capacity() {
        let mut q = JobQueue::new(2);
        q.push(Priority::Normal, 1).expect("admit");
        q.push(Priority::Normal, 2).expect("admit");
        assert_eq!(
            q.push(Priority::High, 3),
            Err(QueueFull { capacity: 2 }),
            "even high priority is shed at capacity"
        );
        q.pop();
        q.push(Priority::High, 3).expect("slot freed");
    }

    #[test]
    fn remove_and_drain() {
        let mut q = JobQueue::new(10);
        q.push(Priority::Normal, 1).expect("admit");
        q.push(Priority::Normal, 2).expect("admit");
        assert!(q.remove(1));
        assert!(!q.remove(1), "already gone");
        q.push(Priority::High, 3).expect("admit");
        assert_eq!(q.drain(), vec![3, 2]);
        assert!(q.is_empty());
    }
}
