//! `complx-serve`: placement as a service.
//!
//! A zero-dependency job server over `std::net` that turns the ComPLx
//! placer into a long-lived daemon: clients POST Bookshelf bundles
//! (length-prefix framed, see [`framing`]), the scheduler runs up to K
//! solves concurrently with per-job thread budgets carved from the
//! `complx-par` pool, and results spool crash-safely to disk. Because the
//! placer is bit-deterministic at any thread count, a served result is
//! byte-identical to a CLI run of the same bundle and configuration —
//! which is also what makes the `(design_hash, config_hash)` result cache
//! sound: a duplicate submission is answered from the producer's spool
//! without running at all.
//!
//! Module map:
//!
//! * [`http`] — hand-rolled HTTP/1.1 request/response plumbing
//! * [`framing`] — `complx-bundle/v1` length-prefixed multi-file frames
//! * [`job`] — job model and state machine
//! * [`queue`] — bounded priority queue with 429 admission control
//! * [`cache`] — deterministic LRU result cache
//! * [`events`] — live per-job progress buffers (chunked JSONL tails)
//! * [`sync`] — the poison-recovering lock helper every `.lock()` routes
//!   through (the lock-order analysis' single choke point)
//! * [`spool`] — crash-safe on-disk artifact layout
//! * [`server`] — the daemon: accept loop, workers, endpoints
//! * [`client`] — minimal client used by `complx-loadgen` and the tests

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cache;
pub mod client;
pub mod events;
pub mod framing;
pub mod http;
pub mod job;
pub mod queue;
pub mod server;
pub mod spool;
pub mod sync;

pub use cache::ResultCache;
pub use client::{request, wait_terminal, Response};
pub use events::EventBuf;
pub use framing::Entry;
pub use job::{Job, JobState, Priority};
pub use queue::JobQueue;
pub use server::{ServeConfig, Server};
