//! End-to-end tests over a real socket: a live daemon, framed bundles in,
//! framed results out.
//!
//! The headline assertion is byte-identity: a solution served by the
//! daemon equals, byte for byte, the bundle a direct in-process solve of
//! the same design and configuration writes. The determinism contract
//! (bit-identical placements at any thread count) is what the serving
//! layer inherits that guarantee from.

use std::net::SocketAddr;
use std::path::{Path, PathBuf};
use std::time::{Duration, Instant};

use complx_netlist::generator::GeneratorConfig;
use complx_netlist::{bookshelf, Design};
use complx_obs::JsonValue;
use complx_place::{solve, PlacerConfig, SolveRequest};
use complx_serve::client::{request, wait_terminal};
use complx_serve::framing::{decode, encode, Entry};
use complx_serve::{ServeConfig, Server};

/// A scratch directory unique to this test invocation.
fn scratch(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("complx_serve_e2e_{tag}_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("mkdir scratch");
    dir
}

fn start_server(tag: &str, jobs: usize, queue_capacity: usize) -> (Server, SocketAddr) {
    let mut cfg = ServeConfig::new(scratch(&format!("{tag}_spool")));
    cfg.jobs = jobs;
    cfg.threads_per_job = 2;
    cfg.queue_capacity = queue_capacity;
    let server = Server::start(cfg).expect("server starts");
    let addr = server.addr();
    (server, addr)
}

/// Frames a design by writing its Bookshelf bundle and reading it back.
fn frame_design(design: &Design, dir: &Path) -> Vec<u8> {
    let placement = design.initial_placement();
    bookshelf::write_bundle(design, &placement, dir).expect("write bundle");
    let mut names: Vec<String> = std::fs::read_dir(dir)
        .expect("read bundle dir")
        .filter_map(|e| e.ok())
        .filter_map(|e| e.file_name().into_string().ok())
        .collect();
    names.sort();
    let entries: Vec<Entry> = names
        .into_iter()
        .map(|name| Entry {
            data: std::fs::read(dir.join(&name)).expect("read member"),
            name,
        })
        .collect();
    encode(&entries)
}

fn submit(addr: SocketAddr, frame: &[u8], query: &str) -> (u16, JsonValue) {
    let resp = request(addr, "POST", &format!("/jobs{query}"), frame).expect("submit");
    let json = resp.json().expect("submit response json");
    (resp.status, json)
}

fn id_of(status: &JsonValue) -> u64 {
    status.get("id").and_then(|v| v.as_i64()).expect("job id") as u64
}

fn state_of(addr: SocketAddr, id: u64) -> String {
    request(addr, "GET", &format!("/jobs/{id}"), &[])
        .expect("status request")
        .json()
        .expect("status json")
        .get("state")
        .and_then(|s| s.as_str())
        .expect("state field")
        .to_string()
}

fn poll_until_running(addr: SocketAddr, id: u64) {
    let deadline = Instant::now() + Duration::from_secs(60);
    loop {
        let state = state_of(addr, id);
        if state == "running" {
            return;
        }
        assert_eq!(state, "queued", "job {id} must not finish before running");
        assert!(
            Instant::now() < deadline,
            "job {id} never reached running (still {state})"
        );
        std::thread::sleep(Duration::from_millis(10));
    }
}

#[test]
fn served_result_is_byte_identical_to_direct_solve() {
    let (server, addr) = start_server("identity", 2, 16);
    let design = GeneratorConfig::small("e2eid", 41).generate();
    let bundle_dir = scratch("identity_bundle");
    let frame = frame_design(&design, &bundle_dir);

    let (code, status) = submit(addr, &frame, "?max_iterations=6");
    assert_eq!(code, 202, "fresh submission is queued: {status:?}");
    let id = id_of(&status);
    let final_status = wait_terminal(addr, id, Duration::from_secs(300)).expect("job finishes");
    assert_eq!(
        final_status.get("state").and_then(|s| s.as_str()),
        Some("done"),
        "job must solve cleanly: {final_status:?}"
    );

    // The live events stream replays complete JSONL lines and is
    // terminated by the job's close.
    let events = request(addr, "GET", &format!("/jobs/{id}/events"), &[]).expect("events");
    assert_eq!(events.status, 200);
    let text = String::from_utf8(events.body).expect("events are utf-8");
    assert!(!text.is_empty(), "solve must emit progress events");
    for line in text.lines() {
        complx_obs::parse(line).expect("each event line is complete JSON");
    }

    let served = request(addr, "GET", &format!("/jobs/{id}/result"), &[]).expect("result");
    assert_eq!(served.status, 200);
    let served_entries = decode(&served.body).expect("served frame decodes");

    // Direct in-process solve of the same parsed bundle, same config,
    // different thread budget — the contract says bytes still match.
    let parsed = bookshelf::read_aux(bundle_dir.join("e2eid.aux")).expect("parse back");
    let mut config = PlacerConfig::default();
    config.max_iterations = 6;
    let mut req = SolveRequest::new(config);
    req.threads = Some(1);
    let arts = solve(&parsed.design, req).expect("direct solve");
    let direct_dir = scratch("identity_direct");
    bookshelf::write_bundle(&parsed.design, &arts.outcome.legal, &direct_dir)
        .expect("write direct bundle");

    let mut compared = 0;
    for entry in &served_entries {
        let Some(name) = entry.name.strip_prefix("solution/") else {
            continue;
        };
        let direct = std::fs::read(direct_dir.join(name)).expect("direct member exists");
        assert_eq!(
            entry.data, direct,
            "served {name} differs from the direct solve"
        );
        compared += 1;
    }
    assert!(compared >= 5, "expected a full bundle, compared {compared}");
    assert!(
        served_entries.iter().any(|e| e.name == "report.json"),
        "served frame carries the run report"
    );

    server.request_shutdown();
    server.join();
}

#[test]
fn queue_overflow_is_shed_with_429() {
    let (server, addr) = start_server("overflow", 1, 1);
    let design = GeneratorConfig::small("e2eovf", 42).generate();
    let frame = frame_design(&design, &scratch("overflow_bundle"));
    let stress = "?preset=stress&max_iterations=1000000";

    let (code, status) = submit(addr, &frame, stress);
    assert_eq!(code, 202);
    let holder = id_of(&status);
    poll_until_running(addr, holder);

    // The single worker is pinned; this one occupies the only queue slot.
    let (code, status) = submit(addr, &frame, &format!("{stress}&priority=low"));
    assert_eq!(code, 202, "queue slot available: {status:?}");
    let queued = id_of(&status);

    let (code, body) = submit(addr, &frame, stress);
    assert_eq!(code, 429, "full queue sheds: {body:?}");
    assert_eq!(body.get("capacity").and_then(|v| v.as_i64()), Some(1));

    // Shedding must not have corrupted anything: cancel the backlog and
    // the runner, and the server drains cleanly.
    for id in [queued, holder] {
        let resp = request(addr, "DELETE", &format!("/jobs/{id}"), &[]).expect("cancel");
        assert!(resp.status == 200 || resp.status == 202, "{}", resp.status);
        let status = wait_terminal(addr, id, Duration::from_secs(120)).expect("terminal");
        assert_eq!(
            status.get("state").and_then(|s| s.as_str()),
            Some("cancelled")
        );
    }
    server.request_shutdown();
    server.join();
}

#[test]
fn duplicate_submission_is_served_from_cache() {
    let (server, addr) = start_server("dup", 1, 8);
    let design = GeneratorConfig::small("e2edup", 43).generate();
    let frame = frame_design(&design, &scratch("dup_bundle"));

    let (code, status) = submit(addr, &frame, "?max_iterations=5");
    assert_eq!(code, 202);
    let first = id_of(&status);
    let status = wait_terminal(addr, first, Duration::from_secs(300)).expect("first job");
    assert_eq!(status.get("state").and_then(|s| s.as_str()), Some("done"));

    // Same design, same config → born done from the cache, no queueing.
    let (code, status) = submit(addr, &frame, "?max_iterations=5");
    assert_eq!(code, 200, "cache hit answers immediately: {status:?}");
    assert_eq!(status.get("cached").and_then(|v| v.as_bool()), Some(true));
    assert_eq!(status.get("state").and_then(|s| s.as_str()), Some("done"));
    let second = id_of(&status);
    assert_ne!(first, second, "a cache hit is still a distinct job");

    let a = request(addr, "GET", &format!("/jobs/{first}/result"), &[]).expect("first result");
    let b = request(addr, "GET", &format!("/jobs/{second}/result"), &[]).expect("second result");
    assert_eq!(a.status, 200);
    assert_eq!(b.status, 200);
    assert_eq!(a.body, b.body, "cached result is byte-identical");

    // A different config misses the cache and queues a real solve.
    let (code, status) = submit(addr, &frame, "?max_iterations=4");
    assert_eq!(code, 202, "different config_hash misses: {status:?}");
    let third = id_of(&status);
    wait_terminal(addr, third, Duration::from_secs(300)).expect("third job");

    let stats = request(addr, "GET", "/stats", &[])
        .expect("stats")
        .json()
        .expect("stats json");
    let hits = stats
        .get("cache")
        .and_then(|c| c.get("hits"))
        .and_then(|v| v.as_i64())
        .expect("cache hits counter");
    assert!(hits >= 1, "stats must report the cache hit: {stats:?}");

    server.request_shutdown();
    server.join();
}

#[test]
fn cancel_mid_solve_ends_cancelled_and_server_stays_healthy() {
    let (server, addr) = start_server("cancel", 1, 8);
    let design = GeneratorConfig::small("e2ecan", 44).generate();
    let frame = frame_design(&design, &scratch("cancel_bundle"));

    let (code, status) = submit(addr, &frame, "?preset=stress&max_iterations=1000000");
    assert_eq!(code, 202);
    let id = id_of(&status);
    poll_until_running(addr, id);

    let resp = request(addr, "DELETE", &format!("/jobs/{id}"), &[]).expect("cancel");
    assert_eq!(resp.status, 202, "mid-solve cancel is acknowledged");
    let status = wait_terminal(addr, id, Duration::from_secs(120)).expect("terminal");
    assert_eq!(
        status.get("state").and_then(|s| s.as_str()),
        Some("cancelled"),
        "cooperative token must end the job cancelled: {status:?}"
    );

    // No result for a cancelled job…
    let resp = request(addr, "GET", &format!("/jobs/{id}/result"), &[]).expect("result probe");
    assert_eq!(resp.status, 409);

    // …and the daemon is fully healthy: liveness plus a fresh solve.
    let health = request(addr, "GET", "/healthz", &[]).expect("healthz");
    assert_eq!(health.status, 200);
    let (code, status) = submit(addr, &frame, "?max_iterations=4");
    assert_eq!(code, 202, "fresh work admitted after a cancel: {status:?}");
    let follow_up = id_of(&status);
    let status = wait_terminal(addr, follow_up, Duration::from_secs(300)).expect("follow-up");
    assert_eq!(status.get("state").and_then(|s| s.as_str()), Some("done"));

    server.request_shutdown();
    server.join();
}
