//! Coordinate-format (COO) accumulator used while stamping net models.

use crate::csr::CsrMatrix;

/// A sparse matrix under construction, stored as `(row, col, value)` triplets.
///
/// Quadratic net models (Bound2Bound, star, clique) are "stamped" into a
/// `TripletMatrix` one connection at a time; duplicate coordinates are
/// accumulated (summed) when converting to [`CsrMatrix`]. Anchor pseudonets
/// add to the diagonal the same way.
///
/// # Example
///
/// ```
/// use complx_sparse::TripletMatrix;
///
/// let mut t = TripletMatrix::new(3);
/// // A two-pin connection between variables 0 and 2 with weight w:
/// t.add_connection(0, 2, 5.0);
/// let a = t.to_csr();
/// assert_eq!(a.get(0, 0), 5.0);
/// assert_eq!(a.get(0, 2), -5.0);
/// assert_eq!(a.get(2, 2), 5.0);
/// ```
#[derive(Debug, Clone, Default)]
pub struct TripletMatrix {
    n: usize,
    rows: Vec<u32>,
    cols: Vec<u32>,
    vals: Vec<f64>,
}

impl TripletMatrix {
    /// Creates an empty accumulator for an `n`×`n` matrix.
    pub fn new(n: usize) -> Self {
        Self {
            n,
            rows: Vec::new(),
            cols: Vec::new(),
            vals: Vec::new(),
        }
    }

    /// Creates an empty accumulator with room for `cap` triplets.
    pub fn with_capacity(n: usize, cap: usize) -> Self {
        Self {
            n,
            rows: Vec::with_capacity(cap),
            cols: Vec::with_capacity(cap),
            vals: Vec::with_capacity(cap),
        }
    }

    /// The matrix dimension.
    pub fn dim(&self) -> usize {
        self.n
    }

    /// Number of raw (possibly duplicate) triplets stored so far.
    pub fn nnz(&self) -> usize {
        self.vals.len()
    }

    /// Adds `value` at `(row, col)`. Duplicates accumulate.
    ///
    /// # Panics
    ///
    /// Panics if `row` or `col` is out of bounds.
    pub fn add(&mut self, row: usize, col: usize, value: f64) {
        assert!(row < self.n && col < self.n, "triplet index out of bounds");
        // lint:allow(no-float-eq): skips explicit structural zeros only;
        // small nonzero values must be stored.
        if value == 0.0 {
            return;
        }
        self.rows.push(row as u32);
        self.cols.push(col as u32);
        self.vals.push(value);
    }

    /// Adds `value` to the diagonal entry `(i, i)`.
    pub fn add_diagonal(&mut self, i: usize, value: f64) {
        self.add(i, i, value);
    }

    /// Stamps a two-pin spring of weight `w` between movable variables
    /// `i` and `j`: adds `w` to both diagonal entries and `−w` to both
    /// off-diagonal entries. This is the Laplacian stamp used by every
    /// quadratic net model.
    pub fn add_connection(&mut self, i: usize, j: usize, w: f64) {
        debug_assert!(i != j, "self-connection has no effect on the Laplacian");
        self.add(i, i, w);
        self.add(j, j, w);
        self.add(i, j, -w);
        self.add(j, i, -w);
    }

    /// Appends every triplet of `other`, preserving their order. Parallel
    /// stamping uses this to merge per-chunk buffers back in chunk order,
    /// which reproduces the exact sequential stamping sequence.
    ///
    /// # Panics
    ///
    /// Panics if the dimensions differ.
    pub fn append(&mut self, other: &TripletMatrix) {
        assert_eq!(self.n, other.n, "TripletMatrix::append: dimension mismatch");
        self.rows.extend_from_slice(&other.rows);
        self.cols.extend_from_slice(&other.cols);
        self.vals.extend_from_slice(&other.vals);
    }

    /// Removes all triplets, keeping the allocation; dimension is preserved.
    pub fn clear(&mut self) {
        self.rows.clear();
        self.cols.clear();
        self.vals.clear();
    }

    /// Converts to CSR, summing duplicate coordinates.
    pub fn to_csr(&self) -> CsrMatrix {
        CsrMatrix::from_triplets(self.n, &self.rows, &self.cols, &self.vals)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_matrix() {
        let t = TripletMatrix::new(4);
        let a = t.to_csr();
        assert_eq!(a.dim(), 4);
        assert_eq!(a.nnz(), 0);
    }

    #[test]
    fn duplicates_accumulate() {
        let mut t = TripletMatrix::new(2);
        t.add(0, 1, 1.5);
        t.add(0, 1, 2.5);
        let a = t.to_csr();
        assert_eq!(a.get(0, 1), 4.0);
        assert_eq!(a.nnz(), 1);
    }

    #[test]
    fn zero_entries_skipped() {
        let mut t = TripletMatrix::new(2);
        t.add(0, 0, 0.0);
        assert_eq!(t.nnz(), 0);
    }

    #[test]
    fn connection_stamp_is_laplacian() {
        let mut t = TripletMatrix::new(3);
        t.add_connection(0, 2, 2.0);
        let a = t.to_csr();
        assert_eq!(a.get(0, 0), 2.0);
        assert_eq!(a.get(2, 2), 2.0);
        assert_eq!(a.get(0, 2), -2.0);
        assert_eq!(a.get(2, 0), -2.0);
        assert_eq!(a.get(1, 1), 0.0);
        // Row sums of a pure Laplacian are zero.
        let v = vec![1.0; 3];
        let mut out = vec![0.0; 3];
        a.mul_vec(&v, &mut out);
        assert!(out.iter().all(|&x| x.abs() < 1e-14));
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn out_of_bounds_panics() {
        let mut t = TripletMatrix::new(2);
        t.add(2, 0, 1.0);
    }

    #[test]
    fn append_preserves_order() {
        let mut a = TripletMatrix::new(3);
        a.add(0, 0, 1.0);
        let mut b = TripletMatrix::new(3);
        b.add(1, 1, 2.0);
        b.add(0, 0, 3.0);
        a.append(&b);
        assert_eq!(a.nnz(), 3);
        let csr = a.to_csr();
        assert_eq!(csr.get(0, 0), 4.0);
        assert_eq!(csr.get(1, 1), 2.0);
    }

    #[test]
    #[should_panic(expected = "dimension mismatch")]
    fn append_rejects_mismatched_dims() {
        let mut a = TripletMatrix::new(3);
        a.append(&TripletMatrix::new(2));
    }

    #[test]
    fn clear_keeps_dimension() {
        let mut t = TripletMatrix::new(3);
        t.add(1, 1, 1.0);
        t.clear();
        assert_eq!(t.nnz(), 0);
        assert_eq!(t.dim(), 3);
    }
}
