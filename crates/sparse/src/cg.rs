//! Jacobi-preconditioned Conjugate Gradient.

use crate::csr::CsrMatrix;
use crate::vector::{axpy, dot, norm2, xpby};

/// How a CG solve broke down, when it did.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[non_exhaustive]
pub enum CgBreakdown {
    /// `p·Ap ≤ 0`: the matrix is not SPD along the search direction (or
    /// round-off destroyed positivity). The last accepted iterate is kept.
    IndefiniteDirection,
    /// The residual, right-hand side, or an intermediate product became
    /// non-finite. The solution is rolled back to the last finite iterate.
    NonFinite,
}

impl std::fmt::Display for CgBreakdown {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CgBreakdown::IndefiniteDirection => f.write_str("p·Ap ≤ 0 (matrix not SPD)"),
            CgBreakdown::NonFinite => f.write_str("non-finite residual"),
        }
    }
}

/// Convergence report returned by [`CgSolver::solve`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SolveStats {
    /// Number of CG iterations performed.
    pub iterations: usize,
    /// Final relative residual `‖b − Ax‖₂ / ‖b‖₂`.
    pub relative_residual: f64,
    /// Whether the tolerance was reached within the iteration budget.
    pub converged: bool,
    /// Set when the solve broke down; the returned `x` is then the last
    /// finite iterate instead of NaN garbage.
    pub breakdown: Option<CgBreakdown>,
    /// Number of non-positive diagonal entries the Jacobi preconditioner
    /// had to clamp (an SPD placement system has none; a non-zero count is
    /// a red flag the caller can act on).
    pub clamped_diagonals: usize,
}

/// A Jacobi-preconditioned Conjugate Gradient solver for SPD systems.
///
/// Placement matrices are diagonally dominant Laplacians plus positive
/// diagonal terms from fixed connections and anchors, so Jacobi (diagonal)
/// preconditioning is cheap and effective — this mirrors the solver choices
/// in SimPL and ComPLx (Section S4 notes ComPLx uses *linear* CG).
///
/// The solver is warm-start friendly: `x` is used as the initial guess,
/// which global placement exploits by passing the previous iterate.
///
/// # Example
///
/// ```
/// use complx_sparse::{CgSolver, TripletMatrix};
///
/// let mut t = TripletMatrix::new(2);
/// t.add(0, 0, 2.0);
/// t.add(1, 1, 8.0);
/// let a = t.to_csr();
/// let mut x = vec![0.0; 2];
/// let stats = CgSolver::new().with_tolerance(1e-12).solve(&a, &[2.0, 8.0], &mut x);
/// assert!(stats.converged);
/// assert!((x[0] - 1.0).abs() < 1e-9 && (x[1] - 1.0).abs() < 1e-9);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CgSolver {
    tolerance: f64,
    max_iterations: usize,
}

impl Default for CgSolver {
    fn default() -> Self {
        Self::new()
    }
}

impl CgSolver {
    /// Creates a solver with relative tolerance `1e-6` and a limit of
    /// `10·n + 100` iterations (resolved at solve time).
    pub fn new() -> Self {
        Self {
            tolerance: 1e-6,
            max_iterations: 0, // 0 = auto
        }
    }

    /// Sets the relative residual tolerance.
    #[must_use]
    pub fn with_tolerance(mut self, tol: f64) -> Self {
        self.tolerance = tol;
        self
    }

    /// Sets an explicit iteration limit (`0` selects the automatic limit).
    #[must_use]
    pub fn with_max_iterations(mut self, limit: usize) -> Self {
        self.max_iterations = limit;
        self
    }

    /// The configured relative tolerance.
    pub fn tolerance(&self) -> f64 {
        self.tolerance
    }

    /// Solves `A·x = b`, using the incoming `x` as warm start.
    ///
    /// `A` must be symmetric positive-definite for convergence guarantees;
    /// this is not checked (it would cost more than the solve). Breakdown —
    /// an indefinite search direction (`p·Ap ≤ 0`) or a non-finite residual
    /// — is *detected* and reported in [`SolveStats::breakdown`] rather
    /// than propagated: on return `x` always holds the last finite iterate,
    /// never NaN. Non-positive Jacobi diagonal entries are clamped to an
    /// identity preconditioner row and counted in
    /// [`SolveStats::clamped_diagonals`].
    ///
    /// # Panics
    ///
    /// Panics if `b` or `x` have length different from `a.dim()`.
    pub fn solve(&self, a: &CsrMatrix, b: &[f64], x: &mut [f64]) -> SolveStats {
        self.solve_with_cancel(a, b, x, None)
    }

    /// [`Self::solve`] with a cooperative cancellation point at every CG
    /// iteration: when `cancel` trips, the solver stops after the iteration
    /// in flight and returns the last accepted iterate (reported as
    /// unconverged, never as a breakdown). With `cancel: None` — or a token
    /// that never trips — this is bit-identical to [`Self::solve`].
    ///
    /// # Panics
    ///
    /// Panics if `b` or `x` have length different from `a.dim()`.
    pub fn solve_with_cancel(
        &self,
        a: &CsrMatrix,
        b: &[f64],
        x: &mut [f64],
        cancel: Option<&complx_par::CancelToken>,
    ) -> SolveStats {
        let stats = self.solve_inner(a, b, x, cancel);
        // Feed the armed observability pipeline, if any (no-ops otherwise).
        complx_obs::add("cg.solves", 1);
        complx_obs::add("cg.iterations", stats.iterations as u64);
        complx_obs::add("cg.clamped_diagonals", stats.clamped_diagonals as u64);
        complx_obs::add("cg.breakdowns", u64::from(stats.breakdown.is_some()));
        complx_obs::add("cg.unconverged", u64::from(!stats.converged));
        complx_obs::observe("cg.relative_residual", stats.relative_residual);
        stats
    }

    fn solve_inner(
        &self,
        a: &CsrMatrix,
        b: &[f64],
        x: &mut [f64],
        cancel: Option<&complx_par::CancelToken>,
    ) -> SolveStats {
        let n = a.dim();
        assert_eq!(b.len(), n);
        assert_eq!(x.len(), n);
        let done = |iterations, relative_residual, converged, breakdown, clamped| SolveStats {
            iterations,
            relative_residual,
            converged,
            breakdown,
            clamped_diagonals: clamped,
        };
        if n == 0 {
            return done(0, 0.0, true, None, 0);
        }

        // Jacobi preconditioner with a guard: a structurally-zero or
        // negative diagonal (singular/indefinite row) falls back to the
        // identity on that row instead of dividing by zero.
        let diag = a.diagonal();
        let mut clamped = 0usize;
        let inv_diag: Vec<f64> = diag
            .iter()
            .map(|&d| {
                if d > f64::MIN_POSITIVE && d.is_finite() {
                    1.0 / d
                } else {
                    clamped += 1;
                    1.0
                }
            })
            .collect();

        let max_iter = if self.max_iterations == 0 {
            10 * n + 100
        } else {
            self.max_iterations
        };

        let b_norm = norm2(b);
        // lint:allow(no-float-eq): an exactly-zero right-hand side has the
        // exactly-zero solution; near-zero norms must still run the solver.
        if b_norm == 0.0 {
            x.fill(0.0);
            return done(0, 0.0, true, None, clamped);
        }
        if !b_norm.is_finite() {
            // Garbage right-hand side: nothing sensible can be solved.
            // Leave x untouched if finite, otherwise zero it.
            if x.iter().any(|v| !v.is_finite()) {
                x.fill(0.0);
            }
            return done(
                0,
                f64::INFINITY,
                false,
                Some(CgBreakdown::NonFinite),
                clamped,
            );
        }
        // A poisoned warm start would contaminate the residual; restart cold.
        if x.iter().any(|v| !v.is_finite()) {
            x.fill(0.0);
            complx_obs::add("cg.cold_restarts", 1);
        }

        // r = b − A·x
        let mut r = vec![0.0; n];
        a.mul_vec(x, &mut r);
        for i in 0..n {
            r[i] = b[i] - r[i];
        }
        let mut res = norm2(&r) / b_norm;
        if !res.is_finite() {
            // The matrix itself contains non-finite entries (A·x broke even
            // though x was finite). Report rather than iterate on garbage.
            return done(
                0,
                f64::INFINITY,
                false,
                Some(CgBreakdown::NonFinite),
                clamped,
            );
        }

        // z = M⁻¹ r ; p = z
        let mut z: Vec<f64> = r.iter().zip(&inv_diag).map(|(ri, di)| ri * di).collect();
        let mut p = z.clone();
        let mut rz = dot(&r, &z);
        let mut ap = vec![0.0; n];
        // Snapshot for rollback when an iteration turns non-finite.
        let mut x_prev = x.to_vec();

        let mut iterations = 0;
        let mut breakdown = None;
        while res > self.tolerance && iterations < max_iter {
            if cancel.is_some_and(complx_par::CancelToken::is_cancelled) {
                // Cooperative stop: x holds the last accepted (finite)
                // iterate; the caller sees an ordinary unconverged solve.
                complx_obs::add("cg.cancelled", 1);
                break;
            }
            a.mul_vec(&p, &mut ap);
            let pap = dot(&p, &ap);
            if !pap.is_finite() {
                breakdown = Some(CgBreakdown::NonFinite);
                break;
            }
            if pap <= 0.0 {
                // Matrix is not SPD along p (or round-off destroyed
                // positivity); x still holds the last accepted iterate.
                breakdown = Some(CgBreakdown::IndefiniteDirection);
                break;
            }
            x_prev.copy_from_slice(x);
            let alpha = rz / pap;
            axpy(alpha, &p, x);
            axpy(-alpha, &ap, &mut r);
            for i in 0..n {
                z[i] = r[i] * inv_diag[i];
            }
            let rz_new = dot(&r, &z);
            let beta = rz_new / rz;
            rz = rz_new;
            xpby(&z, beta, &mut p);
            iterations += 1;
            let res_new = norm2(&r) / b_norm;
            if !res_new.is_finite() || !rz_new.is_finite() {
                // Roll back to the last finite iterate and stop.
                x.copy_from_slice(&x_prev);
                breakdown = Some(CgBreakdown::NonFinite);
                break;
            }
            res = res_new;
        }

        done(
            iterations,
            res,
            breakdown.is_none() && res <= self.tolerance,
            breakdown,
            clamped,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::TripletMatrix;

    /// Builds the (SPD) 1-D Poisson matrix of size n with Dirichlet anchors.
    fn poisson(n: usize) -> CsrMatrix {
        let mut t = TripletMatrix::new(n);
        for i in 0..n {
            t.add(i, i, 2.0);
            if i + 1 < n {
                t.add(i, i + 1, -1.0);
                t.add(i + 1, i, -1.0);
            }
        }
        t.to_csr()
    }

    #[test]
    fn solves_identity() {
        let mut t = TripletMatrix::new(3);
        for i in 0..3 {
            t.add(i, i, 1.0);
        }
        let a = t.to_csr();
        let mut x = vec![0.0; 3];
        let stats = CgSolver::new().solve(&a, &[1.0, 2.0, 3.0], &mut x);
        assert!(stats.converged);
        assert_eq!(stats.iterations, 1);
        for (xi, bi) in x.iter().zip([1.0, 2.0, 3.0]) {
            assert!((xi - bi).abs() < 1e-10);
        }
    }

    #[test]
    fn solves_poisson_to_tolerance() {
        let n = 200;
        let a = poisson(n);
        // Manufacture the solution x* = i/n and compute b = A x*.
        let xs: Vec<f64> = (0..n).map(|i| i as f64 / n as f64).collect();
        let mut b = vec![0.0; n];
        a.mul_vec(&xs, &mut b);
        let mut x = vec![0.0; n];
        let stats = CgSolver::new().with_tolerance(1e-10).solve(&a, &b, &mut x);
        assert!(stats.converged, "stats: {stats:?}");
        for (xi, xsi) in x.iter().zip(&xs) {
            assert!((xi - xsi).abs() < 1e-6);
        }
    }

    #[test]
    fn warm_start_converges_immediately() {
        let n = 50;
        let a = poisson(n);
        let xs: Vec<f64> = (0..n).map(|i| (i as f64).sin()).collect();
        let mut b = vec![0.0; n];
        a.mul_vec(&xs, &mut b);
        let mut x = xs.clone();
        let stats = CgSolver::new().solve(&a, &b, &mut x);
        assert_eq!(stats.iterations, 0);
        assert!(stats.converged);
    }

    #[test]
    fn zero_rhs_returns_zero() {
        let a = poisson(10);
        let mut x = vec![5.0; 10];
        let stats = CgSolver::new().solve(&a, &[0.0; 10], &mut x);
        assert!(stats.converged);
        assert!(x.iter().all(|&v| v == 0.0));
    }

    #[test]
    fn empty_system() {
        let a = TripletMatrix::new(0).to_csr();
        let mut x: Vec<f64> = vec![];
        let stats = CgSolver::new().solve(&a, &[], &mut x);
        assert!(stats.converged);
    }

    #[test]
    fn iteration_limit_respected() {
        let a = poisson(500);
        let b = vec![1.0; 500];
        let mut x = vec![0.0; 500];
        let stats = CgSolver::new()
            .with_tolerance(1e-14)
            .with_max_iterations(3)
            .solve(&a, &b, &mut x);
        assert_eq!(stats.iterations, 3);
        assert!(!stats.converged);
    }

    #[test]
    fn singular_diagonal_is_clamped_not_fatal() {
        let mut t = TripletMatrix::new(2);
        t.add(0, 0, 1.0);
        // (1,1) left structurally zero: the Jacobi preconditioner would
        // divide by zero without the clamp.
        let a = t.to_csr();
        let mut x = vec![0.0; 2];
        let stats = CgSolver::new().solve(&a, &[1.0, 1.0], &mut x);
        assert_eq!(stats.clamped_diagonals, 1);
        assert!(x.iter().all(|v| v.is_finite()), "x stays finite: {x:?}");
        // The system is singular, so the solve cannot truly converge; it
        // must report that rather than emit NaN.
        assert!(stats.breakdown.is_some() || !stats.converged);
    }

    #[test]
    fn indefinite_matrix_reports_breakdown() {
        let mut t = TripletMatrix::new(2);
        t.add(0, 0, 1.0);
        t.add(1, 1, -1.0); // negative diagonal → not SPD
        let a = t.to_csr();
        let mut x = vec![0.0; 2];
        let stats = CgSolver::new().solve(&a, &[1.0, 1.0], &mut x);
        assert!(!stats.converged);
        assert!(
            matches!(
                stats.breakdown,
                Some(CgBreakdown::IndefiniteDirection) | Some(CgBreakdown::NonFinite)
            ),
            "stats: {stats:?}"
        );
        assert_eq!(stats.clamped_diagonals, 1);
        assert!(x.iter().all(|v| v.is_finite()));
    }

    #[test]
    fn nonfinite_rhs_reports_breakdown_and_keeps_x_finite() {
        let a = poisson(4);
        let mut x = vec![f64::NAN; 4];
        let stats = CgSolver::new().solve(&a, &[1.0, f64::NAN, 1.0, 1.0], &mut x);
        assert!(!stats.converged);
        assert_eq!(stats.breakdown, Some(CgBreakdown::NonFinite));
        assert!(x.iter().all(|v| v.is_finite()), "x sanitized: {x:?}");
    }

    #[test]
    fn nonfinite_warm_start_is_restarted_cold() {
        let n = 20;
        let a = poisson(n);
        let b = vec![1.0; n];
        let mut x = vec![f64::INFINITY; n];
        let stats = CgSolver::new().with_tolerance(1e-10).solve(&a, &b, &mut x);
        assert!(stats.converged, "stats: {stats:?}");
        assert!(stats.breakdown.is_none());
        assert!(x.iter().all(|v| v.is_finite()));
    }

    #[test]
    fn pre_cancelled_solve_stops_immediately_and_stays_finite() {
        let n = 300;
        let a = poisson(n);
        let b = vec![1.0; n];
        let mut x = vec![0.0; n];
        let token = complx_par::CancelToken::new();
        token.cancel();
        let stats =
            CgSolver::new()
                .with_tolerance(1e-12)
                .solve_with_cancel(&a, &b, &mut x, Some(&token));
        assert_eq!(stats.iterations, 0);
        assert!(!stats.converged);
        assert!(stats.breakdown.is_none(), "cancel is not a breakdown");
        assert!(x.iter().all(|v| v.is_finite()));
    }

    #[test]
    fn untripped_token_is_bit_identical_to_plain_solve() {
        let n = 120;
        let a = poisson(n);
        let b: Vec<f64> = (0..n).map(|i| (i as f64).cos()).collect();
        let mut x1 = vec![0.0; n];
        let mut x2 = vec![0.0; n];
        let token = complx_par::CancelToken::new();
        let s1 = CgSolver::new().solve(&a, &b, &mut x1);
        let s2 = CgSolver::new().solve_with_cancel(&a, &b, &mut x2, Some(&token));
        assert_eq!(s1, s2);
        for (a1, a2) in x1.iter().zip(&x2) {
            assert_eq!(a1.to_bits(), a2.to_bits());
        }
    }

    #[test]
    fn breakdown_display_names_the_mode() {
        assert!(CgBreakdown::IndefiniteDirection.to_string().contains("SPD"));
        assert!(CgBreakdown::NonFinite.to_string().contains("non-finite"));
    }
}
