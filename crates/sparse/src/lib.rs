//! Sparse symmetric linear algebra for quadratic placement.
//!
//! Global placers that minimize a quadratic interconnect objective
//! `Φ_Q(x) = xᵀQx + fᵀx` need to repeatedly solve `Qx = −f` where `Q` is a
//! sparse, symmetric, positive-definite Laplacian-like matrix derived from
//! the netlist (see the ComPLx paper, Section 2). This crate provides the
//! minimal, dependency-free substrate for that:
//!
//! * [`TripletMatrix`] — a coordinate-format accumulator that nets and anchor
//!   pseudonets are stamped into,
//! * [`CsrMatrix`] — compressed sparse row storage with fast
//!   matrix–vector products,
//! * [`CgSolver`] — a Jacobi-preconditioned Conjugate Gradient solver with
//!   configurable tolerance and iteration limits,
//! * small dense-vector helpers in [`vector`].
//!
//! # Example
//!
//! Solve a 2×2 SPD system:
//!
//! ```
//! use complx_sparse::{CgSolver, TripletMatrix};
//!
//! let mut t = TripletMatrix::new(2);
//! t.add(0, 0, 4.0);
//! t.add(0, 1, 1.0);
//! t.add(1, 0, 1.0);
//! t.add(1, 1, 3.0);
//! let a = t.to_csr();
//!
//! let b = [1.0, 2.0];
//! let mut x = vec![0.0; 2];
//! let stats = CgSolver::new().solve(&a, &b, &mut x);
//! assert!(stats.converged);
//! assert!((4.0 * x[0] + x[1] - 1.0).abs() < 1e-8);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod cg;
mod csr;
mod triplet;
pub mod vector;

pub use cg::{CgBreakdown, CgSolver, SolveStats};
pub use csr::CsrMatrix;
pub use triplet::TripletMatrix;
