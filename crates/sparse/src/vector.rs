//! Small dense-vector helpers shared by the solvers.
//!
//! The reductions ([`dot`] and the norms built on it) and the in-place
//! updates ([`axpy`], [`xpby`]) run on the `complx-par` pool for large
//! inputs. Determinism:
//!
//! * reductions use **fixed chunk boundaries** ([`DOT_CHUNK`] elements,
//!   a function of the input length only) with partials folded in chunk
//!   order, so the f64 result is bit-identical for any thread count;
//! * element-wise updates write each element exactly once, so the
//!   (thread-count-dependent) slab partition cannot change results;
//! * the parallel/sequential gate depends only on the input length, never
//!   on the thread count.

use complx_par as par;

/// Inputs shorter than this run the plain sequential loop — the pool's
/// dispatch overhead dominates below it. Length-only gate: see module docs.
const PAR_MIN_LEN: usize = 8192;

/// Fixed reduction chunk size (in elements). Must not depend on the thread
/// count, or f64 sums would change with `--threads`.
const DOT_CHUNK: usize = 1024;

fn dot_seq(a: &[f64], b: &[f64]) -> f64 {
    a.iter().zip(b).map(|(x, y)| x * y).sum()
}

/// Dot product of two equal-length slices.
///
/// # Panics
///
/// Panics if the slices have different lengths.
pub fn dot(a: &[f64], b: &[f64]) -> f64 {
    assert_eq!(a.len(), b.len());
    if a.len() < PAR_MIN_LEN {
        return dot_seq(a, b);
    }
    par::sum_f64(a.len(), DOT_CHUNK, |r| dot_seq(&a[r.clone()], &b[r]))
}

/// Euclidean (L2) norm.
pub fn norm2(a: &[f64]) -> f64 {
    dot(a, a).sqrt()
}

/// L1 norm (sum of absolute values).
pub fn norm1(a: &[f64]) -> f64 {
    if a.len() < PAR_MIN_LEN {
        return a.iter().map(|x| x.abs()).sum();
    }
    par::sum_f64(a.len(), DOT_CHUNK, |r| {
        a[r].iter().map(|x| x.abs()).sum::<f64>()
    })
}

/// Infinity norm (maximum absolute value); `0.0` for an empty slice.
pub fn norm_inf(a: &[f64]) -> f64 {
    a.iter().fold(0.0f64, |m, &x| m.max(x.abs()))
}

/// Applies `f(x[i], &mut y[i])` to every element pair, splitting the work
/// into one contiguous slab per runner when the input is large.
fn elementwise(x: &[f64], y: &mut [f64], f: impl Fn(f64, &mut f64) + Sync) {
    let n = y.len();
    let t = par::threads().min(n.max(1));
    if n < PAR_MIN_LEN || t <= 1 {
        for (yi, xi) in y.iter_mut().zip(x) {
            f(*xi, yi);
        }
        return;
    }
    let base = n / t;
    let rem = n % t;
    par::scope(|s| {
        let mut x_rest = x;
        let mut y_rest = y;
        for i in 0..t {
            let len = base + usize::from(i < rem);
            let (xa, xb) = x_rest.split_at(len);
            let (ya, yb) = y_rest.split_at_mut(len);
            x_rest = xb;
            y_rest = yb;
            let f = &f;
            s.spawn(move || {
                for (yi, xi) in ya.iter_mut().zip(xa) {
                    f(*xi, yi);
                }
            });
        }
    });
}

/// `y ← y + alpha·x`.
///
/// # Panics
///
/// Panics if the slices have different lengths.
pub fn axpy(alpha: f64, x: &[f64], y: &mut [f64]) {
    assert_eq!(x.len(), y.len());
    elementwise(x, y, |xi, yi| *yi += alpha * xi);
}

/// `y ← x + beta·y` (the "xpby" update used inside CG).
///
/// # Panics
///
/// Panics if the slices have different lengths.
pub fn xpby(x: &[f64], beta: f64, y: &mut [f64]) {
    assert_eq!(x.len(), y.len());
    elementwise(x, y, |xi, yi| *yi = xi + beta * *yi);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dot_and_norms() {
        let a = [3.0, -4.0];
        assert_eq!(dot(&a, &a), 25.0);
        assert_eq!(norm2(&a), 5.0);
        assert_eq!(norm1(&a), 7.0);
        assert_eq!(norm_inf(&a), 4.0);
        assert_eq!(norm_inf(&[]), 0.0);
    }

    #[test]
    fn axpy_updates_in_place() {
        let x = [1.0, 2.0];
        let mut y = [10.0, 20.0];
        axpy(2.0, &x, &mut y);
        assert_eq!(y, [12.0, 24.0]);
    }

    #[test]
    fn xpby_updates_in_place() {
        let x = [1.0, 2.0];
        let mut y = [10.0, 20.0];
        xpby(&x, 0.5, &mut y);
        assert_eq!(y, [6.0, 12.0]);
    }

    fn big(seed: u64, n: usize) -> Vec<f64> {
        let mut s = seed;
        (0..n)
            .map(|_| {
                s = s
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                (s >> 11) as f64 / (1u64 << 53) as f64 - 0.5
            })
            .collect()
    }

    #[test]
    fn large_reductions_bit_identical_across_thread_counts() {
        let n = 3 * PAR_MIN_LEN + 17; // engages the parallel path, ragged tail
        let a = big(1, n);
        let b = big(2, n);
        let reference = {
            let _g = complx_par::with_threads(1);
            (dot(&a, &b), norm1(&a), norm2(&b))
        };
        for t in [2, 8] {
            let _g = complx_par::with_threads(t);
            assert_eq!(dot(&a, &b).to_bits(), reference.0.to_bits());
            assert_eq!(norm1(&a).to_bits(), reference.1.to_bits());
            assert_eq!(norm2(&b).to_bits(), reference.2.to_bits());
        }
    }

    #[test]
    fn large_updates_bit_identical_across_thread_counts() {
        let n = 2 * PAR_MIN_LEN + 3;
        let x = big(3, n);
        let y0 = big(4, n);
        let reference = {
            let _g = complx_par::with_threads(1);
            let mut y = y0.clone();
            axpy(0.37, &x, &mut y);
            xpby(&x, -1.25, &mut y);
            y
        };
        for t in [2, 8] {
            let _g = complx_par::with_threads(t);
            let mut y = y0.clone();
            axpy(0.37, &x, &mut y);
            xpby(&x, -1.25, &mut y);
            for (got, want) in y.iter().zip(&reference) {
                assert_eq!(got.to_bits(), want.to_bits());
            }
        }
    }
}
