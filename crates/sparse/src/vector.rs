//! Small dense-vector helpers shared by the solvers.

/// Dot product of two equal-length slices.
///
/// # Panics
///
/// Panics if the slices have different lengths.
pub fn dot(a: &[f64], b: &[f64]) -> f64 {
    assert_eq!(a.len(), b.len());
    a.iter().zip(b).map(|(x, y)| x * y).sum()
}

/// Euclidean (L2) norm.
pub fn norm2(a: &[f64]) -> f64 {
    dot(a, a).sqrt()
}

/// L1 norm (sum of absolute values).
pub fn norm1(a: &[f64]) -> f64 {
    a.iter().map(|x| x.abs()).sum()
}

/// Infinity norm (maximum absolute value); `0.0` for an empty slice.
pub fn norm_inf(a: &[f64]) -> f64 {
    a.iter().fold(0.0f64, |m, &x| m.max(x.abs()))
}

/// `y ← y + alpha·x`.
///
/// # Panics
///
/// Panics if the slices have different lengths.
pub fn axpy(alpha: f64, x: &[f64], y: &mut [f64]) {
    assert_eq!(x.len(), y.len());
    for (yi, xi) in y.iter_mut().zip(x) {
        *yi += alpha * xi;
    }
}

/// `y ← x + beta·y` (the "xpby" update used inside CG).
///
/// # Panics
///
/// Panics if the slices have different lengths.
pub fn xpby(x: &[f64], beta: f64, y: &mut [f64]) {
    assert_eq!(x.len(), y.len());
    for (yi, xi) in y.iter_mut().zip(x) {
        *yi = xi + beta * *yi;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dot_and_norms() {
        let a = [3.0, -4.0];
        assert_eq!(dot(&a, &a), 25.0);
        assert_eq!(norm2(&a), 5.0);
        assert_eq!(norm1(&a), 7.0);
        assert_eq!(norm_inf(&a), 4.0);
        assert_eq!(norm_inf(&[]), 0.0);
    }

    #[test]
    fn axpy_updates_in_place() {
        let x = [1.0, 2.0];
        let mut y = [10.0, 20.0];
        axpy(2.0, &x, &mut y);
        assert_eq!(y, [12.0, 24.0]);
    }

    #[test]
    fn xpby_updates_in_place() {
        let x = [1.0, 2.0];
        let mut y = [10.0, 20.0];
        xpby(&x, 0.5, &mut y);
        assert_eq!(y, [6.0, 12.0]);
    }
}
