//! Compressed sparse row storage.

/// Matrices with fewer stored entries than this multiply sequentially —
/// pool dispatch costs more than the multiply below it. The gate depends
/// only on the matrix, never the thread count, and the parallel kernel
/// writes each output row exactly once, so `mul_vec` results are
/// bit-identical for every thread count.
const PAR_MIN_NNZ: usize = 8192;

/// A sparse matrix in compressed sparse row (CSR) format.
///
/// Rows are stored contiguously; within each row, column indices are strictly
/// increasing. The matrix is not required to be symmetric, but the placement
/// systems built on top of it always are, and [`CsrMatrix::is_symmetric`]
/// lets tests assert it.
#[derive(Debug, Clone, PartialEq)]
pub struct CsrMatrix {
    n: usize,
    row_ptr: Vec<usize>,
    col_idx: Vec<u32>,
    values: Vec<f64>,
}

impl CsrMatrix {
    /// Builds a CSR matrix from parallel triplet arrays, summing duplicates.
    ///
    /// # Panics
    ///
    /// Panics if the slices have different lengths or contain out-of-bounds
    /// indices.
    pub fn from_triplets(n: usize, rows: &[u32], cols: &[u32], vals: &[f64]) -> Self {
        assert_eq!(rows.len(), cols.len());
        assert_eq!(rows.len(), vals.len());

        // Count entries per row.
        let mut counts = vec![0usize; n + 1];
        for &r in rows {
            assert!((r as usize) < n, "row index out of bounds");
            counts[r as usize + 1] += 1;
        }
        for i in 0..n {
            counts[i + 1] += counts[i];
        }
        let row_ptr_raw = counts.clone();

        // Scatter into row-grouped arrays.
        let mut cursor = row_ptr_raw.clone();
        let mut col_raw = vec![0u32; rows.len()];
        let mut val_raw = vec![0.0f64; rows.len()];
        for k in 0..rows.len() {
            assert!((cols[k] as usize) < n, "col index out of bounds");
            let r = rows[k] as usize;
            let dst = cursor[r];
            col_raw[dst] = cols[k];
            val_raw[dst] = vals[k];
            cursor[r] += 1;
        }

        // Sort each row by column and merge duplicates.
        let mut row_ptr = Vec::with_capacity(n + 1);
        let mut col_idx = Vec::with_capacity(rows.len());
        let mut values = Vec::with_capacity(rows.len());
        row_ptr.push(0);
        let mut scratch: Vec<(u32, f64)> = Vec::new();
        for r in 0..n {
            scratch.clear();
            scratch.extend(
                col_raw[row_ptr_raw[r]..row_ptr_raw[r + 1]]
                    .iter()
                    .copied()
                    .zip(val_raw[row_ptr_raw[r]..row_ptr_raw[r + 1]].iter().copied()),
            );
            scratch.sort_unstable_by_key(|&(c, _)| c);
            let mut i = 0;
            while i < scratch.len() {
                let c = scratch[i].0;
                let mut v = scratch[i].1;
                let mut j = i + 1;
                while j < scratch.len() && scratch[j].0 == c {
                    v += scratch[j].1;
                    j += 1;
                }
                // lint:allow(no-float-eq): drops entries that sum to exact
                // zero (e.g. +a + -a); small values must be kept.
                if v != 0.0 {
                    col_idx.push(c);
                    values.push(v);
                }
                i = j;
            }
            row_ptr.push(col_idx.len());
        }

        Self {
            n,
            row_ptr,
            col_idx,
            values,
        }
    }

    /// The matrix dimension (the matrix is square).
    pub fn dim(&self) -> usize {
        self.n
    }

    /// Number of stored (structurally non-zero) entries.
    pub fn nnz(&self) -> usize {
        self.values.len()
    }

    /// Returns the entry at `(row, col)`, or `0.0` if not stored.
    ///
    /// # Panics
    ///
    /// Panics if `row` or `col` is out of bounds.
    pub fn get(&self, row: usize, col: usize) -> f64 {
        assert!(row < self.n && col < self.n);
        let lo = self.row_ptr[row];
        let hi = self.row_ptr[row + 1];
        match self.col_idx[lo..hi].binary_search(&(col as u32)) {
            Ok(k) => self.values[lo + k],
            Err(_) => 0.0,
        }
    }

    /// Computes `out = A·v`.
    ///
    /// Large matrices are multiplied on the `complx-par` pool, with rows
    /// partitioned into contiguous, nnz-balanced ranges. Each output row is
    /// written exactly once, so results are bit-identical across thread
    /// counts.
    ///
    /// # Panics
    ///
    /// Panics if `v` or `out` have length different from [`CsrMatrix::dim`].
    pub fn mul_vec(&self, v: &[f64], out: &mut [f64]) {
        assert_eq!(
            v.len(),
            self.n,
            "CsrMatrix::mul_vec: input vector length {} does not match matrix dim {}",
            v.len(),
            self.n
        );
        assert_eq!(
            out.len(),
            self.n,
            "CsrMatrix::mul_vec: output vector length {} does not match matrix dim {}",
            out.len(),
            self.n
        );
        debug_assert_eq!(self.row_ptr.len(), self.n + 1, "corrupt row_ptr");
        let t = complx_par::threads().min(self.n.max(1));
        if self.nnz() < PAR_MIN_NNZ || t <= 1 {
            self.mul_vec_rows(v, out, 0);
            return;
        }
        // nnz-balanced partition: the k-th boundary is the first row whose
        // cumulative entry count reaches k/t of the total. The boundaries
        // depend on the thread count, which is fine here: per-row outputs
        // are independent, so any partition produces identical bits.
        let nnz = self.nnz();
        let mut bounds = Vec::with_capacity(t + 1);
        bounds.push(0usize);
        let mut prev_bound = 0usize;
        for k in 1..t {
            let target = k * nnz / t;
            let row = self.row_ptr.partition_point(|&p| p < target).min(self.n);
            prev_bound = row.max(prev_bound);
            bounds.push(prev_bound);
        }
        bounds.push(self.n);
        let car = complx_obs::carrier();
        complx_par::scope(|s| {
            let mut rest = out;
            for w in bounds.windows(2) {
                let (lo, hi) = (w[0], w[1]);
                let (part, tail) = rest.split_at_mut(hi - lo);
                rest = tail;
                let car = &car;
                s.spawn(move || {
                    let _attached = car.attach();
                    let _sp = complx_obs::span("chunks");
                    self.mul_vec_rows(v, part, lo);
                });
            }
        });
    }

    /// The sequential multiply kernel for rows `row0 .. row0 + out.len()`.
    fn mul_vec_rows(&self, v: &[f64], out: &mut [f64], row0: usize) {
        for (i, slot) in out.iter_mut().enumerate() {
            let r = row0 + i;
            let mut acc = 0.0;
            for k in self.row_ptr[r]..self.row_ptr[r + 1] {
                acc += self.values[k] * v[self.col_idx[k] as usize];
            }
            *slot = acc;
        }
    }

    /// Returns the diagonal as a dense vector (zeros for missing entries).
    pub fn diagonal(&self) -> Vec<f64> {
        (0..self.n).map(|i| self.get(i, i)).collect()
    }

    /// Computes the quadratic form `vᵀAv`.
    pub fn quadratic_form(&self, v: &[f64]) -> f64 {
        assert_eq!(v.len(), self.n);
        let mut acc = 0.0;
        for r in 0..self.n {
            let mut row_acc = 0.0;
            for k in self.row_ptr[r]..self.row_ptr[r + 1] {
                row_acc += self.values[k] * v[self.col_idx[k] as usize];
            }
            acc += v[r] * row_acc;
        }
        acc
    }

    /// Checks symmetry up to absolute tolerance `tol`.
    pub fn is_symmetric(&self, tol: f64) -> bool {
        for r in 0..self.n {
            for k in self.row_ptr[r]..self.row_ptr[r + 1] {
                let c = self.col_idx[k] as usize;
                if (self.values[k] - self.get(c, r)).abs() > tol {
                    return false;
                }
            }
        }
        true
    }

    /// Iterates over the stored entries of row `r` as `(col, value)` pairs.
    pub fn row(&self, r: usize) -> impl Iterator<Item = (usize, f64)> + '_ {
        let lo = self.row_ptr[r];
        let hi = self.row_ptr[r + 1];
        self.col_idx[lo..hi]
            .iter()
            .map(|&c| c as usize)
            .zip(self.values[lo..hi].iter().copied())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::TripletMatrix;

    fn sample() -> CsrMatrix {
        let mut t = TripletMatrix::new(3);
        t.add(0, 0, 2.0);
        t.add(0, 1, -1.0);
        t.add(1, 0, -1.0);
        t.add(1, 1, 2.0);
        t.add(1, 2, -1.0);
        t.add(2, 1, -1.0);
        t.add(2, 2, 2.0);
        t.to_csr()
    }

    #[test]
    fn get_and_nnz() {
        let a = sample();
        assert_eq!(a.nnz(), 7);
        assert_eq!(a.get(0, 0), 2.0);
        assert_eq!(a.get(0, 2), 0.0);
        assert_eq!(a.get(2, 1), -1.0);
    }

    #[test]
    fn mul_vec_matches_dense() {
        let a = sample();
        let v = [1.0, 2.0, 3.0];
        let mut out = vec![0.0; 3];
        a.mul_vec(&v, &mut out);
        assert_eq!(out, vec![0.0, 0.0, 4.0]);
    }

    #[test]
    fn diagonal_extraction() {
        let a = sample();
        assert_eq!(a.diagonal(), vec![2.0, 2.0, 2.0]);
    }

    #[test]
    fn quadratic_form_positive_definite() {
        let a = sample();
        // Tridiagonal Toeplitz [2,-1] is SPD.
        for v in [[1.0, 0.0, 0.0], [1.0, 1.0, 1.0], [-1.0, 2.0, -1.0]] {
            assert!(a.quadratic_form(&v) > 0.0);
        }
    }

    #[test]
    fn symmetry_check() {
        let a = sample();
        assert!(a.is_symmetric(1e-12));
        let mut t = TripletMatrix::new(2);
        t.add(0, 1, 1.0);
        assert!(!t.to_csr().is_symmetric(1e-12));
    }

    #[test]
    fn row_iterator_sorted() {
        let a = sample();
        let row1: Vec<_> = a.row(1).collect();
        assert_eq!(row1, vec![(0, -1.0), (1, 2.0), (2, -1.0)]);
    }

    #[test]
    #[should_panic(expected = "input vector length 2 does not match matrix dim 3")]
    fn mul_vec_rejects_wrong_input_length() {
        let a = sample();
        let mut out = vec![0.0; 3];
        a.mul_vec(&[1.0, 2.0], &mut out);
    }

    #[test]
    #[should_panic(expected = "output vector length 4 does not match matrix dim 3")]
    fn mul_vec_rejects_wrong_output_length() {
        let a = sample();
        let mut out = vec![0.0; 4];
        a.mul_vec(&[1.0, 2.0, 3.0], &mut out);
    }

    /// Builds a matrix big enough to clear `PAR_MIN_NNZ` (a 1-D Poisson
    /// chain has ~3n entries).
    fn big_poisson(n: usize) -> CsrMatrix {
        let mut t = TripletMatrix::new(n);
        for i in 0..n {
            t.add(i, i, 2.0 + (i % 7) as f64 * 0.125);
            if i + 1 < n {
                t.add(i, i + 1, -1.0);
                t.add(i + 1, i, -1.0);
            }
        }
        t.to_csr()
    }

    #[test]
    fn parallel_mul_vec_bit_identical_across_thread_counts() {
        let n = 4096; // ~12k nnz: engages the parallel path
        let a = big_poisson(n);
        assert!(a.nnz() >= super::PAR_MIN_NNZ);
        let v: Vec<f64> = (0..n)
            .map(|i| ((i * 31 % 101) as f64) * 0.013 - 0.5)
            .collect();
        let reference = {
            let _g = complx_par::with_threads(1);
            let mut out = vec![0.0; n];
            a.mul_vec(&v, &mut out);
            out
        };
        for t in [2, 8] {
            let _g = complx_par::with_threads(t);
            let mut out = vec![0.0; n];
            a.mul_vec(&v, &mut out);
            for (got, want) in out.iter().zip(&reference) {
                assert_eq!(got.to_bits(), want.to_bits());
            }
        }
    }

    #[test]
    fn duplicate_cancellation_drops_entry() {
        let mut t = TripletMatrix::new(2);
        t.add(0, 1, 1.0);
        t.add(0, 1, -1.0);
        let a = t.to_csr();
        assert_eq!(a.nnz(), 0);
    }
}
