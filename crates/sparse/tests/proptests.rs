//! Property-based tests for the sparse substrate.

use complx_sparse::{vector, CgSolver, CsrMatrix, TripletMatrix};
use proptest::prelude::*;

/// Strategy: a random SPD matrix built as a Laplacian over random edges plus
/// a strictly positive diagonal shift (guaranteeing positive-definiteness).
fn spd_matrix(n: usize, max_edges: usize) -> impl Strategy<Value = CsrMatrix> {
    let edges = proptest::collection::vec((0..n, 0..n, 0.01f64..10.0), 0..=max_edges);
    let shifts = proptest::collection::vec(0.1f64..5.0, n);
    (edges, shifts).prop_map(move |(edges, shifts)| {
        let mut t = TripletMatrix::new(n);
        for (i, j, w) in edges {
            if i != j {
                t.add_connection(i, j, w);
            }
        }
        for (i, s) in shifts.iter().enumerate() {
            t.add_diagonal(i, *s);
        }
        t.to_csr()
    })
}

proptest! {
    #[test]
    fn cg_solves_random_spd_systems(
        a in spd_matrix(20, 60),
        xs in proptest::collection::vec(-100.0f64..100.0, 20),
    ) {
        let mut b = vec![0.0; 20];
        a.mul_vec(&xs, &mut b);
        let mut x = vec![0.0; 20];
        let stats = CgSolver::new().with_tolerance(1e-10).solve(&a, &b, &mut x);
        prop_assert!(stats.converged);
        // Residual check (the solution itself may be ill-conditioned).
        let mut ax = vec![0.0; 20];
        a.mul_vec(&x, &mut ax);
        let resid: f64 = ax.iter().zip(&b).map(|(p, q)| (p - q).abs()).sum();
        let scale: f64 = b.iter().map(|v| v.abs()).sum::<f64>().max(1.0);
        prop_assert!(resid / scale < 1e-6, "residual {resid} scale {scale}");
    }

    #[test]
    fn laplacian_stamps_are_symmetric(a in spd_matrix(15, 40)) {
        prop_assert!(a.is_symmetric(1e-12));
    }

    #[test]
    fn spd_quadratic_form_is_positive(
        a in spd_matrix(10, 30),
        v in proptest::collection::vec(-10.0f64..10.0, 10),
    ) {
        let nonzero = v.iter().any(|&x| x.abs() > 1e-9);
        if nonzero {
            prop_assert!(a.quadratic_form(&v) > 0.0);
        }
    }

    #[test]
    fn triplet_accumulation_matches_sequential_sum(
        entries in proptest::collection::vec((0usize..5, 0usize..5, -10.0f64..10.0), 0..30)
    ) {
        let mut t = TripletMatrix::new(5);
        let mut dense = [[0.0f64; 5]; 5];
        for &(r, c, v) in &entries {
            t.add(r, c, v);
            dense[r][c] += v;
        }
        let a = t.to_csr();
        for r in 0..5 {
            for c in 0..5 {
                prop_assert!((a.get(r, c) - dense[r][c]).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn mul_vec_is_linear(
        a in spd_matrix(8, 20),
        u in proptest::collection::vec(-5.0f64..5.0, 8),
        v in proptest::collection::vec(-5.0f64..5.0, 8),
        alpha in -3.0f64..3.0,
    ) {
        // A(u + αv) == Au + αAv
        let combined: Vec<f64> = u.iter().zip(&v).map(|(x, y)| x + alpha * y).collect();
        let mut lhs = vec![0.0; 8];
        a.mul_vec(&combined, &mut lhs);
        let mut au = vec![0.0; 8];
        let mut av = vec![0.0; 8];
        a.mul_vec(&u, &mut au);
        a.mul_vec(&v, &mut av);
        for i in 0..8 {
            prop_assert!((lhs[i] - (au[i] + alpha * av[i])).abs() < 1e-9);
        }
    }

    #[test]
    fn norm_triangle_inequality(
        u in proptest::collection::vec(-100.0f64..100.0, 12),
        v in proptest::collection::vec(-100.0f64..100.0, 12),
    ) {
        let sum: Vec<f64> = u.iter().zip(&v).map(|(a, b)| a + b).collect();
        prop_assert!(vector::norm2(&sum) <= vector::norm2(&u) + vector::norm2(&v) + 1e-9);
        prop_assert!(vector::norm1(&sum) <= vector::norm1(&u) + vector::norm1(&v) + 1e-9);
    }
}
