//! Scoped fork-join on the persistent pool.
//!
//! [`scope`] is the only place in the workspace that touches `unsafe`: it
//! erases the `'scope` lifetime of spawned closures so they can sit in the
//! `'static` pool queue. Soundness rests on one invariant — **`scope` does
//! not return (or unwind) until every spawned job has completed** — which
//! is enforced by a completion counter waited on in a drop guard, so it
//! holds even when the scope body itself panics.

use std::marker::PhantomData;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::Duration;

use crate::pool::{Job, Pool};

/// Shared between a scope, its spawned jobs, and the wait guard.
struct ScopeState {
    /// Jobs spawned but not yet completed.
    pending: AtomicUsize,
    /// Lock + condvar pair for the completion wait. The lock is held
    /// around the decrement so a waiter cannot observe `pending > 0` and
    /// then sleep through the corresponding notification.
    lock: Mutex<()>,
    done: Condvar,
    /// First captured worker panic, re-thrown on the scope's caller.
    panic: Mutex<Option<Box<dyn std::any::Any + Send + 'static>>>,
}

fn plain<T>(m: &Mutex<T>) -> std::sync::MutexGuard<'_, T> {
    m.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
}

/// Handle for spawning borrowed jobs onto the pool; see [`scope`].
pub struct Scope<'scope> {
    pool: &'static Pool,
    state: Arc<ScopeState>,
    /// Invariance over `'scope` (the same trick as `std::thread::scope`):
    /// prevents the borrow checker from shrinking `'scope` to something
    /// that ends before the scope waits.
    _marker: PhantomData<&'scope mut &'scope ()>,
}

impl<'scope> Scope<'scope> {
    /// Spawns `f` onto the pool. The closure may borrow anything that
    /// outlives the [`scope`] call. A panicking job does not abort the
    /// others; the first panic payload is re-thrown when the scope closes.
    pub fn spawn<F>(&self, f: F)
    where
        F: FnOnce() + Send + 'scope,
    {
        self.state.pending.fetch_add(1, Ordering::SeqCst);
        let state = Arc::clone(&self.state);
        let job: Box<dyn FnOnce() + Send + 'scope> = Box::new(move || {
            if let Err(payload) = catch_unwind(AssertUnwindSafe(f)) {
                plain(&state.panic).get_or_insert(payload);
            }
            // Publish completion: the lock pairs with the waiter's
            // check-then-wait, and the Release ordering (via SeqCst) makes
            // the job's writes visible to whoever sees the decrement.
            let guard = plain(&state.lock);
            state.pending.fetch_sub(1, Ordering::SeqCst);
            drop(guard);
            state.done.notify_all();
        });
        // SAFETY: the job only borrows data that lives for `'scope`, and
        // `scope` (via `WaitGuard`, which runs even on unwind) blocks
        // until `pending` returns to zero — i.e. until this job has fully
        // executed — before `'scope` can end. The transmute only erases
        // the lifetime; the vtable and layout are unchanged.
        let job: Job = unsafe {
            std::mem::transmute::<Box<dyn FnOnce() + Send + 'scope>, Box<dyn FnOnce() + Send>>(job)
        };
        self.pool.submit(job);
    }
}

/// Blocks until the scope's `pending` count reaches zero, helping to
/// drain the pool queue while waiting (so progress is guaranteed even
/// with zero pooled workers, and the caller's core is never idle).
struct WaitGuard<'a> {
    state: &'a ScopeState,
    pool: &'static Pool,
}

impl Drop for WaitGuard<'_> {
    fn drop(&mut self) {
        while self.state.pending.load(Ordering::SeqCst) != 0 {
            if self.pool.try_run_one() {
                continue;
            }
            let guard = plain(&self.state.lock);
            if self.state.pending.load(Ordering::SeqCst) == 0 {
                break;
            }
            // Bounded wait: a job submitted by a still-running sibling
            // (nested scopes) may be worth helping with, so wake up
            // periodically to poll the queue again.
            let _ = self
                .state
                .done
                .wait_timeout(guard, Duration::from_micros(200));
        }
    }
}

/// Runs `body` with a [`Scope`] whose spawned jobs may borrow local data;
/// returns only after every spawned job has completed.
///
/// The pool is sized to `threads() - 1` workers on entry (the caller is
/// the remaining runner: it executes the scope body, then helps drain the
/// queue while waiting). If a job panics, the first panic payload is
/// re-thrown here after all jobs have finished; if `body` itself panics,
/// the scope still waits for every job before unwinding.
pub fn scope<'env, R>(body: impl FnOnce(&Scope<'env>) -> R) -> R {
    let pool = Pool::global();
    pool.ensure_workers(crate::threads().saturating_sub(1));
    let s = Scope {
        pool,
        state: Arc::new(ScopeState {
            pending: AtomicUsize::new(0),
            lock: Mutex::new(()),
            done: Condvar::new(),
            panic: Mutex::new(None),
        }),
        _marker: PhantomData,
    };
    let result = {
        let _wait = WaitGuard {
            state: &s.state,
            pool,
        };
        body(&s)
        // `_wait` drops here: blocks until all spawned jobs are done,
        // even if `body` panicked.
    };
    if let Some(payload) = plain(&s.state.panic).take() {
        resume_unwind(payload);
    }
    result
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64;

    #[test]
    fn jobs_borrow_and_mutate_local_data() {
        let _g = crate::with_threads(4);
        let data = vec![1u64, 2, 3, 4, 5, 6, 7, 8];
        let total = AtomicU64::new(0);
        scope(|s| {
            for chunk in data.chunks(3) {
                s.spawn(|| {
                    total.fetch_add(chunk.iter().sum::<u64>(), Ordering::Relaxed);
                });
            }
        });
        assert_eq!(total.into_inner(), 36);
    }

    #[test]
    fn pool_is_reused_across_scopes() {
        let _g = crate::with_threads(3);
        let hits = AtomicU64::new(0);
        for _ in 0..10 {
            scope(|s| {
                for _ in 0..4 {
                    s.spawn(|| {
                        hits.fetch_add(1, Ordering::Relaxed);
                    });
                }
            });
        }
        assert_eq!(hits.into_inner(), 40);
        // Worker count stays bounded by the requested parallelism: reuse,
        // not respawn (other tests may have grown the pool further, so
        // only the global cap can be asserted exactly).
        assert!(Pool::global().workers() <= crate::MAX_THREADS);
    }

    #[test]
    fn worker_panic_propagates_to_caller_and_pool_survives() {
        let _g = crate::with_threads(4);
        let finished = AtomicU64::new(0);
        let caught = std::panic::catch_unwind(AssertUnwindSafe(|| {
            scope(|s| {
                s.spawn(|| panic!("deliberate test panic"));
                s.spawn(|| {
                    finished.fetch_add(1, Ordering::Relaxed);
                });
            });
        }));
        let payload = caught.expect_err("worker panic must reach the caller");
        let msg = payload
            .downcast_ref::<&str>()
            .copied()
            .unwrap_or("(non-str payload)");
        assert!(msg.contains("deliberate"), "payload: {msg}");
        // Sibling jobs still ran; the scope waited for them.
        assert_eq!(finished.load(Ordering::Relaxed), 1);
        // The pool remains usable afterwards.
        let ok = AtomicU64::new(0);
        scope(|s| {
            s.spawn(|| {
                ok.fetch_add(1, Ordering::Relaxed);
            });
        });
        assert_eq!(ok.into_inner(), 1);
    }

    #[test]
    fn nested_spawns_complete_before_scope_returns() {
        let _g = crate::with_threads(4);
        let hits = AtomicU64::new(0);
        scope(|s| {
            s.spawn(|| {
                hits.fetch_add(1, Ordering::Relaxed);
                // A job may open its own (nested) scope.
                scope(|inner| {
                    inner.spawn(|| {
                        hits.fetch_add(1, Ordering::Relaxed);
                    });
                });
            });
        });
        assert_eq!(hits.into_inner(), 2);
    }

    #[test]
    fn empty_scope_returns_body_value() {
        assert_eq!(scope(|_| 42), 42);
    }
}
