//! Cooperative cancellation.
//!
//! A [`CancelToken`] is a shared atomic flag that long-running kernels poll
//! at safe points (CG iterations, projection regions, detailed-placement
//! passes). Cancellation is *cooperative*: tripping the token never
//! interrupts a computation mid-step — each kernel finishes the unit of
//! work it is on and then returns its last consistent state, so a cancelled
//! solve still yields finite, well-formed results.
//!
//! Cloning a token is cheap (an `Arc` bump) and every clone observes the
//! same flag, so one token can be handed to a watchdog thread, a service
//! front-end, and the solve pipeline at once. The flag is one-way: once
//! cancelled, a token stays cancelled.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

/// A shared, clonable, one-way cancellation flag.
#[derive(Debug, Clone, Default)]
pub struct CancelToken {
    flag: Arc<AtomicBool>,
}

impl CancelToken {
    /// Creates a token in the not-cancelled state.
    pub fn new() -> Self {
        Self::default()
    }

    /// Trips the flag. Every clone of this token observes the cancellation;
    /// kernels stop at their next poll point. Idempotent.
    pub fn cancel(&self) {
        self.flag.store(true, Ordering::Release);
    }

    /// Whether the token has been cancelled. Cheap enough to poll in inner
    /// loops (a relaxed-acquire load of one shared byte).
    pub fn is_cancelled(&self) -> bool {
        self.flag.load(Ordering::Acquire)
    }
}

/// Two tokens compare equal when they share the same flag (clone
/// identity), mirroring the semantics of [`CancelToken::cancel`] — equal
/// tokens always observe each other's cancellation.
impl PartialEq for CancelToken {
    fn eq(&self, other: &Self) -> bool {
        Arc::ptr_eq(&self.flag, &other.flag)
    }
}

impl Eq for CancelToken {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn starts_live_and_trips_once() {
        let t = CancelToken::new();
        assert!(!t.is_cancelled());
        t.cancel();
        assert!(t.is_cancelled());
        t.cancel(); // idempotent
        assert!(t.is_cancelled());
    }

    #[test]
    fn clones_share_the_flag() {
        let a = CancelToken::new();
        let b = a.clone();
        assert_eq!(a, b);
        b.cancel();
        assert!(a.is_cancelled());
    }

    #[test]
    fn distinct_tokens_are_independent_and_unequal() {
        let a = CancelToken::new();
        let b = CancelToken::new();
        assert_ne!(a, b);
        a.cancel();
        assert!(!b.is_cancelled());
    }

    #[test]
    fn cancellation_is_visible_across_threads() {
        let t = CancelToken::new();
        let t2 = t.clone();
        let h = std::thread::spawn(move || {
            t2.cancel();
        });
        h.join().expect("cancelling thread");
        assert!(t.is_cancelled());
    }
}
