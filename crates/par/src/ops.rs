//! Chunked parallel iteration with deterministic, order-stable merges.

use std::ops::Range;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

use crate::scope;

/// Number of chunks of size `chunk` covering `len` elements. Depends only
/// on `(len, chunk)` — never on the thread count — which is what makes
/// chunked reductions bit-stable across thread counts.
pub fn chunk_count(len: usize, chunk: usize) -> usize {
    len.div_ceil(chunk.max(1))
}

/// The half-open element range of chunk `i` (see [`chunk_count`]).
pub fn chunk_range(len: usize, chunk: usize, i: usize) -> Range<usize> {
    let chunk = chunk.max(1);
    let lo = i * chunk;
    lo..(lo + chunk).min(len)
}

fn claim(next: &AtomicUsize, n: usize) -> Option<usize> {
    let i = next.fetch_add(1, Ordering::Relaxed);
    (i < n).then_some(i)
}

/// Runs `f(i)` for every `i in 0..n`, using at most [`crate::threads`]
/// concurrent runners (the calling thread is one of them).
///
/// Index-to-runner assignment is dynamic (load-balanced) and therefore
/// *not* deterministic; `f` must only perform work whose combined effect
/// is independent of that assignment — disjoint writes, atomics, or
/// side-effect-free work captured per index.
pub fn par_for(n: usize, f: impl Fn(usize) + Sync) {
    let t = crate::threads().min(n);
    if t <= 1 {
        for i in 0..n {
            f(i);
        }
        return;
    }
    let next = AtomicUsize::new(0);
    scope(|s| {
        let run = || {
            while let Some(i) = claim(&next, n) {
                f(i)
            }
        };
        for _ in 1..t {
            s.spawn(run);
        }
        run();
    });
}

/// Maps `f` over `0..n` in parallel and returns the results **in index
/// order**, regardless of which runner computed which index.
///
/// With `threads() == 1` (or `n <= 1`) this is a plain in-order loop with
/// no pool dispatch. Because the output ordering is by index, any merge
/// the caller performs over the returned vector is bit-identical for
/// every thread count.
pub fn par_map<T: Send>(n: usize, f: impl Fn(usize) -> T + Sync) -> Vec<T> {
    let t = crate::threads().min(n);
    if t <= 1 {
        return (0..n).map(f).collect();
    }
    let next = AtomicUsize::new(0);
    let collected: Mutex<Vec<(usize, T)>> = Mutex::new(Vec::with_capacity(n));
    scope(|s| {
        let run = || {
            while let Some(i) = claim(&next, n) {
                let value = f(i); // computed outside the lock
                collected
                    .lock()
                    .unwrap_or_else(std::sync::PoisonError::into_inner)
                    .push((i, value));
            }
        };
        for _ in 1..t {
            s.spawn(run);
        }
        run();
    });
    let mut pairs = collected
        .into_inner()
        .unwrap_or_else(std::sync::PoisonError::into_inner);
    debug_assert_eq!(pairs.len(), n);
    pairs.sort_unstable_by_key(|&(i, _)| i);
    pairs.into_iter().map(|(_, v)| v).collect()
}

/// Ordered tree-reduce: maps `f` over `0..n` chunks in parallel, then
/// folds the per-chunk partials **left-to-right in chunk index order** on
/// the calling thread. Returns `None` for `n == 0`.
///
/// Pair this with size-only chunk boundaries ([`chunk_count`] /
/// [`chunk_range`]) and an f64 sum is bit-identical for 1, 2, or any
/// other number of threads.
pub fn par_reduce<T: Send>(
    n: usize,
    f: impl Fn(usize) -> T + Sync,
    fold: impl FnMut(T, T) -> T,
) -> Option<T> {
    par_map(n, f).into_iter().reduce(fold)
}

/// Deterministic chunked f64 sum of `partial(range)` over fixed chunks of
/// `chunk` elements. The canonical use is a dot product:
/// `sum_f64(n, 4096, |r| dot(&a[r.clone()], &b[r]))`.
pub fn sum_f64(len: usize, chunk: usize, partial: impl Fn(Range<usize>) -> f64 + Sync) -> f64 {
    par_reduce(
        chunk_count(len, chunk),
        |i| partial(chunk_range(len, chunk, i)),
        |a, b| a + b,
    )
    .unwrap_or(0.0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64;

    #[test]
    fn chunk_geometry() {
        assert_eq!(chunk_count(0, 16), 0);
        assert_eq!(chunk_count(1, 16), 1);
        assert_eq!(chunk_count(16, 16), 1);
        assert_eq!(chunk_count(17, 16), 2);
        assert_eq!(chunk_range(17, 16, 0), 0..16);
        assert_eq!(chunk_range(17, 16, 1), 16..17);
        // Degenerate chunk size is clamped to 1 instead of dividing by zero.
        assert_eq!(chunk_count(3, 0), 3);
        assert_eq!(chunk_range(3, 0, 2), 2..3);
    }

    #[test]
    fn par_for_covers_every_index_exactly_once() {
        let _g = crate::with_threads(4);
        let n = 1000;
        let counts: Vec<AtomicU64> = (0..n).map(|_| AtomicU64::new(0)).collect();
        par_for(n, |i| {
            counts[i].fetch_add(1, Ordering::Relaxed);
        });
        assert!(counts.iter().all(|c| c.load(Ordering::Relaxed) == 1));
    }

    #[test]
    fn par_map_preserves_index_order() {
        for t in [1, 2, 8] {
            let _g = crate::with_threads(t);
            let out = par_map(257, |i| i * i);
            assert_eq!(out.len(), 257);
            assert!(out.iter().enumerate().all(|(i, &v)| v == i * i));
        }
    }

    #[test]
    fn empty_and_smaller_than_chunk_inputs() {
        let _g = crate::with_threads(8);
        assert_eq!(par_map(0, |i| i), vec![]);
        assert_eq!(par_reduce(0, |i| i, |a, b| a + b), None);
        assert_eq!(sum_f64(0, 4096, |_| unreachable!()), 0.0);
        par_for(0, |_| unreachable!());
        // A single element never reaches the pool.
        assert_eq!(par_map(1, |i| i + 10), vec![10]);
        // Input shorter than one chunk: exactly one partial.
        let v = [1.5f64, 2.25, -0.75];
        let s = sum_f64(v.len(), 4096, |r| v[r].iter().sum());
        assert_eq!(s.to_bits(), (1.5f64 + 2.25 - 0.75).to_bits());
    }

    /// Satellite requirement: reduction results are bit-identical for
    /// 1, 2, and 8 threads.
    #[test]
    fn reductions_bit_identical_across_1_2_8_threads() {
        // Adversarial magnitudes: mixing 1e16 and 1e-3 terms makes any
        // change in association order visible in the low mantissa bits.
        let mut state = 0x9e3779b97f4a7c15u64;
        let data: Vec<f64> = (0..100_000)
            .map(|i| {
                state = state
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                let frac = (state >> 11) as f64 / (1u64 << 53) as f64;
                if i % 997 == 0 {
                    frac * 1e16
                } else {
                    frac * 1e-3 - 0.0005
                }
            })
            .collect();
        let sum_with = |t: usize| {
            let _g = crate::with_threads(t);
            sum_f64(data.len(), 4096, |r| data[r].iter().sum::<f64>())
        };
        let s1 = sum_with(1);
        let s2 = sum_with(2);
        let s8 = sum_with(8);
        assert_eq!(s1.to_bits(), s2.to_bits());
        assert_eq!(s1.to_bits(), s8.to_bits());
        // Sanity: the chunked sum is a real sum (close to the naive one).
        let naive: f64 = data.iter().sum();
        assert!((s1 - naive).abs() <= naive.abs() * 1e-12);
    }

    #[test]
    fn par_reduce_folds_in_chunk_order() {
        let _g = crate::with_threads(8);
        // Non-commutative fold exposes any out-of-order merge.
        let concat = par_reduce(
            10,
            |i| i.to_string(),
            |mut a, b| {
                a.push('-');
                a.push_str(&b);
                a
            },
        );
        assert_eq!(concat.as_deref(), Some("0-1-2-3-4-5-6-7-8-9"));
    }
}
