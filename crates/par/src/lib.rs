//! Deterministic parallel execution runtime for the placer hot paths.
//!
//! This crate is std-only (like `complx-obs`, it has an empty dependency
//! list) and provides three layers:
//!
//! 1. **Thread-count policy** ([`threads`], [`set_threads`],
//!    [`with_threads`]): how many runners a parallel call may use. The
//!    default is the machine's available parallelism; `COMPLX_THREADS`
//!    overrides it process-wide, [`set_threads`] overrides the environment
//!    (the CLI's `--threads N`), and [`with_threads`] installs a
//!    thread-local override for race-free tests.
//! 2. **A persistent pool with scoped fork-join** ([`scope`]): worker
//!    threads are spawned once, on demand, and reused for the whole
//!    process; [`scope`] lends borrowed closures to them and never returns
//!    until every spawned job has finished (worker panics are captured and
//!    re-thrown on the caller).
//! 3. **Chunked helpers** ([`par_for`], [`par_map`], [`par_reduce`]) that
//!    claim chunk indices dynamically but merge results *in chunk order*.
//!
//! It also hosts the [`CancelToken`] cooperative-cancellation primitive the
//! solve pipeline polls at safe points — it lives here (rather than in the
//! placer) so every kernel crate can accept one without new dependencies.
//!
//! # Determinism contract
//!
//! Every helper here guarantees **bit-identical results for any thread
//! count**, including 1, because:
//!
//! * chunk boundaries are a function of the problem size only — never of
//!   the thread count — whenever the merge is order-sensitive (floating
//!   point reductions);
//! * per-chunk partial results are combined sequentially in ascending
//!   chunk order on the calling thread, so an f64 reduction performs the
//!   exact same sequence of additions no matter which worker computed
//!   which partial;
//! * at `threads() == 1` the same chunks run inline on the caller, in
//!   order, with no pool dispatch at all — the sequential code path *is*
//!   the chunked algorithm executed in order.
//!
//! Kernels whose merge is order-*preserving* (per-row SpMV output slots,
//! triplet buffers concatenated in net order, sparse `+=` update lists
//! applied in element order) are free to pick thread-dependent partitions:
//! the result is bitwise independent of the partitioning by construction.

#![warn(missing_docs)]
#![deny(unsafe_op_in_unsafe_fn)]

mod cancel;
mod ops;
mod pool;
mod scope;

pub use cancel::CancelToken;
pub use ops::{chunk_count, chunk_range, par_for, par_map, par_reduce, sum_f64};
pub use scope::{scope, Scope};

use std::cell::Cell;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::OnceLock;

/// Hard upper bound on the number of runners (and pooled worker threads).
pub const MAX_THREADS: usize = 256;

/// Process-wide thread-count override; `0` means "not set".
static GLOBAL_THREADS: AtomicUsize = AtomicUsize::new(0);

thread_local! {
    /// Thread-local override installed by [`with_threads`]; `0` = none.
    static TL_THREADS: Cell<usize> = const { Cell::new(0) };
}

/// The machine's available parallelism (`1` when it cannot be queried).
pub fn available() -> usize {
    std::thread::available_parallelism().map_or(1, |n| n.get())
}

/// The `COMPLX_THREADS` environment override, read once; `0` when unset
/// or unparsable.
fn env_threads() -> usize {
    static ENV: OnceLock<usize> = OnceLock::new();
    *ENV.get_or_init(|| {
        std::env::var("COMPLX_THREADS")
            .ok()
            .and_then(|v| v.trim().parse::<usize>().ok())
            .unwrap_or(0)
    })
}

/// Sets the process-wide thread count (the CLI's `--threads N`).
///
/// `0` restores the automatic default (`COMPLX_THREADS`, then available
/// parallelism). Values are clamped to `1..=`[`MAX_THREADS`] at use time.
/// Thanks to the determinism contract this only affects speed, never
/// results.
pub fn set_threads(n: usize) {
    GLOBAL_THREADS.store(n, Ordering::Relaxed);
}

/// The effective thread count for parallel calls issued by this thread.
///
/// Resolution order: [`with_threads`] override on this thread, then
/// [`set_threads`], then `COMPLX_THREADS`, then [`available`]. Always at
/// least 1 and at most [`MAX_THREADS`].
pub fn threads() -> usize {
    let tl = TL_THREADS.with(Cell::get);
    let n = if tl != 0 {
        tl
    } else {
        let g = GLOBAL_THREADS.load(Ordering::Relaxed);
        if g != 0 {
            g
        } else {
            let e = env_threads();
            if e != 0 {
                e
            } else {
                available()
            }
        }
    };
    n.clamp(1, MAX_THREADS)
}

/// Restores the previous thread-local override when dropped.
#[must_use = "dropping the guard immediately restores the previous thread count"]
#[derive(Debug)]
pub struct ThreadsGuard {
    prev: usize,
}

impl Drop for ThreadsGuard {
    fn drop(&mut self) {
        TL_THREADS.with(|c| c.set(self.prev));
    }
}

/// Overrides [`threads`] for the current thread until the guard drops.
///
/// Tests use this instead of [`set_threads`] so concurrently running tests
/// cannot race on the process-wide setting (results would be identical
/// either way — this keeps the *coverage* deterministic too).
pub fn with_threads(n: usize) -> ThreadsGuard {
    let prev = TL_THREADS.with(|c| c.replace(n.clamp(1, MAX_THREADS)));
    ThreadsGuard { prev }
}

/// Spawns the worker threads a run at `n` threads will use, ahead of the
/// first parallel call.
///
/// [`scope`] sizes the pool lazily, so without prewarming the first
/// parallel region of a process pays thread creation — and its
/// allocations are charged to whatever profiling span happens to be
/// active. Benchmarks call this before the measured window so thread
/// startup cost lands outside it; results are bit-identical either way.
pub fn prewarm(n: usize) {
    pool::Pool::global().ensure_workers(n.clamp(1, MAX_THREADS).saturating_sub(1));
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn thread_count_resolution_and_override() {
        assert!(threads() >= 1);
        {
            let _g = with_threads(3);
            assert_eq!(threads(), 3);
            {
                let _inner = with_threads(7);
                assert_eq!(threads(), 7);
            }
            assert_eq!(threads(), 3);
        }
        assert!(threads() >= 1);
    }

    #[test]
    fn with_threads_clamps_to_valid_range() {
        let _g = with_threads(0);
        assert_eq!(threads(), 1);
        let _g2 = with_threads(usize::MAX);
        assert_eq!(threads(), MAX_THREADS);
    }

    #[test]
    fn available_is_positive() {
        assert!(available() >= 1);
    }
}
