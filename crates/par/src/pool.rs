//! The persistent worker pool behind [`crate::scope`].
//!
//! Workers are OS threads spawned once, on demand, and kept for the
//! lifetime of the process (they block on a condvar when idle, so an idle
//! pool costs nothing). The pool itself is deliberately dumb: a FIFO of
//! type-erased jobs. All structure — completion tracking, panic capture,
//! borrowed data — lives in the scope layer.

use std::collections::VecDeque;
use std::sync::{Condvar, Mutex, MutexGuard, OnceLock};

/// A type-erased unit of work. Jobs never unwind: the scope layer wraps
/// user closures in `catch_unwind` before boxing them.
pub(crate) type Job = Box<dyn FnOnce() + Send + 'static>;

struct Queue {
    jobs: VecDeque<Job>,
    /// Worker threads spawned so far (monotonic; workers never exit).
    spawned: usize,
}

/// The process-global job queue plus its worker threads.
pub(crate) struct Pool {
    queue: Mutex<Queue>,
    ready: Condvar,
}

/// Jobs never panic (see [`Job`]), so a poisoned mutex can only mean a
/// panic while the lock was held inside this module — recover the guard
/// rather than poisoning every parallel call site forever.
fn lock(m: &Mutex<Queue>) -> MutexGuard<'_, Queue> {
    m.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
}

impl Pool {
    /// The process-wide pool (created empty; workers spawn on demand).
    pub(crate) fn global() -> &'static Pool {
        static POOL: OnceLock<Pool> = OnceLock::new();
        POOL.get_or_init(|| Pool {
            queue: Mutex::new(Queue {
                jobs: VecDeque::new(),
                spawned: 0,
            }),
            ready: Condvar::new(),
        })
    }

    /// Ensures at least `want` workers exist (capped at
    /// [`crate::MAX_THREADS`]). Existing workers are reused across scopes;
    /// this only ever grows the pool.
    pub(crate) fn ensure_workers(&'static self, want: usize) {
        let want = want.min(crate::MAX_THREADS);
        let mut q = lock(&self.queue);
        while q.spawned < want {
            q.spawned += 1;
            let id = q.spawned;
            let spawned = std::thread::Builder::new()
                .name(format!("complx-par-{id}"))
                .spawn(move || self.worker_loop());
            if spawned.is_err() {
                // Thread creation failed (resource exhaustion): degrade to
                // fewer workers instead of panicking. Progress is still
                // guaranteed — scope() callers drain the queue themselves.
                q.spawned -= 1;
                break;
            }
        }
    }

    /// Number of worker threads spawned so far.
    #[cfg(test)]
    pub(crate) fn workers(&self) -> usize {
        lock(&self.queue).spawned
    }

    /// Enqueues a job and wakes one idle worker.
    pub(crate) fn submit(&self, job: Job) {
        lock(&self.queue).jobs.push_back(job);
        self.ready.notify_one();
    }

    /// Runs one queued job on the calling thread, if any — lets a thread
    /// waiting on a scope help drain the queue instead of blocking (which
    /// also makes `scope` deadlock-free even with zero workers).
    pub(crate) fn try_run_one(&self) -> bool {
        let job = lock(&self.queue).jobs.pop_front();
        match job {
            Some(job) => {
                job();
                true
            }
            None => false,
        }
    }

    fn worker_loop(&self) {
        loop {
            let job = {
                let mut q = lock(&self.queue);
                loop {
                    if let Some(job) = q.jobs.pop_front() {
                        break job;
                    }
                    q = self
                        .ready
                        .wait(q)
                        .unwrap_or_else(std::sync::PoisonError::into_inner);
                }
            };
            job();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn pool_grows_monotonically_and_is_reused() {
        let pool = Pool::global();
        pool.ensure_workers(2);
        let before = pool.workers();
        assert!(before >= 2);
        pool.ensure_workers(1); // never shrinks
        assert_eq!(pool.workers(), before);
        pool.ensure_workers(before + 1);
        assert_eq!(pool.workers(), before + 1);
    }

    #[test]
    fn try_run_one_drains_the_queue() {
        let pool = Pool::global();
        static RAN: AtomicUsize = AtomicUsize::new(0);
        // No workers required: the caller drains its own submission.
        pool.submit(Box::new(|| {
            RAN.fetch_add(1, Ordering::SeqCst);
        }));
        // A worker may steal the job first; either way it runs exactly once.
        while RAN.load(Ordering::SeqCst) == 0 {
            if !pool.try_run_one() {
                std::thread::yield_now();
            }
        }
        assert_eq!(RAN.load(Ordering::SeqCst), 1);
    }
}
