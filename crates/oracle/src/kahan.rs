//! Compensated (Neumaier–Kahan) summation.
//!
//! The oracle sums per-net spans and per-pair overlap areas for designs with
//! millions of terms; plain left-to-right `f64` accumulation loses up to
//! `O(n·ε)` relative accuracy, which would force the oracle's comparison
//! tolerances far above 1e-9. Neumaier's variant of Kahan summation keeps
//! the running error compensation correct even when an addend exceeds the
//! running sum, at the cost of one extra branch per term.

/// A compensated accumulator.
///
/// ```
/// use complx_oracle::KahanSum;
/// let mut s = KahanSum::new();
/// s.add(1e16);
/// s.add(1.0);
/// s.add(-1e16);
/// assert_eq!(s.value(), 1.0); // naive summation returns 0.0 here
/// ```
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct KahanSum {
    sum: f64,
    compensation: f64,
}

impl KahanSum {
    /// A fresh accumulator at zero.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds one term.
    pub fn add(&mut self, v: f64) {
        let t = self.sum + v;
        if self.sum.abs() >= v.abs() {
            self.compensation += (self.sum - t) + v;
        } else {
            self.compensation += (v - t) + self.sum;
        }
        self.sum = t;
    }

    /// The compensated total.
    pub fn value(&self) -> f64 {
        self.sum + self.compensation
    }
}

/// Sums an iterator of `f64` with compensation.
pub fn kahan_sum(values: impl IntoIterator<Item = f64>) -> f64 {
    let mut acc = KahanSum::new();
    for v in values {
        acc.add(v);
    }
    acc.value()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn recovers_cancelled_small_term() {
        // Naive: (1e16 + 1.0) rounds to 1e16, then − 1e16 gives 0.
        let naive: f64 = [1e16, 1.0, -1e16].iter().sum();
        assert!(naive.abs() < 0.5);
        assert!((kahan_sum([1e16, 1.0, -1e16]) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn matches_plain_sum_on_benign_input() {
        let xs: Vec<f64> = (1..=1000).map(|i| i as f64 * 0.25).collect();
        let plain: f64 = xs.iter().sum();
        assert!((kahan_sum(xs) - plain).abs() <= 1e-9 * plain);
    }

    #[test]
    fn empty_sum_is_zero() {
        assert_eq!(kahan_sum(std::iter::empty()), 0.0);
    }
}
