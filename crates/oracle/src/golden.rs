//! Golden-baseline snapshots: committed quality numbers with tolerance
//! bands.
//!
//! A snapshot freezes the oracle-measured quality of one (design, config)
//! pair — HPWL, overflow, iteration count and phase counters. The golden
//! harness in the workspace `tests/` directory compares fresh runs against
//! the committed JSON and fails loudly when quality drifts outside the
//! band; `COMPLX_BLESS=1` regenerates the files (see DESIGN.md §13 for the
//! blessing workflow).

use complx_obs::JsonValue;

use crate::invariants::Violation;

/// The frozen quality numbers for one golden run.
#[derive(Debug, Clone, PartialEq)]
pub struct GoldenSnapshot {
    /// Design identifier (generator name).
    pub design: String,
    /// Configuration label (e.g. `fast`, `simpl`).
    pub config: String,
    /// Oracle-measured HPWL of the legal placement.
    pub hpwl: f64,
    /// Oracle-measured scaled HPWL (ISPD-2006 metric).
    pub scaled_hpwl: f64,
    /// Oracle-measured overflow penalty percent.
    pub overflow_percent: f64,
    /// Constrained iterations executed.
    pub iterations: i64,
    /// Final λ reached by the schedule.
    pub final_lambda: f64,
    /// Whether the run converged (vs hitting the iteration cap).
    pub converged: bool,
    /// Stop-reason string.
    pub stop_reason: String,
    /// Divergence recoveries taken.
    pub recoveries: i64,
    /// Linear solves performed (phase counter).
    pub solves: i64,
}

/// Tolerance bands for [`GoldenSnapshot::compare`].
///
/// Quality metrics get relative bands; discrete counters get a mix of
/// absolute slack and proportional slack (iteration counts legitimately
/// wobble by a couple of steps when kernels are reordered, but a 2× jump
/// is a regression).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GoldenTolerances {
    /// Relative band on `hpwl` and `scaled_hpwl`.
    pub hpwl_rel: f64,
    /// Absolute band on `overflow_percent`, in percentage points.
    pub overflow_abs: f64,
    /// Relative band on `iterations` and `solves` (with a floor of
    /// `count_abs` steps).
    pub count_rel: f64,
    /// Absolute floor for the count band.
    pub count_abs: i64,
    /// Relative band on `final_lambda` (the schedule is sensitive to
    /// iteration count, so this is loose).
    pub lambda_rel: f64,
}

impl Default for GoldenTolerances {
    fn default() -> Self {
        Self {
            hpwl_rel: 0.02,
            overflow_abs: 1.0,
            count_rel: 0.25,
            count_abs: 2,
            lambda_rel: 0.75,
        }
    }
}

impl GoldenTolerances {
    /// The wide bands used by the workspace-level quality *gates* (the old
    /// hand-maintained ±15% regression constants): routine refactors and
    /// kernel reorderings pass, algorithmic regressions fail.
    pub fn loose() -> Self {
        Self {
            hpwl_rel: 0.15,
            overflow_abs: 3.0,
            count_rel: 0.5,
            count_abs: 5,
            lambda_rel: 2.0,
        }
    }
}

impl GoldenSnapshot {
    /// Serializes to the committed JSON form.
    pub fn to_json(&self) -> JsonValue {
        JsonValue::object(vec![
            ("design", self.design.as_str().into()),
            ("config", self.config.as_str().into()),
            ("hpwl", self.hpwl.into()),
            ("scaled_hpwl", self.scaled_hpwl.into()),
            ("overflow_percent", self.overflow_percent.into()),
            ("iterations", self.iterations.into()),
            ("final_lambda", self.final_lambda.into()),
            ("converged", self.converged.into()),
            ("stop_reason", self.stop_reason.as_str().into()),
            ("recoveries", self.recoveries.into()),
            ("solves", self.solves.into()),
        ])
    }

    /// Parses the committed JSON form.
    pub fn from_json(v: &JsonValue) -> Result<Self, String> {
        let s = |key: &str| -> Result<String, String> {
            v.get(key)
                .and_then(JsonValue::as_str)
                .map(str::to_owned)
                .ok_or_else(|| format!("golden snapshot: missing string field {key:?}"))
        };
        let f = |key: &str| -> Result<f64, String> {
            v.get(key)
                .and_then(JsonValue::as_f64)
                .ok_or_else(|| format!("golden snapshot: missing numeric field {key:?}"))
        };
        let i = |key: &str| -> Result<i64, String> {
            v.get(key)
                .and_then(JsonValue::as_i64)
                .ok_or_else(|| format!("golden snapshot: missing integer field {key:?}"))
        };
        let b = |key: &str| -> Result<bool, String> {
            v.get(key)
                .and_then(JsonValue::as_bool)
                .ok_or_else(|| format!("golden snapshot: missing bool field {key:?}"))
        };
        Ok(Self {
            design: s("design")?,
            config: s("config")?,
            hpwl: f("hpwl")?,
            scaled_hpwl: f("scaled_hpwl")?,
            overflow_percent: f("overflow_percent")?,
            iterations: i("iterations")?,
            final_lambda: f("final_lambda")?,
            converged: b("converged")?,
            stop_reason: s("stop_reason")?,
            recoveries: i("recoveries")?,
            solves: i("solves")?,
        })
    }

    /// Compares a fresh measurement (`self`) against the committed
    /// `baseline` under the tolerance bands. Empty result = within band.
    pub fn compare(&self, baseline: &Self, tol: &GoldenTolerances) -> Vec<Violation> {
        let mut out = Vec::new();
        let mut push = |code: &'static str, message: String| {
            out.push(Violation { code, message });
        };
        let rel_off = |a: f64, b: f64, band: f64| (a - b).abs() > band * b.abs().max(1e-12);
        if rel_off(self.hpwl, baseline.hpwl, tol.hpwl_rel) {
            push(
                "golden-hpwl",
                format!(
                    "hpwl {} vs golden {} (±{:.1}%)",
                    self.hpwl,
                    baseline.hpwl,
                    100.0 * tol.hpwl_rel
                ),
            );
        }
        if rel_off(self.scaled_hpwl, baseline.scaled_hpwl, tol.hpwl_rel) {
            push(
                "golden-scaled-hpwl",
                format!(
                    "scaled_hpwl {} vs golden {} (±{:.1}%)",
                    self.scaled_hpwl,
                    baseline.scaled_hpwl,
                    100.0 * tol.hpwl_rel
                ),
            );
        }
        if (self.overflow_percent - baseline.overflow_percent).abs() > tol.overflow_abs {
            push(
                "golden-overflow",
                format!(
                    "overflow {}% vs golden {}% (±{} points)",
                    self.overflow_percent, baseline.overflow_percent, tol.overflow_abs
                ),
            );
        }
        let count_band = |b: i64| -> i64 {
            let rel = (b as f64 * tol.count_rel).ceil() as i64;
            rel.max(tol.count_abs)
        };
        if (self.iterations - baseline.iterations).abs() > count_band(baseline.iterations) {
            push(
                "golden-iterations",
                format!(
                    "iterations {} vs golden {} (±{})",
                    self.iterations,
                    baseline.iterations,
                    count_band(baseline.iterations)
                ),
            );
        }
        if (self.solves - baseline.solves).abs() > count_band(baseline.solves) {
            push(
                "golden-solves",
                format!(
                    "solves {} vs golden {} (±{})",
                    self.solves,
                    baseline.solves,
                    count_band(baseline.solves)
                ),
            );
        }
        if rel_off(self.final_lambda, baseline.final_lambda, tol.lambda_rel) {
            push(
                "golden-lambda",
                format!(
                    "final λ {} vs golden {} (±{:.0}%)",
                    self.final_lambda,
                    baseline.final_lambda,
                    100.0 * tol.lambda_rel
                ),
            );
        }
        if self.converged != baseline.converged {
            push(
                "golden-converged",
                format!(
                    "converged = {} but golden says {}",
                    self.converged, baseline.converged
                ),
            );
        }
        if self.recoveries != baseline.recoveries {
            push(
                "golden-recoveries",
                format!(
                    "recoveries {} vs golden {}",
                    self.recoveries, baseline.recoveries
                ),
            );
        }
        out
    }
}
