//! First-principles bin-density accounting.
//!
//! Recomputes the ISPD-2006-style overflow metric without touching
//! `complx_netlist::density::DensityGrid`: bins are clipped against cell
//! rectangles by direct interval arithmetic, capacities subtract fixed
//! obstacles (clamped at zero, matching the metric's semantics), movable
//! macros count as blockage rather than standard-cell demand, and per-bin
//! overflow follows
//!
//! `Σ_bins max(0, usage − γ·max(0, capacity − macro)) + max(0, macro − capacity)`
//!
//! normalized by total movable area for the percent form reported in the
//! paper's Table 2.

use complx_netlist::{CellKind, Design, Placement};

use crate::kahan::KahanSum;

/// Grid resolution at which the reported overflow/scaled-HPWL metrics are
/// evaluated (mirrors the placer's `METRIC_BINS`; the two constants are
/// cross-checked in the differential suite).
pub const METRIC_BINS: usize = 32;

/// First-principles density summary at one grid resolution.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DensityAudit {
    /// Grid resolution (`bins × bins`).
    pub bins: usize,
    /// Total overflow area beyond the target density γ.
    pub overflow_area: f64,
    /// Overflow as a percentage of total movable area.
    pub overflow_percent: f64,
    /// Worst bin utilization `usage / capacity` over bins with capacity.
    pub max_utilization: f64,
    /// Total movable area accumulated into the grid (≈ design movable
    /// area; cells clipped by the core boundary contribute less).
    pub total_usage: f64,
}

/// Audits bin density on a `bins × bins` grid over the core.
///
/// # Panics
///
/// Panics if `bins` is zero.
pub fn density_audit(design: &Design, placement: &Placement, bins: usize) -> DensityAudit {
    assert!(bins > 0, "density audit needs at least one bin");
    let core = design.core();
    let nx = bins;
    let ny = bins;
    let bw = core.width() / nx as f64;
    let bh = core.height() / ny as f64;
    let mut capacity = vec![bw * bh; nx * ny];
    let mut usage = vec![0.0f64; nx * ny];
    let mut macro_usage = vec![0.0f64; nx * ny];

    // Overlap of rect `(lx,ly,hx,hy)` with bin `(ix,iy)` by interval
    // clipping against the bin's analytic bounds.
    let clip = |lx: f64, ly: f64, hx: f64, hy: f64, ix: usize, iy: usize| -> f64 {
        let bx0 = core.lx + ix as f64 * bw;
        let by0 = core.ly + iy as f64 * bh;
        let bx1 = core.lx + (ix + 1) as f64 * bw;
        let by1 = core.ly + (iy + 1) as f64 * bh;
        let w = hx.min(bx1) - lx.max(bx0);
        let h = hy.min(by1) - ly.max(by0);
        if w > 0.0 && h > 0.0 {
            w * h
        } else {
            0.0
        }
    };
    let span = |lo: f64, extent: f64, n: usize, v0: f64, v1: f64| -> (usize, usize) {
        let a = (((v0 - lo) / extent).floor() as isize).clamp(0, n as isize - 1) as usize;
        let b = (((v1 - lo) / extent).ceil() as isize - 1).clamp(0, n as isize - 1) as usize;
        (a, b.max(a))
    };

    for id in design.cell_ids() {
        let cell = design.cell(id);
        // Cells with non-finite coordinates contribute nothing (the
        // legality audit reports them; the geometry type would panic).
        if cell.kind().is_movable() {
            let pos = placement.position(id);
            if !(pos.x.is_finite() && pos.y.is_finite()) {
                continue;
            }
        }
        let (r, slot) = match cell.kind() {
            CellKind::Movable => (
                placement.cell_rect(id, cell.width(), cell.height()),
                &mut usage,
            ),
            CellKind::MovableMacro => (
                placement.cell_rect(id, cell.width(), cell.height()),
                &mut macro_usage,
            ),
            CellKind::Fixed => (
                design
                    .fixed_positions()
                    .cell_rect(id, cell.width(), cell.height()),
                &mut capacity,
            ),
            CellKind::Terminal => continue,
        };
        let (x0, x1) = span(core.lx, bw, nx, r.lx, r.hx);
        let (y0, y1) = span(core.ly, bh, ny, r.ly, r.hy);
        let subtract = cell.kind() == CellKind::Fixed;
        for iy in y0..=y1 {
            for ix in x0..=x1 {
                let a = clip(r.lx, r.ly, r.hx, r.hy, ix, iy);
                if a > 0.0 {
                    let s = &mut slot[iy * nx + ix];
                    if subtract {
                        *s = (*s - a).max(0.0);
                    } else {
                        *s += a;
                    }
                }
            }
        }
    }

    let gamma = design.target_density();
    let mut overflow = KahanSum::new();
    let mut total = KahanSum::new();
    let mut max_util = 0.0f64;
    for i in 0..capacity.len() {
        let free = (capacity[i] - macro_usage[i]).max(0.0);
        overflow.add((usage[i] - gamma * free).max(0.0));
        overflow.add((macro_usage[i] - capacity[i]).max(0.0));
        total.add(usage[i] + macro_usage[i]);
        if capacity[i] > 1e-9 {
            let util = (usage[i] + macro_usage[i]) / capacity[i];
            if util > max_util {
                max_util = util;
            }
        }
    }
    let overflow_area = overflow.value();
    let movable = design.movable_area();
    DensityAudit {
        bins,
        overflow_area,
        overflow_percent: if movable > 0.0 {
            100.0 * overflow_area / movable
        } else {
            0.0
        },
        max_utilization: max_util,
        total_usage: total.value(),
    }
}

/// The overflow penalty percent at the reporting resolution
/// ([`METRIC_BINS`]).
pub fn overflow_percent(design: &Design, placement: &Placement) -> f64 {
    density_audit(design, placement, METRIC_BINS).overflow_percent
}

/// ISPD-2006 scaled HPWL: `HPWL × (1 + penalty% / 100)`, both factors
/// oracle-computed.
pub fn scaled_hpwl(design: &Design, placement: &Placement) -> f64 {
    let penalty = overflow_percent(design, placement);
    crate::hpwl::hpwl(design, placement) * (1.0 + penalty / 100.0)
}
