//! Parsing of convergence traces (CSV and JSON) into oracle records.
//!
//! The placer CLI emits traces either as CSV (`%.6e` columns — about six
//! significant digits survive) or as a JSON array (full `f64` round-trip
//! precision). Invariant checks that cross-reference trace values against
//! report values must use tolerances compatible with the source format;
//! [`TraceFile::value_tolerance`] encodes that.

use complx_obs::JsonValue;

/// One parsed trace row. Field meanings mirror the placer's per-iteration
/// record: `lambda` is the multiplier used for the primal step, `phi_lower`
/// / `phi_upper` the interconnect cost of the lower-/upper-bound iterates,
/// `pi` the L1 feasibility distance (Formula 3), `lagrangian` the merit
/// `Φ + λ·Π` (Formula 4), `overflow` the bin-overflow ratio, and `bins`
/// the density-grid resolution of the iteration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TraceRecord {
    /// Iteration index (0 is the unconstrained bootstrap).
    pub iteration: u64,
    /// Multiplier λ.
    pub lambda: f64,
    /// `Φ(x, y)` — lower-bound interconnect cost.
    pub phi_lower: f64,
    /// `Φ(x°, y°)` — upper-bound (feasible) interconnect cost.
    pub phi_upper: f64,
    /// `Π` — feasibility distance.
    pub pi: f64,
    /// `L = Φ + λ·Π`.
    pub lagrangian: f64,
    /// Bin-overflow ratio.
    pub overflow: f64,
    /// Density-grid resolution.
    pub bins: u64,
}

impl TraceRecord {
    /// The duality gap `Δ_Φ = Φ(x°,y°) − Φ(x,y)` (Formula 8).
    pub fn duality_gap(&self) -> f64 {
        self.phi_upper - self.phi_lower
    }
}

/// A parsed trace plus its source fidelity.
#[derive(Debug, Clone, PartialEq)]
pub struct TraceFile {
    /// Rows in file order.
    pub records: Vec<TraceRecord>,
    /// Whether the source was CSV (true) or JSON (false).
    pub from_csv: bool,
}

impl TraceFile {
    /// Relative tolerance appropriate for arithmetic cross-checks on the
    /// values in this trace: CSV columns were formatted with `%.6e`, so
    /// only ~1e-6 relative precision survives; JSON traces round-trip
    /// exactly.
    pub fn value_tolerance(&self) -> f64 {
        if self.from_csv {
            5e-6
        } else {
            1e-12
        }
    }
}

/// Parses a trace from text, sniffing the format: a leading `[` means the
/// JSON array form, anything else the CSV form.
pub fn parse_trace(text: &str) -> Result<TraceFile, String> {
    if text.trim_start().starts_with('[') {
        parse_json_trace(text)
    } else {
        parse_csv_trace(text)
    }
}

const CSV_HEADER: &str = "iteration,lambda,phi_lower,phi_upper,pi,lagrangian,overflow,bins";

fn parse_csv_trace(text: &str) -> Result<TraceFile, String> {
    let mut lines = text.lines();
    let header = lines.next().ok_or("empty trace file")?;
    if header.trim() != CSV_HEADER {
        return Err(format!(
            "unexpected trace header {header:?} (want {CSV_HEADER:?})"
        ));
    }
    let mut records = Vec::new();
    for (k, line) in lines.enumerate() {
        let line = line.trim();
        if line.is_empty() {
            continue;
        }
        let cols: Vec<&str> = line.split(',').collect();
        if cols.len() != 8 {
            return Err(format!(
                "trace line {}: want 8 columns, got {}",
                k + 2,
                cols.len()
            ));
        }
        let f = |i: usize| -> Result<f64, String> {
            cols[i]
                .trim()
                .parse::<f64>()
                .map_err(|e| format!("trace line {}: column {}: {e}", k + 2, i + 1))
        };
        let u = |i: usize| -> Result<u64, String> {
            cols[i]
                .trim()
                .parse::<u64>()
                .map_err(|e| format!("trace line {}: column {}: {e}", k + 2, i + 1))
        };
        records.push(TraceRecord {
            iteration: u(0)?,
            lambda: f(1)?,
            phi_lower: f(2)?,
            phi_upper: f(3)?,
            pi: f(4)?,
            lagrangian: f(5)?,
            overflow: f(6)?,
            bins: u(7)?,
        });
    }
    Ok(TraceFile {
        records,
        from_csv: true,
    })
}

fn parse_json_trace(text: &str) -> Result<TraceFile, String> {
    let v = complx_obs::parse(text).map_err(|e| format!("trace JSON: {e}"))?;
    let arr = v
        .as_array()
        .ok_or("trace JSON: top level is not an array")?;
    let mut records = Vec::with_capacity(arr.len());
    for (k, row) in arr.iter().enumerate() {
        records.push(record_from_json(row).map_err(|e| format!("trace JSON record {k}: {e}"))?);
    }
    Ok(TraceFile {
        records,
        from_csv: false,
    })
}

/// Builds a [`TraceRecord`] from a JSON object with the trace field names —
/// shared by JSON trace files and the `iterations` section of a run report.
pub fn record_from_json(row: &JsonValue) -> Result<TraceRecord, String> {
    let f = |key: &str| -> Result<f64, String> {
        row.get(key)
            .and_then(JsonValue::as_f64)
            .ok_or_else(|| format!("missing or non-numeric field {key:?}"))
    };
    let u = |key: &str| -> Result<u64, String> {
        let v = f(key)?;
        if v < 0.0 || v.fract().abs() > 0.0 {
            return Err(format!("field {key:?} is not a non-negative integer"));
        }
        Ok(v as u64)
    };
    Ok(TraceRecord {
        iteration: u("iteration")?,
        lambda: f("lambda")?,
        phi_lower: f("phi_lower")?,
        phi_upper: f("phi_upper")?,
        pi: f("pi")?,
        lagrangian: f("lagrangian")?,
        overflow: f("overflow")?,
        bins: u("bins")?,
    })
}
