//! `complx-verify` — independent verification of placement artifacts.
//!
//! ```text
//! complx-verify [<design.aux>] [options]
//!
//! options:
//!   --solution <sol.aux>    solution bundle: oracle legality audit + HPWL
//!   --trace <file>          convergence trace (CSV or JSON): invariant
//!                           checks (Formulas 4, 8, 12; Π trend)
//!   --report <file.json>    run report: cross-checked against the oracle's
//!                           own measurements and the trace file
//!   --tol <t>               legality tolerance in length/area units
//!                           (default 1e-6)
//!   --gap-slack <s>         duality-gap relative slack (default 0.02)
//!   --lambda-rule <rule>    auto | complx | monotone | none (default auto:
//!                           inferred from the report's lambda_mode, or
//!                           complx when no report is given)
//!   --allow-lambda-drops    accept decreasing λ between iterations (set
//!                           automatically when the report shows recoveries)
//!   -q, --quiet             suppress the summary (violations still print)
//! ```
//!
//! Exit codes: `0` all checks clean, `1` at least one violated invariant,
//! `2` usage / I/O / parse errors. Every violation prints one line
//! (`complx-verify: violation[<code>]: <detail>`), so CI logs show the full
//! set at once. All metrics are recomputed by `complx-oracle`, which shares
//! no code with the solver crates — see DESIGN.md §13.

use std::path::{Path, PathBuf};
use std::process::ExitCode;

use complx_netlist::bookshelf;
use complx_obs::RunReport;
use complx_oracle::invariants::{check_solution, check_trace, LambdaRule, TraceChecks, Violation};
use complx_oracle::trace::{parse_trace, record_from_json, TraceFile, TraceRecord};

struct Options {
    design: Option<PathBuf>,
    solution: Option<PathBuf>,
    trace: Option<PathBuf>,
    report: Option<PathBuf>,
    tol: f64,
    gap_slack: f64,
    lambda_rule: Option<LambdaRule>,
    allow_lambda_drops: bool,
    quiet: bool,
}

fn usage() -> &'static str {
    "usage: complx-verify [<design.aux>] [--solution SOL.aux] [--trace FILE]\n\
     [--report FILE.json] [--tol T] [--gap-slack S]\n\
     [--lambda-rule auto|complx|monotone|none] [--allow-lambda-drops] [-q]"
}

fn parse_args() -> Result<Options, String> {
    let mut opts = Options {
        design: None,
        solution: None,
        trace: None,
        report: None,
        tol: 1e-6,
        gap_slack: 0.02,
        lambda_rule: None,
        allow_lambda_drops: false,
        quiet: false,
    };
    let mut args = std::env::args().skip(1);
    let mut positional = Vec::new();
    while let Some(a) = args.next() {
        let mut value = |flag: &str| args.next().ok_or(format!("missing value for {flag}"));
        match a.as_str() {
            "--solution" => opts.solution = Some(PathBuf::from(value("--solution")?)),
            "--trace" => opts.trace = Some(PathBuf::from(value("--trace")?)),
            "--report" => opts.report = Some(PathBuf::from(value("--report")?)),
            "--tol" => opts.tol = value("--tol")?.parse().map_err(|e| format!("--tol: {e}"))?,
            "--gap-slack" => {
                opts.gap_slack = value("--gap-slack")?
                    .parse()
                    .map_err(|e| format!("--gap-slack: {e}"))?
            }
            "--lambda-rule" => {
                opts.lambda_rule = match value("--lambda-rule")?.as_str() {
                    "auto" => None,
                    "complx" => Some(LambdaRule::Complx),
                    "monotone" => Some(LambdaRule::Monotone),
                    "none" => Some(LambdaRule::Unchecked),
                    other => return Err(format!("unknown --lambda-rule {other:?}")),
                }
            }
            "--allow-lambda-drops" => opts.allow_lambda_drops = true,
            "-q" | "--quiet" => opts.quiet = true,
            "-h" | "--help" => return Err(String::new()),
            other if other.starts_with('-') => return Err(format!("unknown option {other:?}")),
            other => positional.push(PathBuf::from(other)),
        }
    }
    if positional.len() > 1 {
        return Err("at most one positional design.aux is accepted".into());
    }
    opts.design = positional.pop();
    if opts.design.is_none()
        && opts.solution.is_none()
        && opts.trace.is_none()
        && opts.report.is_none()
    {
        return Err("nothing to verify: give a design, --solution, --trace or --report".into());
    }
    Ok(opts)
}

fn fail(message: impl std::fmt::Display) -> ExitCode {
    eprintln!("complx-verify: error: {message}");
    ExitCode::from(2)
}

fn read_text(path: &Path) -> Result<String, String> {
    std::fs::read_to_string(path).map_err(|e| format!("{}: {e}", path.display()))
}

fn rel_close(a: f64, b: f64, rel: f64, abs: f64) -> bool {
    (a - b).abs() <= abs + rel * a.abs().max(b.abs())
}

/// Numeric fields of the run report's `metrics` section that the oracle
/// cross-checks.
struct ReportMetrics {
    hpwl: Option<f64>,
    overflow_percent: Option<f64>,
    iterations: Option<f64>,
    recoveries: Option<f64>,
    lambda_mode: Option<String>,
}

fn report_metrics(report: &RunReport) -> ReportMetrics {
    let m = |key: &str| report.metrics.get(key).and_then(|v| v.as_f64());
    ReportMetrics {
        hpwl: m("hpwl"),
        overflow_percent: m("overflow_percent"),
        iterations: m("iterations"),
        recoveries: m("recoveries"),
        lambda_mode: report
            .config
            .get("lambda_mode")
            .and_then(|v| v.as_str())
            .map(str::to_owned),
    }
}

fn main() -> ExitCode {
    let opts = match parse_args() {
        Ok(o) => o,
        Err(e) if e.is_empty() => {
            println!("{}", usage());
            return ExitCode::SUCCESS;
        }
        Err(e) => {
            eprintln!("complx-verify: error: {e}");
            eprintln!("{}", usage());
            return ExitCode::from(2);
        }
    };

    let mut violations: Vec<Violation> = Vec::new();
    let mut summary: Vec<String> = Vec::new();

    // Design (geometry reference, optional).
    let design = match &opts.design {
        Some(path) => match bookshelf::read_aux(path) {
            Ok(b) => Some(b.design),
            Err(e) => return fail(format_args!("{}: {e}", path.display())),
        },
        None => None,
    };

    // Solution bundle: audit with the oracle's own legality sweep and HPWL.
    let mut oracle_hpwl = None;
    let mut oracle_overflow = None;
    if let Some(path) = &opts.solution {
        let bundle = match bookshelf::read_aux(path) {
            Ok(b) => b,
            Err(e) => return fail(format_args!("{}: {e}", path.display())),
        };
        if let Some(d) = &design {
            for (what, got, want) in [
                ("cells", bundle.design.num_cells(), d.num_cells()),
                ("nets", bundle.design.num_nets(), d.num_nets()),
                ("pins", bundle.design.num_pins(), d.num_pins()),
            ] {
                if got != want {
                    violations.push(Violation {
                        code: "solution-shape",
                        message: format!("solution has {got} {what} but the design has {want}"),
                    });
                }
            }
        }
        let (audit, mut sol_violations) =
            check_solution(&bundle.design, &bundle.placement, opts.tol);
        violations.append(&mut sol_violations);
        let wl = complx_oracle::hpwl(&bundle.design, &bundle.placement);
        let ovf = complx_oracle::overflow_percent(&bundle.design, &bundle.placement);
        oracle_hpwl = Some(wl);
        oracle_overflow = Some(ovf);
        summary.push(format!(
            "solution: {} movable cells, oracle hpwl {wl:.6e}, overflow {ovf:.3}%, \
             overlap {:.3e}, worst core breach {:.3e}, worst row misalign {:.3e}",
            audit.movable_cells, audit.overlap_area, audit.max_core_breach, audit.max_row_misalign
        ));
    }

    // Run report: parse, then cross-check against oracle measurements.
    let mut report_trace: Option<Vec<TraceRecord>> = None;
    let mut metrics = None;
    if let Some(path) = &opts.report {
        let text = match read_text(path) {
            Ok(t) => t,
            Err(e) => return fail(e),
        };
        let json = match complx_obs::parse(&text) {
            Ok(v) => v,
            Err(e) => return fail(format_args!("{}: {e}", path.display())),
        };
        let report = match RunReport::from_json(&json) {
            Ok(r) => r,
            Err(e) => return fail(format_args!("{}: {e}", path.display())),
        };
        let m = report_metrics(&report);
        if let (Some(reported), Some(measured)) = (m.hpwl, oracle_hpwl) {
            // The report's HPWL was measured in-memory; the solution came
            // back through a Bookshelf round-trip (center ↔ corner), so a
            // few ULPs of drift are legitimate.
            if !rel_close(reported, measured, 1e-9, 0.0) {
                violations.push(Violation {
                    code: "report-hpwl",
                    message: format!(
                        "report hpwl {reported} disagrees with oracle hpwl {measured}"
                    ),
                });
            }
        }
        if let (Some(reported), Some(measured)) = (m.overflow_percent, oracle_overflow) {
            if !rel_close(reported, measured, 1e-6, 1e-6) {
                violations.push(Violation {
                    code: "report-overflow",
                    message: format!(
                        "report overflow {reported}% disagrees with oracle {measured}%"
                    ),
                });
            }
        }
        let rows: Vec<TraceRecord> = match report
            .iterations
            .as_array()
            .unwrap_or(&[])
            .iter()
            .map(record_from_json)
            .collect()
        {
            Ok(rows) => rows,
            Err(e) => return fail(format_args!("{}: iterations: {e}", path.display())),
        };
        if let (Some(reported), Some(last)) = (m.iterations, rows.last()) {
            if reported as u64 != last.iteration {
                violations.push(Violation {
                    code: "report-iterations",
                    message: format!(
                        "report claims {} iterations but its trace ends at iteration {}",
                        reported, last.iteration
                    ),
                });
            }
        }
        summary.push(format!(
            "report: stop_reason {:?}, {} trace rows, lambda_mode {}",
            report.stop_reason,
            rows.len(),
            m.lambda_mode.as_deref().unwrap_or("unknown")
        ));
        report_trace = Some(rows);
        metrics = Some(m);
    }

    // Resolve the λ rule and drop policy: explicit flags win, then the
    // report's config/recovery count, then the ComPLx default.
    let inferred_rule = metrics
        .as_ref()
        .and_then(|m| m.lambda_mode.as_deref().map(LambdaRule::from_lambda_mode));
    let lambda_rule = opts
        .lambda_rule
        .or(inferred_rule)
        .unwrap_or(LambdaRule::Complx);
    let recovered = metrics
        .as_ref()
        .and_then(|m| m.recoveries)
        .is_some_and(|r| r > 0.0);
    let allow_drops = opts.allow_lambda_drops || recovered;

    // Trace file: parse and run the invariant battery.
    if let Some(path) = &opts.trace {
        let text = match read_text(path) {
            Ok(t) => t,
            Err(e) => return fail(e),
        };
        let trace: TraceFile = match parse_trace(&text) {
            Ok(t) => t,
            Err(e) => return fail(format_args!("{}: {e}", path.display())),
        };
        let checks = TraceChecks {
            lambda_rule,
            allow_lambda_drops: allow_drops,
            gap_slack: opts.gap_slack,
            value_rel_tol: trace.value_tolerance(),
            ..TraceChecks::default()
        };
        violations.extend(check_trace(&trace.records, &checks));
        summary.push(format!(
            "trace: {} rows ({}), rule {:?}{}",
            trace.records.len(),
            if trace.from_csv { "csv" } else { "json" },
            lambda_rule,
            if allow_drops {
                ", λ drops allowed"
            } else {
                ""
            }
        ));

        // Cross-check the trace file against the report's embedded copy.
        if let Some(rows) = &report_trace {
            if rows.len() != trace.records.len() {
                violations.push(Violation {
                    code: "report-trace",
                    message: format!(
                        "trace file has {} rows but the report has {}",
                        trace.records.len(),
                        rows.len()
                    ),
                });
            }
            let tol = trace.value_tolerance();
            for (a, b) in trace.records.iter().zip(rows) {
                let fields = [
                    ("lambda", a.lambda, b.lambda),
                    ("phi_lower", a.phi_lower, b.phi_lower),
                    ("phi_upper", a.phi_upper, b.phi_upper),
                    ("pi", a.pi, b.pi),
                    ("lagrangian", a.lagrangian, b.lagrangian),
                    ("overflow", a.overflow, b.overflow),
                ];
                let bad: Vec<&str> = fields
                    .iter()
                    .filter(|(_, x, y)| !rel_close(*x, *y, tol, 0.0))
                    .map(|(name, _, _)| *name)
                    .collect();
                if a.iteration != b.iteration || !bad.is_empty() {
                    violations.push(Violation {
                        code: "report-trace",
                        message: format!(
                            "iteration {} disagrees between trace file and report ({})",
                            a.iteration,
                            if bad.is_empty() {
                                "index".to_owned()
                            } else {
                                bad.join(", ")
                            }
                        ),
                    });
                }
            }
        }
    } else if let Some(rows) = &report_trace {
        // No separate trace file: still check the report's embedded trace.
        let checks = TraceChecks {
            lambda_rule,
            allow_lambda_drops: allow_drops,
            gap_slack: opts.gap_slack,
            value_rel_tol: 1e-12,
            ..TraceChecks::default()
        };
        violations.extend(check_trace(rows, &checks));
    }

    for v in &violations {
        println!("complx-verify: {v}");
    }
    if !opts.quiet {
        for line in &summary {
            println!("complx-verify: {line}");
        }
        println!(
            "complx-verify: {} violation{}",
            violations.len(),
            if violations.len() == 1 { "" } else { "s" }
        );
    }
    if violations.is_empty() {
        ExitCode::SUCCESS
    } else {
        ExitCode::from(1)
    }
}
