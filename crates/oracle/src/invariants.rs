//! Invariant checks over solutions, traces and run reports.
//!
//! Every check returns [`Violation`]s instead of panicking, so callers (the
//! `complx-verify` CLI, the golden harness, tests) can collect and present
//! all failures at once. The trace checks encode the paper's convergence
//! contract:
//!
//! * **Duality gap** (Formula 8): `Φ(x,y) ≤ Φ(x°,y°)` up to a slack — the
//!   lower-bound iterate can never cost more than the feasible one.
//! * **Lagrangian consistency** (Formula 4): the recorded merit must equal
//!   `Φ + λ·Π` recomputed from the same row.
//! * **λ schedule** (Formula 12): `λ_{k+1} ≤ min(2λ_k, λ_k + (Π_{k+1}/Π_k)·h)`.
//!   The `h` term is config-dependent, but the `2λ_k` cap binds
//!   unconditionally for the ComPLx schedule, and λ must grow monotonically
//!   for any schedule unless the run recovered from divergence (recovery
//!   deliberately halves λ).
//! * **Π trend** (Formula 3): the feasibility distance must not end
//!   materially above where the constrained phase started.
//! * **Anchor weights**: `w_i = λ / (|x_i − x_i°| + ε)` with
//!   `ε = 1.5 · row height` — exposed as a reference formula for
//!   differential tests against the solver's anchor builder.

use complx_netlist::{Design, Placement};

use crate::overlap::{audit_with_tol, PlacementAudit};
use crate::trace::TraceRecord;

/// One violated invariant: a stable machine-readable code plus a human
/// explanation with the offending values.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Violation {
    /// Stable identifier, e.g. `lambda-growth` or `solution-overlap`.
    pub code: &'static str,
    /// Human-readable detail.
    pub message: String,
}

impl Violation {
    fn new(code: &'static str, message: String) -> Self {
        Self { code, message }
    }
}

impl std::fmt::Display for Violation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "violation[{}]: {}", self.code, self.message)
    }
}

/// Which λ-schedule law a trace is held to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LambdaRule {
    /// ComPLx Formula 12: monotone growth capped at doubling per step.
    Complx,
    /// Monotone growth only (SimPL-style arithmetic/geometric schedules
    /// may legally exceed the doubling cap).
    Monotone,
    /// No schedule law enforced (unknown configuration).
    Unchecked,
}

impl LambdaRule {
    /// Infers the rule from a report's `config.lambda_mode` string
    /// (`"complx(h=…)"`, `"arithmetic(step=…)"`, `"geometric(ratio=…)"`).
    pub fn from_lambda_mode(mode: &str) -> Self {
        if mode.starts_with("complx") {
            Self::Complx
        } else if mode.starts_with("arithmetic") || mode.starts_with("geometric") {
            Self::Monotone
        } else {
            Self::Unchecked
        }
    }
}

/// Tolerances and mode switches for [`check_trace`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TraceChecks {
    /// λ law to enforce.
    pub lambda_rule: LambdaRule,
    /// Allow λ to decrease between records (set when the run reports
    /// divergence recoveries, which halve λ and roll back).
    pub allow_lambda_drops: bool,
    /// Relative slack on the duality-gap sign: flag when
    /// `Φ_lower > Φ_upper · (1 + gap_slack)`.
    pub gap_slack: f64,
    /// Relative tolerance for arithmetic cross-checks (Lagrangian
    /// recomputation, λ-cap comparisons). Must be at least the trace
    /// file's format precision.
    pub value_rel_tol: f64,
    /// Flag when the minimum Π over the trailing quarter of the trace
    /// exceeds `pi_trend_factor ×` the first constrained Π.
    pub pi_trend_factor: f64,
}

impl Default for TraceChecks {
    fn default() -> Self {
        Self {
            lambda_rule: LambdaRule::Complx,
            allow_lambda_drops: false,
            gap_slack: 0.02,
            value_rel_tol: 5e-6,
            pi_trend_factor: 1.05,
        }
    }
}

fn rel_close(a: f64, b: f64, rel: f64) -> bool {
    (a - b).abs() <= rel * a.abs().max(b.abs()).max(1.0)
}

/// Checks a convergence trace against the paper's invariants. Returns every
/// violation found (empty = clean).
pub fn check_trace(records: &[TraceRecord], checks: &TraceChecks) -> Vec<Violation> {
    let mut out = Vec::new();

    // Structural sanity: finite values, non-negative λ/Π/overflow, strictly
    // increasing iteration indices (recovered iterations may skip indices).
    for r in records {
        let vals = [
            r.lambda,
            r.phi_lower,
            r.phi_upper,
            r.pi,
            r.lagrangian,
            r.overflow,
        ];
        if vals.iter().any(|v| !v.is_finite()) {
            out.push(Violation::new(
                "trace-finite",
                format!("iteration {}: non-finite value in {vals:?}", r.iteration),
            ));
        }
        if r.lambda < 0.0 || r.pi < 0.0 || r.overflow < 0.0 || r.phi_lower < 0.0 {
            out.push(Violation::new(
                "trace-negative",
                format!(
                    "iteration {}: negative λ/Π/overflow/Φ (λ={}, Π={}, ovf={}, Φ={})",
                    r.iteration, r.lambda, r.pi, r.overflow, r.phi_lower
                ),
            ));
        }
    }
    for w in records.windows(2) {
        if w[1].iteration <= w[0].iteration {
            out.push(Violation::new(
                "trace-order",
                format!(
                    "iteration index not increasing: {} then {}",
                    w[0].iteration, w[1].iteration
                ),
            ));
        }
    }

    // Duality gap sign (Formula 8): the lower bound must stay below the
    // feasible cost, within slack.
    for r in records {
        if r.phi_lower > r.phi_upper * (1.0 + checks.gap_slack) {
            out.push(Violation::new(
                "duality-gap",
                format!(
                    "iteration {}: Φ_lower = {} exceeds Φ_upper = {} beyond {:.1}% slack \
                     (gap Δ_Φ must be ≥ 0, Formula 8)",
                    r.iteration,
                    r.phi_lower,
                    r.phi_upper,
                    100.0 * checks.gap_slack
                ),
            ));
        }
    }

    // Lagrangian consistency (Formula 4): L = Φ + λ·Π from the same row.
    for r in records {
        let expect = r.phi_lower + r.lambda * r.pi;
        if !rel_close(r.lagrangian, expect, checks.value_rel_tol) {
            out.push(Violation::new(
                "lagrangian",
                format!(
                    "iteration {}: recorded L = {} but Φ + λ·Π = {} (Formula 4)",
                    r.iteration, r.lagrangian, expect
                ),
            ));
        }
    }

    // λ schedule (Formula 12). The bound is per successful step; recovered
    // runs legitimately halve λ, so drops are only flagged when the caller
    // says the run had no recoveries.
    let constrained: Vec<&TraceRecord> = records.iter().filter(|r| r.lambda > 0.0).collect();
    for w in constrained.windows(2) {
        let (a, b) = (w[0], w[1]);
        if !checks.allow_lambda_drops && b.lambda < a.lambda * (1.0 - checks.value_rel_tol) {
            out.push(Violation::new(
                "lambda-monotone",
                format!(
                    "iteration {}: λ fell from {} to {} in a run reporting no recoveries",
                    b.iteration, a.lambda, b.lambda
                ),
            ));
        }
        if checks.lambda_rule == LambdaRule::Complx
            && b.lambda > 2.0 * a.lambda * (1.0 + checks.value_rel_tol)
        {
            out.push(Violation::new(
                "lambda-growth",
                format!(
                    "iteration {}: λ grew from {} to {}, above the 2λ cap of \
                     λ_k+1 ≤ min(2λ_k, λ_k + (Π_k+1/Π_k)·h) (Formula 12)",
                    b.iteration, a.lambda, b.lambda
                ),
            ));
        }
    }

    // Π trend (Formula 3): over a long enough constrained phase the
    // feasibility distance must come down, not up.
    if constrained.len() >= 5 {
        let first_pi = constrained[0].pi;
        let tail = &constrained[constrained.len() - constrained.len() / 4 - 1..];
        let tail_min = tail.iter().map(|r| r.pi).fold(f64::INFINITY, f64::min);
        if first_pi > 0.0 && tail_min > first_pi * checks.pi_trend_factor {
            out.push(Violation::new(
                "pi-trend",
                format!(
                    "Π never improved: started at {} and the best trailing value is {} \
                     (feasibility distance must trend to 0)",
                    first_pi, tail_min
                ),
            ));
        }
    }

    out
}

/// Audits a solution placement and converts out-of-tolerance findings into
/// violations. Returns the audit alongside so callers can print a summary.
pub fn check_solution(
    design: &Design,
    placement: &Placement,
    tol: f64,
) -> (PlacementAudit, Vec<Violation>) {
    let audit = audit_with_tol(design, placement, tol);
    let mut out = Vec::new();
    if audit.nonfinite_cells > 0 {
        out.push(Violation::new(
            "solution-finite",
            format!(
                "{} cells have non-finite coordinates",
                audit.nonfinite_cells
            ),
        ));
    }
    if audit.overlap_area > tol {
        out.push(Violation::new(
            "solution-overlap",
            format!(
                "total overlap area {} exceeds tolerance {} ({} pairs, worst {})",
                audit.overlap_area, tol, audit.overlap_pairs, audit.worst_overlap
            ),
        ));
    }
    if audit.max_core_breach > tol {
        out.push(Violation::new(
            "solution-core",
            format!(
                "{} cells breach the core, worst by {} length units (tol {})",
                audit.out_of_core, audit.max_core_breach, tol
            ),
        ));
    }
    if audit.max_row_misalign > tol {
        out.push(Violation::new(
            "solution-row",
            format!(
                "{} cells off row, worst misalignment {} length units (tol {})",
                audit.off_row_cells, audit.max_row_misalign, tol
            ),
        ));
    }
    (audit, out)
}

/// Reference anchor ε: 1.5 × row height (paper §4's pseudo-pin stiffness
/// floor).
pub fn anchor_epsilon(row_height: f64) -> f64 {
    1.5 * row_height
}

/// Reference anchor weight `w_i = λ / (|x_i − x_i°| + ε)` — the pull of the
/// feasible iterate on the lower-bound iterate. The solver's anchor builder
/// is checked against this formula in the differential suite.
pub fn anchor_weight(lambda: f64, current: f64, target: f64, epsilon: f64) -> f64 {
    lambda / ((current - target).abs() + epsilon)
}
