//! Independent verification oracle for the ComPLx reproduction.
//!
//! Everything in this crate re-derives ground truth **independently of the
//! solver crates**: it depends only on `complx-netlist` (the immutable data
//! model and Bookshelf I/O) and `complx-obs` (the hand-rolled JSON parser)
//! — never on `wirelength`, `spread`, `legalize`, `sparse` or `core`. A
//! disagreement between the oracle and the solver on any quantity is a bug
//! in one of them, which is the point: a defect in the hot path can no
//! longer silently corrupt both the answer and the metric that claims the
//! answer is correct.
//!
//! The pieces:
//!
//! * [`hpwl`] — naive O(pins) HPWL (paper Formula 1) with compensated
//!   summation; no B2B structures.
//! * [`overlap`] — row-band plane-sweep legality audit, algorithmically
//!   disjoint from `legalize::verify`'s bucket grid.
//! * [`density`] — first-principles bin overflow and ISPD-2006 scaled
//!   HPWL.
//! * [`trace`] / [`invariants`] — convergence-trace parsing and checks of
//!   the paper's Formulas 4, 8 and 12 plus the Π trend and anchor-weight
//!   formula.
//! * [`golden`] — committed quality snapshots with tolerance bands.
//!
//! The `complx-verify` binary packages all of it as a CLI that exits
//! nonzero when a solution, trace or report violates an invariant; see
//! DESIGN.md §13.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod density;
pub mod golden;
pub mod hpwl;
pub mod invariants;
pub mod kahan;
pub mod overlap;
pub mod trace;

pub use density::{density_audit, overflow_percent, scaled_hpwl, DensityAudit, METRIC_BINS};
pub use golden::{GoldenSnapshot, GoldenTolerances};
pub use hpwl::{hpwl, net_span, weighted_hpwl};
pub use invariants::{
    anchor_epsilon, anchor_weight, check_solution, check_trace, LambdaRule, TraceChecks, Violation,
};
pub use kahan::{kahan_sum, KahanSum};
pub use overlap::{audit, audit_with_tol, PlacementAudit};
pub use trace::{parse_trace, TraceFile, TraceRecord};
