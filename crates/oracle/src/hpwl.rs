//! Ground-truth HPWL, recomputed naively from raw pin positions.
//!
//! This is a deliberate re-derivation of paper Formula 1 — `Σ_e w_e
//! ([max x − min x] + [max y − min y])` over pin locations — sharing no
//! code with `complx_netlist::hpwl` beyond the immutable data model: a
//! flat O(pins) scan, min/max folded by explicit comparison (not
//! `f64::min`/`max` chains), and per-net spans accumulated with
//! compensated summation.

use complx_netlist::{Design, NetId, Placement};

use crate::kahan::KahanSum;

/// The half-perimeter span of one net: `(max x − min x) + (max y − min y)`
/// over its pin locations (cell center + pin offset).
///
/// Returns 0.0 for a net whose pins all coincide (e.g. a degenerate net
/// with both pins on the same cell at the same offset).
pub fn net_span(design: &Design, placement: &Placement, net: NetId) -> f64 {
    let mut first = true;
    let (mut lx, mut ly, mut hx, mut hy) = (0.0f64, 0.0f64, 0.0f64, 0.0f64);
    for pin in design.net_pins(net) {
        let c = placement.position(pin.cell);
        let px = c.x + pin.dx;
        let py = c.y + pin.dy;
        if first {
            (lx, ly, hx, hy) = (px, py, px, py);
            first = false;
        } else {
            if px < lx {
                lx = px;
            }
            if px > hx {
                hx = px;
            }
            if py < ly {
                ly = py;
            }
            if py > hy {
                hy = py;
            }
        }
    }
    if first {
        0.0
    } else {
        (hx - lx) + (hy - ly)
    }
}

/// Total unweighted HPWL with compensated summation.
pub fn hpwl(design: &Design, placement: &Placement) -> f64 {
    let mut acc = KahanSum::new();
    for net in design.net_ids() {
        acc.add(net_span(design, placement, net));
    }
    acc.value()
}

/// Total weighted HPWL (paper Formula 1) with compensated summation.
pub fn weighted_hpwl(design: &Design, placement: &Placement) -> f64 {
    let mut acc = KahanSum::new();
    for net in design.net_ids() {
        acc.add(design.net(net).weight() * net_span(design, placement, net));
    }
    acc.value()
}
