//! Independent overlap / legality audit.
//!
//! Re-derives legality from first principles with an algorithm deliberately
//! different from `complx_legalize::verify` (which hashes rectangles into a
//! square bucket grid and dedupes pairs through a `BTreeSet`): here cells
//! are binned into horizontal **row bands**, each band is sorted by left
//! edge, and a plane sweep enumerates candidate pairs. Each pair is charged
//! exactly once, in the band containing the bottom edge of the pair's
//! vertical overlap interval, so no dedup set is needed. A disagreement
//! between the two implementations on any placement is a bug in one of
//! them.

use complx_netlist::{CellKind, Design, Placement, Rect};

use crate::kahan::KahanSum;

/// Default counting tolerance (length units) for the informational
/// `out_of_core` / `off_row_cells` counters, matching the historical
/// behavior of the legalizer's report.
pub const DEFAULT_COUNT_TOL: f64 = 1e-6;

/// First-principles legality diagnostics for a placement.
///
/// The `max_*` fields are exact worst-case deviations in length units and
/// drive [`PlacementAudit::is_legal`]; the `usize` counters are
/// informational and depend on the counting tolerance passed to
/// [`audit_with_tol`].
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct PlacementAudit {
    /// Number of movable cells inspected.
    pub movable_cells: usize,
    /// Total pairwise overlap area (movable–movable and movable–fixed).
    pub overlap_area: f64,
    /// Number of overlapping pairs with positive area.
    pub overlap_pairs: usize,
    /// Largest single-pair overlap area.
    pub worst_overlap: f64,
    /// Movable cells breaching the core boundary by more than the counting
    /// tolerance.
    pub out_of_core: usize,
    /// Worst core breach distance (0 when all cells are inside).
    pub max_core_breach: f64,
    /// Standard cells whose bottom edge misses every row boundary by more
    /// than the counting tolerance.
    pub off_row_cells: usize,
    /// Worst row misalignment distance in length units (0 when aligned).
    pub max_row_misalign: f64,
    /// Movable cells with a non-finite coordinate; these are excluded from
    /// the geometric sums and make the placement unconditionally illegal.
    pub nonfinite_cells: usize,
}

impl PlacementAudit {
    /// Whether the audit indicates a legal placement under tolerance `tol`:
    /// overlap within `tol` area units, and worst core breach / row
    /// misalignment within `tol` length units. Unlike a count-based check,
    /// this applies the same tolerance to every violation class.
    pub fn is_legal(&self, tol: f64) -> bool {
        self.nonfinite_cells == 0
            && self.overlap_area <= tol
            && self.max_core_breach <= tol
            && self.max_row_misalign <= tol
    }
}

/// Audits `placement` with the default counting tolerance
/// ([`DEFAULT_COUNT_TOL`]).
pub fn audit(design: &Design, placement: &Placement) -> PlacementAudit {
    audit_with_tol(design, placement, DEFAULT_COUNT_TOL)
}

/// Audits `placement`, counting a cell as out-of-core / off-row only when
/// its deviation exceeds `count_tol` length units. The `max_*` fields are
/// exact regardless of `count_tol`.
pub fn audit_with_tol(design: &Design, placement: &Placement, count_tol: f64) -> PlacementAudit {
    let core = design.core();
    let rh = design.row_height();
    let mut report = PlacementAudit::default();

    // (rect, movable) for every placeable body; terminals are dimensionless.
    let mut rects: Vec<(Rect, bool)> = Vec::new();
    for id in design.cell_ids() {
        let cell = design.cell(id);
        match cell.kind() {
            CellKind::Movable | CellKind::MovableMacro => {
                report.movable_cells += 1;
                // Check the raw coordinates before building a rect: the
                // geometry type rejects non-finite bounds by panicking,
                // and the audit must instead report the defect.
                let pos = placement.position(id);
                if !(pos.x.is_finite() && pos.y.is_finite()) {
                    report.nonfinite_cells += 1;
                    continue;
                }
                let r = placement.cell_rect(id, cell.width(), cell.height());
                // Core containment, measured as a breach distance.
                let breach = (core.lx - r.lx)
                    .max(r.hx - core.hx)
                    .max(core.ly - r.ly)
                    .max(r.hy - core.hy)
                    .max(0.0);
                if breach > count_tol {
                    report.out_of_core += 1;
                }
                if breach > report.max_core_breach {
                    report.max_core_breach = breach;
                }
                // Row alignment (standard cells only): distance from the
                // bottom edge to the nearest row boundary, in length units.
                if cell.kind() == CellKind::Movable && rh > 0.0 {
                    let offset = (r.ly - core.ly) / rh;
                    let misalign = (offset - offset.round()).abs() * rh;
                    if misalign > count_tol {
                        report.off_row_cells += 1;
                    }
                    if misalign > report.max_row_misalign {
                        report.max_row_misalign = misalign;
                    }
                }
                rects.push((r, true));
            }
            CellKind::Fixed => {
                let r = design
                    .fixed_positions()
                    .cell_rect(id, cell.width(), cell.height());
                rects.push((r, false));
            }
            CellKind::Terminal => {}
        }
    }

    // Row-band plane sweep for pairwise overlap.
    let band_h = if rh > 0.0 { rh } else { 1.0 };
    let y0 = rects.iter().map(|(r, _)| r.ly).fold(core.ly, f64::min);
    let band_of = |y: f64| -> i64 { ((y - y0) / band_h).floor() as i64 };
    let max_band = rects
        .iter()
        .map(|(r, _)| band_of(r.hy))
        .fold(0i64, i64::max);

    // Membership lists per band: a rect appears in every band its vertical
    // extent touches.
    let nbands = (max_band + 1).max(1) as usize;
    let mut bands: Vec<Vec<u32>> = vec![Vec::new(); nbands];
    for (k, (r, _)) in rects.iter().enumerate() {
        let b0 = band_of(r.ly).clamp(0, max_band) as usize;
        let b1 = band_of(r.hy).clamp(0, max_band) as usize;
        for band in bands.iter_mut().take(b1 + 1).skip(b0) {
            band.push(k as u32);
        }
    }

    let mut area = KahanSum::new();
    for (bi, band) in bands.iter().enumerate() {
        // Sort by left edge (ties by rect index for determinism).
        let mut order: Vec<u32> = band.clone();
        order.sort_by(|&a, &b| {
            rects[a as usize]
                .0
                .lx
                .total_cmp(&rects[b as usize].0.lx)
                .then(a.cmp(&b))
        });
        for (i, &a) in order.iter().enumerate() {
            let (ra, ma) = rects[a as usize];
            for &b in &order[i + 1..] {
                let (rb, mb) = rects[b as usize];
                if rb.lx >= ra.hx {
                    break; // sorted by lx: nothing further can overlap a
                }
                if !ma && !mb {
                    continue; // fixed–fixed overlap is the design's business
                }
                // Charge the pair once: in the band holding the bottom of
                // the pair's vertical overlap interval.
                let oly = ra.ly.max(rb.ly);
                let ohy = ra.hy.min(rb.hy);
                if ohy <= oly || band_of(oly).clamp(0, max_band) as usize != bi {
                    continue;
                }
                let w = ra.hx.min(rb.hx) - ra.lx.max(rb.lx);
                if w <= 0.0 {
                    continue;
                }
                let pair_area = w * (ohy - oly);
                area.add(pair_area);
                report.overlap_pairs += 1;
                if pair_area > report.worst_overlap {
                    report.worst_overlap = pair_area;
                }
            }
        }
    }
    report.overlap_area = area.value();
    report
}
