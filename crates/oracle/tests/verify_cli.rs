//! End-to-end tests of the `complx-verify` binary: fixture traces that
//! violate the paper's invariants must be rejected with exit code 1 and a
//! diagnostic naming the violated rule; artifacts from a real placer run
//! must pass clean.

use std::path::{Path, PathBuf};
use std::process::Command;

use complx_netlist::{bookshelf, generator::GeneratorConfig, Point};
use complx_place::{run_report, ComplxPlacer, PlacerConfig};

fn verify_bin() -> &'static str {
    env!("CARGO_BIN_EXE_complx-verify")
}

/// A per-test scratch directory under the target-adjacent temp dir.
fn scratch(name: &str) -> PathBuf {
    let dir =
        std::env::temp_dir().join(format!("complx-verify-test-{}-{name}", std::process::id()));
    if dir.exists() {
        std::fs::remove_dir_all(&dir).unwrap();
    }
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

struct RunResult {
    code: i32,
    stdout: String,
    stderr: String,
}

fn run(args: &[&str]) -> RunResult {
    let out = Command::new(verify_bin())
        .args(args)
        .output()
        .expect("spawn complx-verify");
    RunResult {
        code: out.status.code().unwrap_or(-1),
        stdout: String::from_utf8_lossy(&out.stdout).into_owned(),
        stderr: String::from_utf8_lossy(&out.stderr).into_owned(),
    }
}

const HEADER: &str = "iteration,lambda,phi_lower,phi_upper,pi,lagrangian,overflow,bins";

/// Formats one trace row with the Lagrangian recomputed exactly so only the
/// deliberately planted defect trips the checker.
fn row(iter: u64, lambda: f64, phi_lower: f64, phi_upper: f64, pi: f64, ovf: f64) -> String {
    format!(
        "{iter},{lambda:.10e},{phi_lower:.10e},{phi_upper:.10e},{pi:.10e},{:.10e},{ovf:.10e},16",
        phi_lower + lambda * pi
    )
}

fn write_trace(dir: &Path, name: &str, rows: &[String]) -> PathBuf {
    let path = dir.join(name);
    let mut text = String::from(HEADER);
    text.push('\n');
    for r in rows {
        text.push_str(r);
        text.push('\n');
    }
    std::fs::write(&path, text).unwrap();
    path
}

#[test]
fn formula12_lambda_jump_rejected() {
    let dir = scratch("f12");
    // λ jumps 1.0 → 3.0 between consecutive iterations: beyond the 2λ_k
    // cap of Formula 12. Everything else is consistent.
    let trace = write_trace(
        &dir,
        "bad_lambda.csv",
        &[
            row(1, 1.0, 100.0, 150.0, 10.0, 0.5),
            row(2, 3.0, 105.0, 148.0, 8.0, 0.4),
        ],
    );
    let res = run(&["--trace", trace.to_str().unwrap()]);
    assert_eq!(
        res.code, 1,
        "stdout: {}\nstderr: {}",
        res.stdout, res.stderr
    );
    assert!(
        res.stdout.contains("violation[lambda-growth]"),
        "missing lambda-growth diagnostic: {}",
        res.stdout
    );
    assert!(res.stdout.contains("Formula 12"), "{}", res.stdout);
}

#[test]
fn sign_flipped_duality_gap_rejected() {
    let dir = scratch("gap");
    // Iteration 2 claims a lower bound ABOVE the feasible cost: Δ_Φ < 0
    // beyond the slack, impossible under Formula 8.
    let trace = write_trace(
        &dir,
        "bad_gap.csv",
        &[
            row(1, 1.0, 100.0, 150.0, 10.0, 0.5),
            row(2, 1.5, 160.0, 150.0, 8.0, 0.4),
        ],
    );
    let res = run(&["--trace", trace.to_str().unwrap()]);
    assert_eq!(res.code, 1);
    assert!(
        res.stdout.contains("violation[duality-gap]"),
        "missing duality-gap diagnostic: {}",
        res.stdout
    );
    assert!(res.stdout.contains("Formula 8"), "{}", res.stdout);
}

#[test]
fn inconsistent_lagrangian_rejected() {
    let dir = scratch("lag");
    let mut bad = row(1, 1.0, 100.0, 150.0, 10.0, 0.5);
    // Corrupt the recorded L = Φ + λ·Π column (index 5).
    let mut cols: Vec<String> = bad.split(',').map(str::to_owned).collect();
    cols[5] = "9.9e2".into();
    bad = cols.join(",");
    let trace = write_trace(&dir, "bad_lagrangian.csv", &[bad]);
    let res = run(&["--trace", trace.to_str().unwrap()]);
    assert_eq!(res.code, 1);
    assert!(
        res.stdout.contains("violation[lagrangian]"),
        "{}",
        res.stdout
    );
}

#[test]
fn lambda_drop_rejected_unless_allowed() {
    let dir = scratch("drop");
    // λ falls 2.0 → 1.0 with no recovery context: flagged; with
    // --allow-lambda-drops (what the CLI infers from a recovered report):
    // accepted.
    let trace = write_trace(
        &dir,
        "drop.csv",
        &[
            row(1, 2.0, 100.0, 150.0, 10.0, 0.5),
            row(2, 1.0, 102.0, 149.0, 9.0, 0.45),
        ],
    );
    let res = run(&["--trace", trace.to_str().unwrap()]);
    assert_eq!(res.code, 1);
    assert!(
        res.stdout.contains("violation[lambda-monotone]"),
        "{}",
        res.stdout
    );
    let res = run(&["--trace", trace.to_str().unwrap(), "--allow-lambda-drops"]);
    assert_eq!(res.code, 0, "{}", res.stdout);
}

#[test]
fn monotone_rule_permits_simpl_style_steps() {
    let dir = scratch("simpl-rule");
    // An arithmetic λ += 50 schedule legally exceeds the ComPLx 2λ cap;
    // under --lambda-rule monotone it must pass, under complx it must not.
    let trace = write_trace(
        &dir,
        "arith.csv",
        &[
            row(1, 1.0, 100.0, 150.0, 10.0, 0.5),
            row(2, 51.0, 110.0, 148.0, 7.0, 0.4),
        ],
    );
    let res = run(&[
        "--trace",
        trace.to_str().unwrap(),
        "--lambda-rule",
        "monotone",
    ]);
    assert_eq!(res.code, 0, "{}", res.stdout);
    let res = run(&[
        "--trace",
        trace.to_str().unwrap(),
        "--lambda-rule",
        "complx",
    ]);
    assert_eq!(res.code, 1);
    assert!(
        res.stdout.contains("violation[lambda-growth]"),
        "{}",
        res.stdout
    );
}

#[test]
fn clean_synthetic_trace_accepted() {
    let dir = scratch("clean");
    // Six consistent records: λ within the 2× cap, Π shrinking, gap
    // positive, L recomputable — the Π-trend check is active (≥ 5 rows).
    let trace = write_trace(
        &dir,
        "clean.csv",
        &[
            row(1, 1.0, 100.0, 150.0, 10.0, 0.50),
            row(2, 1.8, 104.0, 148.0, 8.0, 0.42),
            row(3, 3.0, 109.0, 146.0, 6.0, 0.33),
            row(4, 5.5, 115.0, 144.0, 4.0, 0.22),
            row(5, 9.0, 122.0, 143.0, 2.0, 0.12),
            row(6, 16.0, 130.0, 142.0, 1.0, 0.05),
        ],
    );
    let res = run(&["--trace", trace.to_str().unwrap()]);
    assert_eq!(
        res.code, 0,
        "stdout: {}\nstderr: {}",
        res.stdout, res.stderr
    );
    assert!(res.stdout.contains("0 violations"), "{}", res.stdout);
}

#[test]
fn stagnant_pi_rejected() {
    let dir = scratch("pi");
    // Π goes UP over a long trace: the feasibility distance never trends
    // to zero, violating the convergence story of Formula 3.
    let trace = write_trace(
        &dir,
        "pi_up.csv",
        &[
            row(1, 1.0, 100.0, 150.0, 5.0, 0.50),
            row(2, 1.8, 104.0, 148.0, 6.0, 0.42),
            row(3, 3.0, 109.0, 146.0, 7.0, 0.33),
            row(4, 5.5, 115.0, 144.0, 8.0, 0.22),
            row(5, 9.0, 122.0, 143.0, 9.0, 0.12),
            row(6, 16.0, 130.0, 142.0, 10.0, 0.05),
        ],
    );
    let res = run(&["--trace", trace.to_str().unwrap()]);
    assert_eq!(res.code, 1);
    assert!(res.stdout.contains("violation[pi-trend]"), "{}", res.stdout);
}

#[test]
fn usage_and_io_errors_exit_2() {
    // No inputs at all.
    let res = run(&[]);
    assert_eq!(res.code, 2);
    assert!(res.stderr.contains("error"), "{}", res.stderr);
    // Missing trace file.
    let res = run(&["--trace", "/nonexistent/complx-trace.csv"]);
    assert_eq!(res.code, 2);
    assert!(res.stderr.contains("error"), "{}", res.stderr);
    // Unknown option.
    let res = run(&["--frobnicate"]);
    assert_eq!(res.code, 2);
}

#[test]
fn malformed_trace_header_exit_2() {
    let dir = scratch("hdr");
    let path = dir.join("bad.csv");
    std::fs::write(&path, "iteration,lambda\n1,2\n").unwrap();
    let res = run(&["--trace", path.to_str().unwrap()]);
    assert_eq!(res.code, 2);
    assert!(res.stderr.contains("header"), "{}", res.stderr);
}

/// The full pipeline: place a small design, write the solution bundle,
/// trace and report, and let `complx-verify` validate all three against
/// each other. Then corrupt the solution and check it is rejected.
#[test]
fn real_run_artifacts_validate_end_to_end() {
    let dir = scratch("e2e");
    let mut gen = GeneratorConfig::small("vsmoke", 11);
    gen.num_std_cells = 160;
    gen.num_pads = 12;
    let design = gen.generate();
    let aux =
        bookshelf::write_bundle(&design, &design.initial_placement(), dir.join("design")).unwrap();

    let config = PlacerConfig::fast();
    let outcome = ComplxPlacer::new(config.clone()).place(&design).unwrap();
    let sol_aux = bookshelf::write_bundle(&design, &outcome.legal, dir.join("solution")).unwrap();
    let trace_path = dir.join("trace.csv");
    std::fs::write(&trace_path, outcome.trace.to_csv()).unwrap();
    let report_path = dir.join("report.json");
    let report = run_report(&design, Some(&config), &outcome, None, 1.0);
    std::fs::write(&report_path, report.to_json_string()).unwrap();

    let res = run(&[
        aux.to_str().unwrap(),
        "--solution",
        sol_aux.to_str().unwrap(),
        "--trace",
        trace_path.to_str().unwrap(),
        "--report",
        report_path.to_str().unwrap(),
    ]);
    assert_eq!(
        res.code, 0,
        "clean run rejected.\nstdout: {}\nstderr: {}",
        res.stdout, res.stderr
    );
    assert!(res.stdout.contains("0 violations"), "{}", res.stdout);

    // Corrupt the solution: stack one movable cell exactly onto another.
    let mut corrupted = outcome.legal.clone();
    let movers = design.movable_cells();
    let target = corrupted.position(movers[1]);
    corrupted.set_position(movers[0], Point::new(target.x, target.y));
    let bad_aux = bookshelf::write_bundle(&design, &corrupted, dir.join("corrupt")).unwrap();
    let res = run(&[
        aux.to_str().unwrap(),
        "--solution",
        bad_aux.to_str().unwrap(),
    ]);
    assert_eq!(res.code, 1, "{}", res.stdout);
    assert!(
        res.stdout.contains("violation[solution-overlap]"),
        "{}",
        res.stdout
    );

    // A report cross-checked against the WRONG solution must flag the
    // HPWL mismatch.
    let res = run(&[
        "--solution",
        bad_aux.to_str().unwrap(),
        "--report",
        report_path.to_str().unwrap(),
    ]);
    assert_eq!(res.code, 1, "{}", res.stdout);
    assert!(
        res.stdout.contains("violation[report-hpwl]"),
        "{}",
        res.stdout
    );
}
