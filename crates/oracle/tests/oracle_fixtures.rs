//! Hand-computed fixtures and properties for the oracle itself.
//!
//! Every expected value below is derived on paper in the accompanying
//! comment, so a failure pinpoints the oracle (not the solver) as wrong.

use complx_netlist::generator::GeneratorConfig;
use complx_netlist::{CellKind, Design, DesignBuilder, Placement, Point, Rect};
use complx_oracle::{
    anchor_epsilon, anchor_weight, audit, audit_with_tol, density_audit, hpwl, kahan_sum, net_span,
    weighted_hpwl,
};
use proptest::prelude::*;

fn approx(a: f64, b: f64, tol: f64) {
    assert!((a - b).abs() <= tol, "{a} vs {b} (tol {tol})");
}

/// Three cells, two nets, offsets included — HPWL worked out by hand.
fn hpwl_fixture() -> (Design, Placement) {
    let mut b = DesignBuilder::new("hf", Rect::new(0.0, 0.0, 20.0, 8.0), 1.0);
    let a = b.add_cell("a", 2.0, 1.0, CellKind::Movable).unwrap();
    let c = b.add_cell("b", 2.0, 1.0, CellKind::Movable).unwrap();
    let m = b.add_cell("c", 4.0, 2.0, CellKind::MovableMacro).unwrap();
    // n1: pins at cell centers of a and b.
    b.add_net("n1", 1.0, vec![(a, 0.0, 0.0), (c, 0.0, 0.0)])
        .unwrap();
    // n2: offset pins on a and b plus the macro center.
    b.add_net(
        "n2",
        2.0,
        vec![(a, 0.5, -0.25), (c, -0.5, 0.25), (m, 0.0, 0.0)],
    )
    .unwrap();
    let d = b.build().unwrap();
    let mut p = d.initial_placement();
    p.set_position(d.find_cell("a").unwrap(), Point::new(3.0, 1.5));
    p.set_position(d.find_cell("b").unwrap(), Point::new(7.25, 4.5));
    p.set_position(d.find_cell("c").unwrap(), Point::new(12.0, 6.0));
    (d, p)
}

#[test]
fn hand_computed_hpwl() {
    let (d, p) = hpwl_fixture();
    // n1 pins: (3, 1.5) and (7.25, 4.5)
    //   → span = (7.25 − 3) + (4.5 − 1.5) = 4.25 + 3 = 7.25
    // n2 pins: (3.5, 1.25), (6.75, 4.75), (12, 6)
    //   → span = (12 − 3.5) + (6 − 1.25) = 8.5 + 4.75 = 13.25
    // unweighted = 7.25 + 13.25 = 20.5
    // weighted   = 1·7.25 + 2·13.25 = 33.75
    let nets: Vec<_> = d.net_ids().collect();
    approx(net_span(&d, &p, nets[0]), 7.25, 1e-12);
    approx(net_span(&d, &p, nets[1]), 13.25, 1e-12);
    approx(hpwl(&d, &p), 20.5, 1e-12);
    approx(weighted_hpwl(&d, &p), 33.75, 1e-12);
}

#[test]
fn kahan_survives_catastrophic_cancellation() {
    // 1e16 + 1 − 1e16: naive f64 summation loses the 1.
    approx(kahan_sum([1e16, 1.0, -1e16]), 1.0, 1e-12);
}

/// Overlap fixture, all areas derived on paper:
///   a: 2×1 centered (1, 0.5)    → rect (0,0)–(2,1)
///   b: 2×1 centered (2.5, 0.5)  → rect (1.5,0)–(3.5,1)
///   f: 2×2 fixed at (4, 1)      → rect (3,0)–(5,2)
///   a∩b = 0.5 wide × 1 tall = 0.5;  b∩f = 0.5 × 1 = 0.5;  total 1.0.
#[test]
fn hand_computed_overlap() {
    let mut bld = DesignBuilder::new("of", Rect::new(0.0, 0.0, 10.0, 4.0), 1.0);
    let a = bld.add_cell("a", 2.0, 1.0, CellKind::Movable).unwrap();
    let c = bld.add_cell("b", 2.0, 1.0, CellKind::Movable).unwrap();
    bld.add_fixed_cell("f", 2.0, 2.0, CellKind::Fixed, Point::new(4.0, 1.0))
        .unwrap();
    bld.add_net("n", 1.0, vec![(a, 0.0, 0.0), (c, 0.0, 0.0)])
        .unwrap();
    let d = bld.build().unwrap();
    let mut p = d.initial_placement();
    p.set_position(d.find_cell("a").unwrap(), Point::new(1.0, 0.5));
    p.set_position(d.find_cell("b").unwrap(), Point::new(2.5, 0.5));
    let rep = audit(&d, &p);
    approx(rep.overlap_area, 1.0, 1e-12);
    assert_eq!(rep.overlap_pairs, 2);
    approx(rep.worst_overlap, 0.5, 1e-12);
    assert_eq!(rep.out_of_core, 0);
    assert!(!rep.is_legal(1e-6));
    assert!(rep.is_legal(1.5), "a huge tolerance forgives 1.0 overlap");
}

/// A pair spanning several row bands must be charged exactly once.
///   macro m: 2×3 centered (10, 1.5) → rect (9,0)–(11,3), bands 0..2
///   cell  a: 2×1 centered (10.5, 1.5) → rect (9.5,1)–(11.5,2), band 1
///   overlap = 1.5 wide × 1 tall = 1.5
#[test]
fn cross_band_overlap_counted_once() {
    let mut bld = DesignBuilder::new("cb", Rect::new(0.0, 0.0, 20.0, 4.0), 1.0);
    let a = bld.add_cell("a", 2.0, 1.0, CellKind::Movable).unwrap();
    let m = bld.add_cell("m", 2.0, 3.0, CellKind::MovableMacro).unwrap();
    bld.add_net("n", 1.0, vec![(a, 0.0, 0.0), (m, 0.0, 0.0)])
        .unwrap();
    let d = bld.build().unwrap();
    let mut p = d.initial_placement();
    p.set_position(d.find_cell("m").unwrap(), Point::new(10.0, 1.5));
    p.set_position(d.find_cell("a").unwrap(), Point::new(10.5, 1.5));
    let rep = audit(&d, &p);
    assert_eq!(rep.overlap_pairs, 1);
    approx(rep.overlap_area, 1.5, 1e-12);
}

#[test]
fn core_breach_and_row_misalignment_measured_exactly() {
    let mut bld = DesignBuilder::new("br", Rect::new(0.0, 0.0, 10.0, 4.0), 1.0);
    let a = bld.add_cell("a", 2.0, 1.0, CellKind::Movable).unwrap();
    let c = bld.add_cell("b", 2.0, 1.0, CellKind::Movable).unwrap();
    bld.add_net("n", 1.0, vec![(a, 0.0, 0.0), (c, 0.0, 0.0)])
        .unwrap();
    let d = bld.build().unwrap();
    let mut p = d.initial_placement();
    // a centered (−0.5, 2.5): rect (−1.5, 2)–(0.5, 3) → breach = 1.5.
    p.set_position(d.find_cell("a").unwrap(), Point::new(-0.5, 2.5));
    // b centered (5, 2.75): bottom edge 2.25 → misalign = 0.25.
    p.set_position(d.find_cell("b").unwrap(), Point::new(5.0, 2.75));
    let rep = audit(&d, &p);
    assert_eq!(rep.out_of_core, 1);
    approx(rep.max_core_breach, 1.5, 1e-12);
    assert_eq!(rep.off_row_cells, 1);
    approx(rep.max_row_misalign, 0.25, 1e-12);
    // The counting tolerance moves the counters, not the maxima.
    let loose = audit_with_tol(&d, &p, 2.0);
    assert_eq!(loose.out_of_core, 0);
    assert_eq!(loose.off_row_cells, 0);
    approx(loose.max_core_breach, 1.5, 1e-12);
}

#[test]
fn nonfinite_coordinates_fail_the_audit() {
    let mut bld = DesignBuilder::new("nf", Rect::new(0.0, 0.0, 10.0, 4.0), 1.0);
    let a = bld.add_cell("a", 2.0, 1.0, CellKind::Movable).unwrap();
    let c = bld.add_cell("b", 2.0, 1.0, CellKind::Movable).unwrap();
    bld.add_net("n", 1.0, vec![(a, 0.0, 0.0), (c, 0.0, 0.0)])
        .unwrap();
    let d = bld.build().unwrap();
    let mut p = d.initial_placement();
    p.set_position(d.find_cell("a").unwrap(), Point::new(f64::NAN, 0.5));
    p.set_position(d.find_cell("b").unwrap(), Point::new(5.0, 1.5));
    let rep = audit(&d, &p);
    assert_eq!(rep.nonfinite_cells, 1);
    assert!(!rep.is_legal(f64::INFINITY.min(1e9)));
}

/// Density fixture on a 2×2 grid over a 4×4 core (bin area 4), γ = 0.5:
///   cell  a: 2×2 at (1,1)       → fills bin (0,0): usage 4
///   fixed f: 2×2 at (3,1)       → empties bin (1,0): capacity 0
///   overflow = max(0, 4 − 0.5·4) = 2 in bin (0,0), 0 elsewhere
///   movable area = 4 → overflow_percent = 100·2/4 = 50%.
#[test]
fn hand_computed_density_overflow() {
    let mut bld = DesignBuilder::new("df", Rect::new(0.0, 0.0, 4.0, 4.0), 1.0);
    let a = bld.add_cell("a", 2.0, 2.0, CellKind::Movable).unwrap();
    let c = bld.add_cell("b", 0.5, 1.0, CellKind::Movable).unwrap();
    bld.add_fixed_cell("f", 2.0, 2.0, CellKind::Fixed, Point::new(3.0, 1.0))
        .unwrap();
    bld.add_net("n", 1.0, vec![(a, 0.0, 0.0), (c, 0.0, 0.0)])
        .unwrap();
    bld.set_target_density(0.5).unwrap();
    let d = bld.build().unwrap();
    let mut p = d.initial_placement();
    p.set_position(d.find_cell("a").unwrap(), Point::new(1.0, 1.0));
    // b (area 0.5) parked in the empty top-right bin: its own overflow is
    // max(0, 0.5 − 0.5·4) = 0.
    p.set_position(d.find_cell("b").unwrap(), Point::new(3.0, 3.0));
    let audit = density_audit(&d, &p, 2);
    // movable area = 4 + 0.5 = 4.5 → percent = 100·2/4.5 = 44.44…%
    approx(audit.overflow_area, 2.0, 1e-12);
    approx(audit.overflow_percent, 100.0 * 2.0 / 4.5, 1e-9);
    approx(audit.total_usage, 4.5, 1e-12);
    // Bin (0,0) holds 4 usage over capacity 4 → max utilization 1.0.
    approx(audit.max_utilization, 1.0, 1e-12);
}

/// A movable macro is blockage, not demand: sitting alone in a bin it
/// causes no overflow; sitting on a fixed obstacle it spills.
#[test]
fn macro_blockage_semantics() {
    let mut bld = DesignBuilder::new("mb", Rect::new(0.0, 0.0, 4.0, 4.0), 1.0);
    let m = bld.add_cell("m", 2.0, 2.0, CellKind::MovableMacro).unwrap();
    let a = bld.add_cell("a", 0.5, 1.0, CellKind::Movable).unwrap();
    bld.add_fixed_cell("f", 2.0, 2.0, CellKind::Fixed, Point::new(3.0, 1.0))
        .unwrap();
    bld.add_net("n", 1.0, vec![(m, 0.0, 0.0), (a, 0.0, 0.0)])
        .unwrap();
    bld.set_target_density(0.5).unwrap();
    let d = bld.build().unwrap();
    let mut p = d.initial_placement();
    p.set_position(d.find_cell("m").unwrap(), Point::new(1.0, 1.0));
    p.set_position(d.find_cell("a").unwrap(), Point::new(3.0, 3.0));
    // Macro fills bin (0,0): macro_usage 4, free = max(0, 4−4) = 0, std
    // usage 0 → no γ-overflow; macro ≤ capacity → no spill.
    approx(density_audit(&d, &p, 2).overflow_area, 0.0, 1e-12);
    // Macro moved onto the obstacle bin (capacity 0): spill = 4.
    p.set_position(d.find_cell("m").unwrap(), Point::new(3.0, 1.0));
    approx(density_audit(&d, &p, 2).overflow_area, 4.0, 1e-12);
}

#[test]
fn anchor_weight_formula_matches_paper() {
    // w = λ / (|x − x°| + ε), ε = 1.5·row height.
    approx(anchor_epsilon(8.0), 12.0, 1e-12);
    approx(anchor_weight(3.0, 10.0, 4.0, 12.0), 3.0 / 18.0, 1e-15);
    approx(anchor_weight(3.0, 4.0, 10.0, 12.0), 3.0 / 18.0, 1e-15);
    // At zero displacement the weight is the stiffness cap λ/ε.
    approx(anchor_weight(3.0, 5.0, 5.0, 12.0), 0.25, 1e-15);
}

/// A deterministic jitter of the generator's initial placement, so the
/// property exercises arbitrary (not just legal) positions.
fn jitter(design: &Design, salt: u64) -> Placement {
    let core = design.core();
    let mut p = design.initial_placement();
    for (i, &id) in design.movable_cells().iter().enumerate() {
        let k = i as u64 + salt;
        let fx = ((k.wrapping_mul(2654435761)) % 1009) as f64 / 1009.0;
        let fy = ((k.wrapping_mul(40503)) % 997) as f64 / 997.0;
        p.set_position(
            id,
            Point::new(core.lx + fx * core.width(), core.ly + fy * core.height()),
        );
    }
    p
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Oracle HPWL agrees with the netlist crate's HPWL to 1e-9 relative
    /// on random designs and placements — two independent implementations
    /// of Formula 1.
    #[test]
    fn oracle_hpwl_matches_netlist_hpwl(seed in 0u64..200, salt in 0u64..1000) {
        let mut cfg = GeneratorConfig::small("ph", seed);
        cfg.num_std_cells = 180;
        cfg.num_pads = 12;
        let d = cfg.generate();
        let p = jitter(&d, salt);
        let ours = hpwl(&d, &p);
        let theirs = complx_netlist::hpwl::hpwl(&d, &p);
        prop_assert!((ours - theirs).abs() <= 1e-9 * theirs.abs().max(1.0),
            "oracle {ours} vs netlist {theirs}");
        let ours_w = weighted_hpwl(&d, &p);
        let theirs_w = complx_netlist::hpwl::weighted_hpwl(&d, &p);
        prop_assert!((ours_w - theirs_w).abs() <= 1e-9 * theirs_w.abs().max(1.0),
            "oracle {ours_w} vs netlist {theirs_w}");
    }

    /// The anchor-weight formula in the oracle matches the solver's anchor
    /// builder (dev-dependency only) for arbitrary λ and displacement.
    #[test]
    fn solver_anchors_match_oracle_formula(
        lambda in 0.0f64..50.0,
        x in -100.0f64..100.0,
        target in -100.0f64..100.0,
    ) {
        let mut b = DesignBuilder::new("aw", Rect::new(-200.0, -200.0, 200.0, 200.0), 8.0);
        let a = b.add_cell("a", 2.0, 8.0, CellKind::Movable).unwrap();
        let c = b.add_cell("b", 2.0, 8.0, CellKind::Movable).unwrap();
        b.add_net("n", 1.0, vec![(a, 0.0, 0.0), (c, 0.0, 0.0)]).unwrap();
        let d = b.build().unwrap();
        let mut targets = d.initial_placement();
        targets.set_position(a, Point::new(target, target / 2.0));
        let eps = anchor_epsilon(d.row_height());
        let anchors = complx_wirelength::Anchors::per_cell(
            &d, targets, vec![lambda, lambda], eps);
        let got = anchors.weight_x(a, x);
        let want = anchor_weight(lambda, x, target, eps);
        prop_assert!((got - want).abs() <= 1e-12 * want.abs().max(1e-12),
            "solver {got} vs oracle {want}");
        let got_y = anchors.weight_y(a, x / 3.0);
        let want_y = anchor_weight(lambda, x / 3.0, target / 2.0, eps);
        prop_assert!((got_y - want_y).abs() <= 1e-12 * want_y.abs().max(1e-12));
    }
}
