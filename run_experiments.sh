#!/bin/bash
# Regenerates every paper artifact at full synthetic scale.
set -x
cd /root/repo
for b in table1 table2 fig1_convergence fig2_shredding fig3_scalability fig4_regions fig5_timing s2_self_consistency s4_cog_comparison ablation_grid ablation_lambda ablation_netmodel; do
  echo "=== $b ==="
  cargo run --release -p complx-bench --bin $b
done
echo ALL_DONE
