//! Offline stand-in for the `criterion` benchmarking crate.
//!
//! The build environment cannot fetch crates.io, so this vendored crate
//! reimplements the macro and builder surface the workspace's benches use
//! (`criterion_group!`/`criterion_main!`, [`Criterion::bench_function`],
//! benchmark groups, [`Bencher::iter`]/[`Bencher::iter_batched`],
//! [`BenchmarkId`], [`black_box`]). Instead of criterion's statistical
//! analysis it runs a fixed number of timed passes and prints mean wall
//! time per iteration — enough to compare kernels, not a replacement for
//! real criterion reports.

use std::fmt;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// How `iter_batched` amortizes setup cost (accepted for API parity; the
/// stand-in re-runs setup before every batch regardless).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    /// Small per-iteration inputs.
    SmallInput,
    /// Large per-iteration inputs.
    LargeInput,
    /// One input per batch.
    PerIteration,
}

/// Identifier for a parameterized benchmark.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// An id made of a function name and a parameter value.
    pub fn new(name: impl Into<String>, parameter: impl fmt::Display) -> Self {
        Self {
            id: format!("{}/{}", name.into(), parameter),
        }
    }

    /// An id made of the parameter value alone.
    pub fn from_parameter(parameter: impl fmt::Display) -> Self {
        Self {
            id: parameter.to_string(),
        }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.id)
    }
}

/// Times closures; handed to every benchmark body.
pub struct Bencher {
    samples: u64,
    total: Duration,
    iters: u64,
}

impl Bencher {
    /// Times `routine` over the configured number of iterations.
    pub fn iter<O>(&mut self, mut routine: impl FnMut() -> O) {
        for _ in 0..self.samples {
            let t = Instant::now();
            black_box(routine());
            self.total += t.elapsed();
            self.iters += 1;
        }
    }

    /// Times `routine` on fresh inputs from `setup`, excluding setup time.
    pub fn iter_batched<I, O>(
        &mut self,
        mut setup: impl FnMut() -> I,
        mut routine: impl FnMut(I) -> O,
        _size: BatchSize,
    ) {
        for _ in 0..self.samples {
            let input = setup();
            let t = Instant::now();
            black_box(routine(input));
            self.total += t.elapsed();
            self.iters += 1;
        }
    }
}

/// Entry point mirroring `criterion::Criterion`.
#[derive(Debug, Clone)]
pub struct Criterion {
    sample_size: u64,
}

impl Default for Criterion {
    fn default() -> Self {
        Self { sample_size: 10 }
    }
}

fn run_one(name: &str, samples: u64, f: impl FnOnce(&mut Bencher)) {
    let mut b = Bencher {
        samples,
        total: Duration::ZERO,
        iters: 0,
    };
    f(&mut b);
    let mean = if b.iters == 0 {
        Duration::ZERO
    } else {
        b.total / (b.iters as u32)
    };
    println!("bench {name:<48} {mean:>12.3?}/iter ({} iters)", b.iters);
}

impl Criterion {
    /// Sets how many timed passes each benchmark runs.
    #[must_use]
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n.max(1) as u64;
        self
    }

    /// Runs a single named benchmark.
    pub fn bench_function(
        &mut self,
        name: impl fmt::Display,
        f: impl FnOnce(&mut Bencher),
    ) -> &mut Self {
        run_one(&name.to_string(), self.sample_size, f);
        self
    }

    /// Opens a named group of benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            sample_size: self.sample_size,
            _parent: self,
        }
    }
}

/// A group of related benchmarks sharing a sample size.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: u64,
    _parent: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Sets how many timed passes each benchmark in the group runs.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1) as u64;
        self
    }

    /// Runs a named benchmark inside the group.
    pub fn bench_function(
        &mut self,
        id: impl fmt::Display,
        f: impl FnOnce(&mut Bencher),
    ) -> &mut Self {
        run_one(&format!("{}/{}", self.name, id), self.sample_size, f);
        self
    }

    /// Runs a parameterized benchmark inside the group.
    pub fn bench_with_input<I>(
        &mut self,
        id: impl fmt::Display,
        input: &I,
        f: impl FnOnce(&mut Bencher, &I),
    ) -> &mut Self {
        run_one(&format!("{}/{}", self.name, id), self.sample_size, |b| {
            f(b, input)
        });
        self
    }

    /// Ends the group (no-op in the stand-in).
    pub fn finish(self) {}
}

/// Declares a benchmark group, mirroring `criterion::criterion_group!`.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion: $crate::Criterion = $config;
            $( $target(&mut criterion); )+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        );
    };
}

/// Declares the benchmark entry point, mirroring `criterion::criterion_main!`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_bench(c: &mut Criterion) {
        c.bench_function("square", |b| b.iter(|| black_box(3u64) * 3));
        let mut g = c.benchmark_group("grp");
        g.sample_size(2);
        g.bench_with_input(BenchmarkId::from_parameter(7), &7u64, |b, &n| {
            b.iter_batched(|| n, |x| x + 1, BatchSize::SmallInput)
        });
        g.finish();
    }

    criterion_group!(name = benches; config = Criterion::default().sample_size(3); targets = sample_bench);

    #[test]
    fn harness_runs() {
        benches();
    }

    #[test]
    fn ids_format() {
        assert_eq!(BenchmarkId::new("f", 10).to_string(), "f/10");
        assert_eq!(BenchmarkId::from_parameter(42).to_string(), "42");
    }
}
