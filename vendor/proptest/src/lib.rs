//! Offline stand-in for the `proptest` crate.
//!
//! The build environment cannot fetch crates.io, so this vendored crate
//! reimplements the subset of proptest the workspace's property tests use:
//!
//! * the [`Strategy`] trait with `prop_map` / `prop_flat_map` combinators,
//! * range strategies for the primitive numeric types,
//! * tuple strategies up to arity 6 and [`Just`],
//! * [`collection::vec`] with exact, half-open, and inclusive size ranges,
//! * the [`proptest!`] macro with optional `#![proptest_config(...)]`,
//! * `prop_assert!` / `prop_assert_eq!` (mapped onto panicking asserts).
//!
//! Sampling is deterministic: each test derives its RNG seed from the test
//! function name, so failures reproduce exactly. Unlike real proptest there
//! is no shrinking and no persistence of regression seeds — a failing case
//! panics with the values formatted by the assertion itself.

use std::ops::{Range, RangeInclusive};

pub use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

/// The RNG handed to strategies while generating a test case.
#[derive(Debug, Clone)]
pub struct TestRng(StdRng);

impl TestRng {
    /// Creates a deterministic RNG from an arbitrary label (the test name).
    pub fn deterministic(label: &str) -> Self {
        // FNV-1a over the label gives a stable per-test seed.
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in label.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x1000_0000_01b3);
        }
        Self(StdRng::seed_from_u64(h))
    }

    fn rng(&mut self) -> &mut StdRng {
        &mut self.0
    }
}

/// Configuration accepted by `#![proptest_config(...)]`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ProptestConfig {
    /// Number of random cases generated per test.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` random cases.
    pub fn with_cases(cases: u32) -> Self {
        Self { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        // Real proptest defaults to 256; 64 keeps the offline suite fast
        // while still exercising each property broadly.
        Self { cases: 64 }
    }
}

/// A generator of random values of an associated type.
pub trait Strategy {
    /// The type of value this strategy produces.
    type Value;

    /// Samples one value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    /// Generates a value, then samples from the strategy `f` builds from it.
    fn prop_flat_map<S, F>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
        S: Strategy,
        F: Fn(Self::Value) -> S,
    {
        FlatMap { inner: self, f }
    }
}

/// Strategy returned by [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;
    fn sample(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.sample(rng))
    }
}

/// Strategy returned by [`Strategy::prop_flat_map`].
#[derive(Debug, Clone)]
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, T: Strategy, F: Fn(S::Value) -> T> Strategy for FlatMap<S, F> {
    type Value = T::Value;
    fn sample(&self, rng: &mut TestRng) -> T::Value {
        (self.f)(self.inner.sample(rng)).sample(rng)
    }
}

/// A strategy that always yields a clone of the given value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn sample(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

macro_rules! numeric_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                rng.rng().random_range(self.clone())
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                rng.rng().random_range(self.clone())
            }
        }
    )*};
}

numeric_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f64);

macro_rules! tuple_strategy {
    ($(($($name:ident),+);)*) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            #[allow(non_snake_case)]
            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.sample(rng),)+)
            }
        }
    )*};
}

tuple_strategy! {
    (A);
    (A, B);
    (A, B, C);
    (A, B, C, D);
    (A, B, C, D, E);
    (A, B, C, D, E, F);
}

/// Collection strategies.
pub mod collection {
    use super::{Strategy, TestRng};
    use rand::RngExt;
    use std::ops::{Range, RangeInclusive};

    /// Admissible size arguments for [`vec`].
    #[derive(Debug, Clone)]
    pub struct SizeRange {
        lo: usize,
        hi_inclusive: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            Self {
                lo: n,
                hi_inclusive: n,
            }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            Self {
                lo: r.start,
                hi_inclusive: r.end - 1,
            }
        }
    }

    impl From<RangeInclusive<usize>> for SizeRange {
        fn from(r: RangeInclusive<usize>) -> Self {
            let (lo, hi) = r.into_inner();
            assert!(lo <= hi, "empty size range");
            Self {
                lo,
                hi_inclusive: hi,
            }
        }
    }

    /// Strategy producing `Vec`s of values from `element`.
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let n = if self.size.lo == self.size.hi_inclusive {
                self.size.lo
            } else {
                super::rng_of(rng).random_range(self.size.lo..=self.size.hi_inclusive)
            };
            (0..n).map(|_| self.element.sample(rng)).collect()
        }
    }

    /// A strategy for vectors with `size` elements drawn from `element`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }
}

pub(crate) fn rng_of(rng: &mut TestRng) -> &mut StdRng {
    rng.rng()
}

/// The commonly imported names, mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate::collection;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};
    pub use crate::{Just, ProptestConfig, Strategy, TestRng};
}

/// Asserts a condition inside a property test.
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

/// Asserts equality inside a property test.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

/// Asserts inequality inside a property test.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($tt:tt)*) => { assert_ne!($($tt)*) };
}

/// Defines property tests over strategies, mirroring `proptest::proptest!`.
///
/// ```
/// use proptest::prelude::*;
///
/// proptest! {
///     #![proptest_config(ProptestConfig::with_cases(16))]
///     fn addition_commutes(a in 0u32..1000, b in 0u32..1000) {
///         prop_assert_eq!(a + b, b + a);
///     }
/// }
/// # addition_commutes();
/// ```
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl!{ ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl!{ ($crate::ProptestConfig::default()) $($rest)* }
    };
}

/// Implementation detail of [`proptest!`].
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    ( ($cfg:expr)
      $(
        $(#[$meta:meta])*
        fn $name:ident( $($pat:pat in $strat:expr),+ $(,)? ) $body:block
      )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::ProptestConfig = $cfg;
                let mut case_rng = $crate::TestRng::deterministic(concat!(
                    module_path!(), "::", stringify!($name)
                ));
                for _case in 0..config.cases {
                    let ( $($pat,)+ ) =
                        ( $( $crate::Strategy::sample(&($strat), &mut case_rng), )+ );
                    $body
                }
            }
        )*
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    fn pairs() -> impl Strategy<Value = (usize, usize)> {
        (1usize..50).prop_flat_map(|n| (Just(n), 0..n))
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(40))]
        #[test]
        fn flat_map_respects_dependency((n, k) in pairs()) {
            prop_assert!(k < n);
        }

        #[test]
        fn vec_sizes_in_range(v in collection::vec(0.0f64..1.0, 3..=7)) {
            prop_assert!((3..=7).contains(&v.len()));
            prop_assert!(v.iter().all(|x| (0.0..1.0).contains(x)));
        }

        #[test]
        fn exact_vec_size(v in collection::vec(0u32..9, 5usize)) {
            prop_assert_eq!(v.len(), 5);
        }

        #[test]
        fn tuples_and_maps(x in (0u64..10, 0u64..10).prop_map(|(a, b)| a + b)) {
            prop_assert!(x < 19);
        }
    }

    #[test]
    fn generated_tests_are_deterministic() {
        let s = (0u64..1000, 0u64..1000);
        let mut a = TestRng::deterministic("t");
        let mut b = TestRng::deterministic("t");
        for _ in 0..50 {
            assert_eq!(s.sample(&mut a), s.sample(&mut b));
        }
    }
}
