//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no access to crates.io, so this vendored crate
//! provides exactly the API surface the workspace uses: [`rngs::StdRng`],
//! [`SeedableRng::seed_from_u64`], and the [`RngExt`] sampling helpers
//! (`random`, `random_range`, `random_bool`). The generator is a
//! deterministic xoshiro256++ seeded via splitmix64 — the same construction
//! the real `StdRng` documentation recommends for reproducible streams.
//! Statistical quality is more than sufficient for synthetic-benchmark
//! generation and tests; this is not a cryptographic RNG.

use std::ops::{Range, RangeInclusive};

/// Low-level source of random 64-bit words.
pub trait RngCore {
    /// Returns the next word of the stream.
    fn next_u64(&mut self) -> u64;
}

/// Construction of reproducible generators from seeds.
pub trait SeedableRng: Sized {
    /// Creates a generator whose stream is fully determined by `seed`.
    fn seed_from_u64(seed: u64) -> Self;
}

/// High-level sampling helpers, blanket-implemented for every [`RngCore`].
pub trait RngExt: RngCore {
    /// Samples a value of type `T` from its standard distribution
    /// (`f64` uniform in `[0, 1)`, integers uniform over their range).
    fn random<T: Random>(&mut self) -> T {
        T::random(self)
    }

    /// Samples uniformly from a range. Panics on an empty range.
    fn random_range<T, R: SampleRange<T>>(&mut self, range: R) -> T {
        range.sample(self)
    }

    /// Returns `true` with probability `p` (clamped to `[0, 1]`).
    fn random_bool(&mut self, p: f64) -> bool {
        f64::random(self) < p
    }
}

impl<T: RngCore + ?Sized> RngExt for T {}

/// Types samplable by [`RngExt::random`].
pub trait Random: Sized {
    /// Samples one value from the standard distribution of `Self`.
    fn random<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Random for f64 {
    fn random<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 high bits → uniform double in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Random for f32 {
    fn random<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl Random for u64 {
    fn random<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Random for u32 {
    fn random<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 32) as u32
    }
}

impl Random for bool {
    fn random<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// Ranges samplable by [`RngExt::random_range`], producing values of `T`.
pub trait SampleRange<T> {
    /// Samples uniformly from the range.
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

fn sample_u64_below<R: RngCore + ?Sized>(rng: &mut R, span: u64) -> u64 {
    debug_assert!(span > 0);
    // Multiply-shift bounded sampling (Lemire); bias is < 2^-64 per draw,
    // immaterial for test-data generation.
    let hi = ((rng.next_u64() as u128 * span as u128) >> 64) as u64;
    hi
}

macro_rules! int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + sample_u64_below(rng, span) as i128) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = self.into_inner();
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi as i128 - lo as i128).wrapping_add(1) as u64;
                if span == 0 {
                    // Full-width inclusive range of a 64-bit type.
                    return rng.next_u64() as $t;
                }
                (lo as i128 + sample_u64_below(rng, span) as i128) as $t
            }
        }
    )*};
}

int_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleRange<f64> for Range<f64> {
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        let u = f64::random(rng);
        self.start + u * (self.end - self.start)
    }
}

impl SampleRange<f64> for RangeInclusive<f64> {
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        let (lo, hi) = self.into_inner();
        assert!(lo <= hi, "cannot sample empty range");
        lo + f64::random(rng) * (hi - lo)
    }
}

impl SampleRange<f32> for Range<f32> {
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> f32 {
        assert!(self.start < self.end, "cannot sample empty range");
        self.start + f32::random(rng) * (self.end - self.start)
    }
}

/// Concrete generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Deterministic xoshiro256++ generator (seeded via splitmix64).
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl StdRng {
        fn next_word(&mut self) -> u64 {
            let r = (self.s[0].wrapping_add(self.s[3]))
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            r
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            self.next_word()
        }
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            // splitmix64 expansion of the seed into the full state.
            let mut x = seed;
            let mut next = || {
                x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = x;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            Self {
                s: [next(), next(), next(), next()],
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{RngExt, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(
                a.random_range(0u64..1_000_000),
                b.random_range(0u64..1_000_000)
            );
        }
        let mut c = StdRng::seed_from_u64(43);
        let equal = (0..100)
            .filter(|_| a.random::<u64>() == c.random::<u64>())
            .count();
        assert!(equal < 5, "different seeds should give different streams");
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let v = rng.random_range(3u32..=14);
            assert!((3..=14).contains(&v));
            let f = rng.random_range(6.0f64..30.0);
            assert!((6.0..30.0).contains(&f));
            let u: f64 = rng.random();
            assert!((0.0..1.0).contains(&u));
            let i = rng.random_range(-5i32..5);
            assert!((-5..5).contains(&i));
        }
    }

    #[test]
    fn random_bool_tracks_probability() {
        let mut rng = StdRng::seed_from_u64(11);
        let hits = (0..10_000).filter(|_| rng.random_bool(0.25)).count();
        assert!((2000..3000).contains(&hits), "hits {hits}");
        assert!(!(0..100).any(|_| rng.random_bool(0.0)));
        assert!((0..100).all(|_| rng.random_bool(1.0) || true));
    }
}
